"""Network cache backends: the coordinator-served store and write-through
fleet replication.

:class:`HttpCacheStore` speaks the coordinator's tiny ``/v1/cache`` API
(GET/PUT/DELETE one text entry per ``(stage, key)``) over ``urllib`` and
satisfies the :class:`~repro.pipeline.cache.CacheStore` contract: absent
entries are ``None``, transport trouble is ``OSError`` (the policy layer
retries it), writes are atomic because the far side commits them
atomically.

:class:`ReplicatedStore` is what a fleet worker actually mounts: a fast
local store in front, the coordinator store behind, write-through on
put and read-through with local backfill on get — so a stage computed
on any node is a hit on every node, and a coordinator outage merely
degrades the node to its local store (SA704, surfaced through the
``on_degraded`` callback and rehearsable via the ``cluster.replicate``
fault point)."""

from __future__ import annotations

import threading
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Callable

from repro.pipeline.cache import CacheStore
from repro.resilience.faults import InjectedFault, maybe_inject


class HttpCacheStore:
    """One remote cache endpoint, e.g. ``http://127.0.0.1:9300``.

    The base URL may be the coordinator root (``/v1/cache`` is appended)
    or anything already ending in ``/v1/cache``.
    """

    kind = "http"

    def __init__(self, base_url: str, *, timeout: float = 10.0) -> None:
        base = base_url.rstrip("/")
        if not base.endswith("/v1/cache"):
            base = base + "/v1/cache"
        self.base_url = base
        self.timeout = timeout

    def describe(self) -> str:
        return self.base_url

    def _url(self, stage: str, key: str) -> str:
        return f"{self.base_url}/{urllib.parse.quote(stage, safe='')}/{urllib.parse.quote(key, safe='')}"

    def _open(self, request: urllib.request.Request) -> tuple[int, bytes]:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return int(response.status), response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            exc.close()
            return int(exc.code), body
        except urllib.error.URLError as exc:
            raise OSError(f"cache endpoint unreachable: {exc.reason}") from exc

    def read(self, stage: str, key: str) -> str | None:
        request = urllib.request.Request(self._url(stage, key))
        status, body = self._open(request)
        if status == 200:
            return body.decode()
        if status == 404:
            return None
        raise OSError(f"cache read answered HTTP {status}")

    def write(self, stage: str, key: str, text: str) -> None:
        request = urllib.request.Request(
            self._url(stage, key), data=text.encode(), method="PUT"
        )
        request.add_header("Content-Type", "application/json")
        status, _ = self._open(request)
        if status not in (200, 204):
            raise OSError(f"cache write answered HTTP {status}")

    def quarantine(self, stage: str, key: str) -> str | None:
        request = urllib.request.Request(
            self._url(stage, key) + "?quarantine=1", method="DELETE"
        )
        try:
            status, _ = self._open(request)
        except OSError:
            return None
        if status == 200:
            return f"{self._url(stage, key)}#quarantined"
        return None

    def purge(self) -> int:
        request = urllib.request.Request(self.base_url, method="DELETE")
        status, body = self._open(request)
        if status != 200:
            raise OSError(f"cache purge answered HTTP {status}")
        try:
            import json

            return int(json.loads(body).get("removed", 0))
        except ValueError:
            return 0


class ReplicatedStore:
    """Local store in front, fleet store behind, write-through both ways.

    * ``read``: local hit wins; a remote hit is backfilled into the
      local store so the next probe is free.
    * ``write``: the local write is authoritative (its errors propagate
      so the policy layer retries); replication to the remote is
      best-effort and a failure only *degrades* — the node keeps
      computing against its local store.
    * ``quarantine``: both sides, so a corrupt entry cannot re-replicate.
    * ``purge``: local only — the fleet store is shared and owned by the
      coordinator.

    Every remote interaction is guarded by the ``cluster.replicate``
    fault point; the first failure of a streak fires ``on_degraded``
    (the worker wires this to an SA704 diagnostic and a metric), and a
    later success re-arms it.
    """

    kind = "replicated"

    def __init__(
        self,
        local: CacheStore,
        remote: CacheStore,
        *,
        on_degraded: Callable[[str], None] | None = None,
    ) -> None:
        self.local = local
        self.remote = remote
        self.on_degraded = on_degraded
        self.replication_failures = 0
        self._degraded = False
        self._lock = threading.Lock()

    def describe(self) -> str:
        return f"{self.local.describe()} replicated to {self.remote.describe()}"

    # ------------------------------------------------------- degradation

    def _remote_failed(self, action: str, exc: Exception) -> None:
        with self._lock:
            self.replication_failures += 1
            first_of_streak = not self._degraded
            self._degraded = True
        if first_of_streak and self.on_degraded is not None:
            # callback runs outside the lock: it may log, count, or emit
            self.on_degraded(f"{action}: {type(exc).__name__}: {exc}")

    def _remote_ok(self) -> None:
        with self._lock:
            self._degraded = False

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    # ------------------------------------------------------------- store

    def read(self, stage: str, key: str) -> str | None:
        text = self.local.read(stage, key)
        if text is not None:
            return text
        try:
            maybe_inject("cluster.replicate")
            text = self.remote.read(stage, key)
        except (OSError, InjectedFault) as exc:
            self._remote_failed("read", exc)
            return None
        self._remote_ok()
        if text is not None:
            try:
                self.local.write(stage, key, text)  # backfill
            except OSError:
                pass  # the local store is sick; the hit still counts
        return text

    def write(self, stage: str, key: str, text: str) -> None:
        self.local.write(stage, key, text)
        try:
            maybe_inject("cluster.replicate")
            self.remote.write(stage, key, text)
        except (OSError, InjectedFault) as exc:
            self._remote_failed("write", exc)
        else:
            self._remote_ok()

    def quarantine(self, stage: str, key: str) -> Path | str | None:
        moved = self.local.quarantine(stage, key)
        try:
            maybe_inject("cluster.replicate")
            remote_moved = self.remote.quarantine(stage, key)
        except (OSError, InjectedFault) as exc:
            self._remote_failed("quarantine", exc)
            remote_moved = None
        return moved if moved is not None else remote_moved

    def purge(self) -> int:
        return self.local.purge()


__all__ = ["HttpCacheStore", "ReplicatedStore"]
