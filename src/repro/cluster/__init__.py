"""The multi-node tier over :mod:`repro.service`.

One **coordinator** process owns the fleet: it consistent-hashes each
submission's coalescing fingerprint (the same SHA-256 identity
:mod:`repro.service.jobs` coalesces on) onto registered **worker**
processes, so N identical submissions — wherever they enter — land on
the same worker and collapse to one synthesis fleet-wide.  The
coordinator also serves the shared content-addressed cache
(``/v1/cache``), replicated write-through from every worker, and keeps a
crash-safe journal of forwarded work so a worker that stops
heartbeating has its pending jobs reassigned to the next owner on the
ring.

Pieces:

* :mod:`repro.cluster.ring` — the consistent hash ring.
* :mod:`repro.cluster.netstore` — ``HttpCacheStore`` (coordinator-served
  backend) and ``ReplicatedStore`` (local + fleet write-through).
* :mod:`repro.cluster.coordinator` — fleet state, routing, heartbeat
  monitor, job reassignment.
* :mod:`repro.cluster.http` — the coordinator's HTTP face (same job API
  as a single node, plus ``/v1/workers`` and ``/v1/cache``).
* :mod:`repro.cluster.worker` — the agent that registers a node and
  keeps its heartbeat.
"""

from repro.cluster.ring import HashRing

__all__ = ["HashRing"]
