"""Fleet state and routing: the brain of ``serve --role coordinator``.

The coordinator owns four things:

* the **ring** — registered workers consistent-hashed so each coalescing
  fingerprint has exactly one owner (:mod:`repro.cluster.ring`);
* the **ledger** — every forwarded job lands in the same crash-safe
  JSONL :class:`~repro.service.queue.JobJournal` the single-node service
  uses, stamped with its owning node, and is settled when a terminal
  status is observed — the accept/done set difference is exactly the
  fleet's outstanding debt;
* the **heartbeat monitor** — a worker that misses K beats is declared
  lost (SA702), removed from the ring, and its unsettled jobs are
  re-forwarded *by fingerprint* to the next owner (SA703) with their
  original ids, so clients polling the coordinator never lose a job;
* the **shared cache** — the backing :class:`~repro.pipeline.cache.CacheStore`
  behind ``/v1/cache``, which workers replicate into write-through.

Locking discipline: the coordinator lock guards membership, assignment
and counters only.  Every HTTP hop to a worker happens outside the lock
(blocking under it would stall the whole control plane: SA603); loops
re-take the lock to observe membership changes between hops.
"""

from __future__ import annotations

import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.pipeline.cache import CacheStore
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobRequest
from repro.service.metrics import ServiceMetrics
from repro.service.queue import BadRequest, Draining, JobJournal
from repro.cluster.ring import HashRing

#: Default seconds between worker heartbeats.
HEARTBEAT_INTERVAL = 2.0

#: Consecutive missed beats before a worker is declared lost.
HEARTBEAT_MISSES = 3

_TERMINAL = ("done", "failed", "cancelled")


@dataclass
class WorkerNode:
    """One registered worker."""

    node_id: str
    url: str
    client: ServiceClient
    registered_at: float = field(default_factory=time.time)
    last_beat: float = field(default_factory=time.monotonic)
    beats: int = 0
    lost: bool = False


@dataclass
class PendingJob:
    """One forwarded-but-unsettled job (the reassignment unit)."""

    payload: dict[str, Any]
    client: str
    priority: int
    fingerprint: str
    node: str | None  # None = orphaned, waiting for a worker
    last_status: dict[str, Any] | None = None


class ClusterCoordinator:
    """Routes jobs onto the fleet and keeps them alive across node loss.

    Args:
        store: backend served at ``/v1/cache`` (None disables the shared
            cache — workers then run on their local stores only).
        journal: path of the fleet's accept/done ledger (None = no
            durability across coordinator restarts).
        heartbeat_interval / heartbeat_misses: liveness contract handed
            to workers at registration; a worker silent for
            ``interval * misses`` seconds is lost.
        client_timeout: per-hop socket timeout for worker calls.
    """

    def __init__(
        self,
        *,
        store: CacheStore | None = None,
        journal: str | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_misses: int = HEARTBEAT_MISSES,
        client_timeout: float = 30.0,
    ) -> None:
        self.store = store
        self.journal = JobJournal(journal) if journal else None
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.client_timeout = client_timeout
        self.ring = HashRing()
        self.metrics = ServiceMetrics()
        self.degradations: list[dict[str, str]] = []
        self._nodes: dict[str, WorkerNode] = {}
        self._pending: dict[str, PendingJob] = {}
        self._settled: dict[str, str] = {}  # job id -> terminal state
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None

    # ----------------------------------------------------------- lifecycle

    def start(self) -> int:
        """Load journaled debt (as orphans, flushed when workers join) and
        launch the heartbeat monitor; returns the number resumed."""
        resumed = 0
        if self.journal is not None:
            for entry in self.journal.pending():
                payload = entry.get("payload") or {}
                try:
                    fingerprint = JobRequest.from_payload(payload).fingerprint()
                except ValueError:
                    # Code drift across the restart: settle the debt so it
                    # cannot wedge the ledger forever.
                    self.journal.record_done(str(entry["id"]))
                    self.metrics.inc("jobs_resume_failures_total")
                    continue
                with self._lock:
                    self._pending[str(entry["id"])] = PendingJob(
                        payload=payload,
                        client=str(entry.get("client", "")),
                        priority=int(entry.get("priority", 0)),
                        fingerprint=fingerprint,
                        node=None,
                    )
                resumed += 1
            self.journal.compact()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        return resumed

    def close(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(5.0)
        if self.journal is not None:
            self.journal.compact()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval / 2.0):
            self.check_heartbeats()
            self.flush_orphans()

    # ---------------------------------------------------------- membership

    def register(self, node_id: str, url: str) -> dict[str, Any]:
        """A worker announces itself (idempotent; re-registration after a
        loss re-adds it to the ring)."""
        if not node_id or not url:
            raise BadRequest("registration needs 'node' and 'url'")
        with self._lock:
            node = self._nodes.get(node_id)
            fresh = node is None or node.lost
            if node is None:
                node = WorkerNode(
                    node_id=node_id,
                    url=url,
                    client=ServiceClient(url, timeout=self.client_timeout),
                )
                self._nodes[node_id] = node
            node.url = url
            node.client = ServiceClient(url, timeout=self.client_timeout)
            node.lost = False
            node.last_beat = time.monotonic()
            self.ring.add(node_id)
            if fresh:
                self.metrics.inc("nodes_joined_total", node=node_id)
                self._note("SA701", f"node {node_id} joined from {url}")
            contract = {
                "node": node_id,
                "interval": self.heartbeat_interval,
                "misses": self.heartbeat_misses,
                "nodes": list(self.ring.nodes()),
            }
        self.flush_orphans()
        return contract

    def deregister(self, node_id: str) -> bool:
        """Graceful leave: the node's unsettled jobs are reassigned now."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None or node.lost:
                return False
        self._lose_node(node_id, reason="deregistered")
        return True

    def heartbeat(self, node_id: str) -> bool:
        """Record one beat; False means the coordinator does not know the
        node (it restarted) and the worker must re-register."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None or node.lost:
                return False
            node.last_beat = time.monotonic()
            node.beats += 1
            self.metrics.inc("heartbeats_total", node=node_id)
            return True

    def check_heartbeats(self, now: float | None = None) -> list[str]:
        """Declare workers silent for ``interval * misses`` lost; returns
        the node ids lost on this sweep (unit-testable without threads)."""
        budget = self.heartbeat_interval * self.heartbeat_misses
        at = time.monotonic() if now is None else now
        with self._lock:
            overdue = [
                node.node_id
                for node in self._nodes.values()
                if not node.lost and at - node.last_beat > budget
            ]
        for node_id in overdue:
            self._lose_node(node_id, reason="missed heartbeats")
        return overdue

    def _lose_node(self, node_id: str, *, reason: str) -> None:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None or node.lost:
                return
            node.lost = True
            self.ring.remove(node_id)
            self.metrics.inc("nodes_lost_total", node=node_id)
            self._note("SA702", f"node {node_id} lost ({reason})")
            stranded = [
                (jid, pend)
                for jid, pend in self._pending.items()
                if pend.node == node_id and jid not in self._settled
            ]
            for _, pend in stranded:
                pend.node = None  # orphaned until re-forwarded
        for jid, pend in stranded:
            owner = self._forward(jid, pend)
            if owner is not None:
                self.metrics.inc("jobs_reassigned_total", node=owner)
                self._note(
                    "SA703",
                    f"job {jid} reassigned {node_id} -> {owner} by fingerprint",
                )

    def flush_orphans(self) -> int:
        """Re-forward jobs stranded without an owner; returns how many
        found a home."""
        with self._lock:
            orphans = [
                (jid, pend)
                for jid, pend in self._pending.items()
                if pend.node is None and jid not in self._settled
            ]
        placed = 0
        for jid, pend in orphans:
            if self._forward(jid, pend) is not None:
                placed += 1
        return placed

    def _note(self, code: str, reason: str) -> None:
        """Record one SA7xx fleet event (caller holds the lock or accepts
        best-effort ordering)."""
        self.degradations.append({"code": code, "reason": reason})
        del self.degradations[:-64]

    # ------------------------------------------------------------- routing

    def submit(
        self,
        payload: dict[str, Any],
        *,
        client: str = "",
        priority: int = 0,
        job_id: str | None = None,
    ) -> dict[str, Any]:
        """Admit one submission at the fleet door.

        Parses (cheap 400 before anything is queued anywhere), hashes the
        coalescing fingerprint onto the ring, forwards with an explicit
        id, and journals the acceptance.  Raises the same admission
        exceptions as the single-node manager.
        """
        try:
            fingerprint = JobRequest.from_payload(payload).fingerprint()
        except ValueError as exc:
            self.metrics.inc("rejected_total", reason="bad_request")
            raise BadRequest(str(exc)) from exc
        jid = job_id or secrets.token_hex(8)
        pend = PendingJob(
            payload=dict(payload),
            client=client,
            priority=priority,
            fingerprint=fingerprint,
            node=None,
        )
        # Registered before the forward so a node loss racing the hop
        # still sees (and reassigns) this job; removed again on refusal —
        # a client that got an error was never promised anything.
        with self._lock:
            self._pending[jid] = pend
        try:
            owner = self._forward(jid, pend, raise_refusals=True)
        except Exception:
            with self._lock:
                self._pending.pop(jid, None)
            raise
        if owner is None:
            with self._lock:
                self._pending.pop(jid, None)
            raise Draining("no live workers registered; retry shortly")
        with self._lock:
            self.metrics.inc("jobs_submitted_total")
        if self.journal is not None:
            self.journal.record_accept(
                jid, payload, client=client, priority=priority, node=owner
            )
        status = dict(pend.last_status or {})
        status.setdefault("id", jid)
        status["node"] = owner
        return status

    def _forward(
        self, jid: str, pend: PendingJob, *, raise_refusals: bool = False
    ) -> str | None:
        """Push one job to its ring owner, walking the preference list as
        nodes fail; returns the accepting node id (None = orphaned).

        ``raise_refusals`` propagates worker admission refusals (429
        backpressure must reach the submitting client); the reassignment
        path leaves the job orphaned instead and retries on the next
        monitor sweep.
        """
        attempted: set[str] = set()
        while True:
            with self._lock:
                owner_id = self.ring.owner(pend.fingerprint)
                node = self._nodes.get(owner_id) if owner_id else None
                if node is None or node.lost or owner_id in attempted:
                    return None
            body = dict(pend.payload)
            body["id"] = jid
            if pend.priority:
                body["priority"] = pend.priority
            try:
                answer = node.client.submit_payload(
                    body, client_id=pend.client or None
                )
            except ServiceError as exc:
                if exc.status < 500 and raise_refusals:
                    raise _refusal(exc) from exc
                if exc.status < 500:
                    return None  # backpressured; stay orphaned, retry later
                attempted.add(node.node_id)
                self._lose_node(node.node_id, reason=f"refused with {exc.status}")
                continue
            except OSError:
                attempted.add(node.node_id)
                self._lose_node(node.node_id, reason="unreachable on forward")
                continue
            with self._lock:
                pend.node = node.node_id
                pend.last_status = answer
                self.metrics.inc("jobs_forwarded_total", node=node.node_id)
            return node.node_id

    # ------------------------------------------------------------- queries

    def status(self, job_id: str, *, result: bool = False) -> dict[str, Any] | None:
        """Proxy one job's status from its owner (None = unknown job).

        A job mid-handoff (owner lost, not yet re-forwarded) reports as
        queued rather than vanishing; a terminal answer settles the
        ledger."""
        with self._lock:
            pend = self._pending.get(job_id)
            if pend is None:
                state = self._settled.get(job_id)
                if state is not None:
                    return {"id": job_id, "state": state, "settled": True}
                return None
            node = self._nodes.get(pend.node) if pend.node else None
        if node is None or node.lost:
            return {
                "id": job_id,
                "state": "queued",
                "node": None,
                "detail": "owner lost; awaiting reassignment",
            }
        try:
            answer = node.client.status(job_id, result=result)
        except ServiceError as exc:
            if exc.status == 404:
                # The owner changed between our snapshot and the hop, or
                # the forward is still in flight after a reassignment.
                return {"id": job_id, "state": "queued", "node": node.node_id}
            raise
        except OSError:
            self._lose_node(node.node_id, reason="unreachable on status")
            return {"id": job_id, "state": "queued", "node": None}
        answer["node"] = node.node_id
        if answer.get("state") in _TERMINAL:
            self._settle(job_id, str(answer["state"]))
        return answer

    def _settle(self, job_id: str, state: str = "done") -> None:
        """Mark one job terminal in the ledger (idempotent).  The pending
        record stays for result proxying; only the oldest settled entries
        are pruned so memory stays bounded."""
        with self._lock:
            if job_id in self._settled:
                return
            self._settled[job_id] = state
            while len(self._settled) > 4096:
                oldest = next(iter(self._settled))
                del self._settled[oldest]
                self._pending.pop(oldest, None)
        if self.journal is not None:
            self.journal.record_done(job_id)

    def cancel(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            pend = self._pending.get(job_id)
            node = self._nodes.get(pend.node) if pend and pend.node else None
        if pend is None:
            return None
        if node is None or node.lost:
            # Orphaned: cancel locally — it never reached a worker.
            self._settle(job_id, "cancelled")
            return {"id": job_id, "state": "cancelled", "node": None}
        answer = node.client.cancel(job_id)
        if answer.get("state") in _TERMINAL:
            self._settle(job_id, str(answer["state"]))
        answer["node"] = node.node_id
        return answer

    def jobs(self) -> list[dict[str, Any]]:
        """The fleet's job list: every live worker's view, node-tagged."""
        with self._lock:
            nodes = [n for n in self._nodes.values() if not n.lost]
        merged: list[dict[str, Any]] = []
        for node in nodes:
            try:
                for job in node.client.jobs():
                    job["node"] = node.node_id
                    merged.append(job)
            except (ServiceError, OSError):
                continue
        merged.sort(key=lambda j: j.get("created_at") or 0.0)
        return merged

    def stats(self) -> dict[str, Any]:
        """The fleet /healthz body: aggregated worker counters plus the
        coordinator's own routing state."""
        with self._lock:
            nodes = dict(self._nodes)
            ring_nodes = list(self.ring.nodes())
            pending = sum(1 for j in self._pending if j not in self._settled)
            orphaned = sum(
                1
                for jid, p in self._pending.items()
                if p.node is None and jid not in self._settled
            )
            settled = len(self._settled)
        per_node: dict[str, Any] = {}
        totals = {
            "submitted": 0,
            "coalesce_hits": 0,
            "executions": 0,
            "done": 0,
            "failed": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        now = time.monotonic()
        for node_id, node in sorted(nodes.items()):
            view: dict[str, Any] = {
                "url": node.url,
                "alive": not node.lost,
                "beats": node.beats,
                "last_beat_age": round(now - node.last_beat, 3),
            }
            if not node.lost:
                try:
                    health = node.client.health()
                except (ServiceError, OSError):
                    view["alive"] = False
                else:
                    for key in totals:
                        totals[key] += int(health.get(key, 0))
                    view["health"] = health
            per_node[node_id] = view
        return {
            "role": "coordinator",
            "status": "ok" if any(v["alive"] for v in per_node.values()) else "degraded",
            "nodes": per_node,
            "ring_nodes": ring_nodes,
            "pending": pending,
            "orphaned": orphaned,
            "settled": settled,
            "forwarded": int(self.metrics.counter_sum("jobs_forwarded_total")),
            "reassigned": int(self.metrics.counter_sum("jobs_reassigned_total")),
            "degradations": list(self.degradations),
            "fleet": totals,
        }

    def render_metrics(self) -> str:
        with self._lock:
            live = sum(1 for n in self._nodes.values() if not n.lost)
            gauges = {
                "cluster_nodes": float(live),
                "cluster_pending_jobs": float(
                    sum(1 for j in self._pending if j not in self._settled)
                ),
                "cluster_orphaned_jobs": float(
                    sum(
                        1
                        for jid, p in self._pending.items()
                        if p.node is None and jid not in self._settled
                    )
                ),
            }
        return self.metrics.render(gauges)

    # ----------------------------------------------------------- streaming

    def relay_events(
        self, job_id: str, from_seq: int = 0
    ) -> Iterator[dict[str, Any]] | None:
        """Relay a job's event stream from its owning worker.

        Returns None for an unknown job.  On the steady path events pass
        through with their sequence numbers intact; across a failover the
        re-executed job's fresh events are renumbered to continue the
        relay's monotone sequence (the worker-side number rides along as
        ``origin_seq``), so a resuming client's ``?from=N`` cursor stays
        meaningful.
        """
        with self._lock:
            if job_id not in self._pending and job_id not in self._settled:
                return None
        return self._relay(job_id, from_seq)

    def _relay(self, job_id: str, from_seq: int) -> Iterator[dict[str, Any]]:
        out_seq = from_seq
        upstream_seq = from_seq
        deadline_idle = time.monotonic() + 600.0
        while True:
            with self._lock:
                pend = self._pending.get(job_id)
                node = (
                    self._nodes.get(pend.node)
                    if pend is not None and pend.node
                    else None
                )
                settled = self._settled.get(job_id)
            if pend is None:
                if settled is not None:
                    yield {
                        "seq": out_seq,
                        "event": "JobFinished",
                        "id": job_id,
                        "state": settled,
                    }
                return
            if node is None or node.lost:
                if time.monotonic() > deadline_idle:
                    return
                time.sleep(0.2)  # mid-handoff; wait for reassignment
                continue
            try:
                for event in node.client._stream_once(job_id, upstream_seq):
                    relayed = dict(event)
                    origin = int(event.get("seq", upstream_seq))
                    upstream_seq = origin + 1
                    if origin != out_seq:
                        relayed["origin_seq"] = origin
                    relayed["seq"] = out_seq
                    out_seq += 1
                    deadline_idle = time.monotonic() + 600.0
                    yield relayed
                    if event.get("event") == "JobFinished":
                        self._settle(job_id, str(event.get("state", "done")))
                        return
                # Stream closed without a terminator: the job was already
                # terminal upstream; confirm via status and stop.
                answer = self.status(job_id)
                if answer is None or answer.get("state") in _TERMINAL:
                    return
            except ServiceError as exc:
                if exc.status == 404:
                    time.sleep(0.2)  # forward in flight after reassignment
                    continue
                return
            except (OSError, ValueError):
                # The owner died mid-stream; the monitor will reassign and
                # the re-execution's events restart at 0 upstream.
                upstream_seq = 0
                time.sleep(0.2)
                continue


def _refusal(exc: ServiceError) -> Exception:
    """Map a worker's admission answer back onto the local exception
    contract so the coordinator's HTTP face re-raises it faithfully."""
    from repro.service import queue as q

    mapped: dict[int, type[q.AdmissionError]] = {400: q.BadRequest, 429: q.QueueFull}
    cls = mapped.get(exc.status, q.AdmissionError)
    return cls(exc.message, retry_after=exc.retry_after)


__all__ = [
    "HEARTBEAT_INTERVAL",
    "HEARTBEAT_MISSES",
    "ClusterCoordinator",
    "PendingJob",
    "WorkerNode",
]
