"""The worker-side agent: registration, heartbeats, replicated cache.

``serve --role worker`` runs an ordinary single-node service (the same
:class:`~repro.service.jobs.JobManager` + HTTP server as standalone
serve) and attaches a :class:`WorkerAgent` that

* registers the node with the coordinator (retrying until it appears —
  fleets boot in any order),
* beats on the coordinator's advertised interval (the ``cluster.heartbeat``
  fault point drops beats deterministically, which is how the chaos
  suite rehearses false-loss and rejoin),
* re-registers automatically when the coordinator answers 404 (it
  restarted and forgot the fleet),
* and stamps node identity + heartbeat counters into the manager's
  ``/healthz`` via ``stats_extra``.

The agent never touches job flow: routing is entirely the coordinator's
business, and a worker keeps serving its local API (useful for
debugging a single shard) whether or not the coordinator is reachable.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from typing import Any

from repro.cluster.coordinator import HEARTBEAT_INTERVAL
from repro.resilience.faults import InjectedFault, maybe_inject
from repro.service.jobs import JobManager


class WorkerAgent:
    """Keeps one worker registered and beating.

    Args:
        manager: the node's job manager (for stats/degradation hooks).
        coordinator_url: e.g. ``http://127.0.0.1:9300``.
        node_id: stable fleet identity (defaults to ``host:port`` of the
            advertised URL).
        advertise_url: the URL the coordinator should proxy to.
        interval: fallback beat period until registration hands back the
            coordinator's contract.
        timeout: per-call socket timeout.
    """

    def __init__(
        self,
        manager: JobManager,
        *,
        coordinator_url: str,
        advertise_url: str,
        node_id: str | None = None,
        interval: float = HEARTBEAT_INTERVAL,
        timeout: float = 10.0,
    ) -> None:
        self.manager = manager
        self.coordinator_url = coordinator_url.rstrip("/")
        self.advertise_url = advertise_url
        self.node_id = node_id or advertise_url.split("//", 1)[-1].rstrip("/")
        self.interval = interval
        self.timeout = timeout
        self.registered = False
        self.beats_sent = 0
        self.beats_dropped = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------ plumbing

    def _post(self, path: str, body: dict[str, Any] | None = None) -> tuple[int, dict[str, Any]]:
        data = json.dumps(body or {}).encode()
        request = urllib.request.Request(
            self.coordinator_url + path, data=data, method="POST"
        )
        request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return int(response.status), json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read() or b"{}")
            except ValueError:
                detail = {}
            exc.close()
            return int(exc.code), detail
        except urllib.error.URLError as exc:
            raise OSError(f"coordinator unreachable: {exc.reason}") from exc

    # ----------------------------------------------------------- lifecycle

    def register(self) -> bool:
        """One registration attempt; adopts the coordinator's heartbeat
        contract on success."""
        try:
            status, contract = self._post(
                "/v1/workers", {"node": self.node_id, "url": self.advertise_url}
            )
        except OSError:
            self.registered = False
            return False
        if status != 200:
            self.registered = False
            return False
        self.interval = float(contract.get("interval", self.interval))
        self.registered = True
        self.manager.stats_extra.update(
            {
                "node": self.node_id,
                "coordinator": self.coordinator_url,
                "registered": True,
            }
        )
        return True

    def beat_once(self) -> bool:
        """Send one heartbeat; returns False when it did not land (dropped
        by an injected fault, coordinator down, or unknown node —
        re-registration is attempted on the next loop turn)."""
        try:
            maybe_inject("cluster.heartbeat")
        except InjectedFault:
            self.beats_dropped += 1
            self.manager.metrics.inc("heartbeats_dropped_total")
            return False
        try:
            status, _ = self._post(f"/v1/workers/{self.node_id}/heartbeat")
        except OSError:
            self.registered = False
            return False
        if status == 404:
            # Coordinator restarted and forgot us; rejoin on the spot.
            self.registered = False
            return self.register()
        if status != 200:
            return False
        self.beats_sent += 1
        self.manager.metrics.inc("heartbeats_sent_total")
        return True

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.registered:
                self.register()
                continue
            self.beat_once()

    def start(self) -> None:
        """Register (retrying in the loop if the coordinator is not up
        yet) and start beating."""
        self.register()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{self.node_id}", daemon=True
        )
        self._thread.start()

    def stop(self, *, deregister: bool = True) -> None:
        """Stop beating; optionally leave the fleet gracefully so pending
        jobs are reassigned immediately instead of after K misses."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(self.interval * 2 + 1.0)
        if deregister and self.registered:
            try:
                request = urllib.request.Request(
                    f"{self.coordinator_url}/v1/workers/{self.node_id}",
                    method="DELETE",
                )
                with urllib.request.urlopen(request, timeout=self.timeout):
                    pass
            except (OSError, urllib.error.URLError):
                pass  # the coordinator will notice via missed beats
        self.registered = False


def make_worker_cache(
    local_root: str, coordinator_url: str, manager: JobManager | None = None
) -> Any:
    """The fleet worker's cache spec: a local filesystem store replicated
    write-through to the coordinator's shared store, degradations wired
    into the manager's SA704 bookkeeping."""
    from repro.cluster.netstore import HttpCacheStore, ReplicatedStore
    from repro.pipeline.cache import FilesystemStore, StageCache

    def on_degraded(reason: str) -> None:
        if manager is not None:
            manager.note_degradation("SA704", f"cache replication degraded: {reason}")
            manager.metrics.inc("replication_degraded_total")

    store = ReplicatedStore(
        FilesystemStore(local_root),
        HttpCacheStore(coordinator_url),
        on_degraded=on_degraded,
    )
    return StageCache(store=store)


__all__ = ["WorkerAgent", "make_worker_cache"]
