"""Consistent hashing of coalescing fingerprints onto fleet nodes.

The coordinator must route *logically equal* submissions to the *same*
worker — that is what lets the existing in-process coalescing collapse
them fleet-wide — while a node joining or leaving moves as few
fingerprints as possible (anything that moves loses its warm in-memory
coalescing index and has to fall back to the shared stage cache).

Classic virtual-node construction: every node is hashed at
``replicas`` points onto a 256-bit circle (SHA-256, the same hash
discipline as the fingerprints themselves), and a fingerprint is owned
by the first node point at or after it, wrapping around.  With R
replicas per node the expected fraction of keys that move when one of N
nodes leaves is 1/N, and ownership is a pure function of the membership
set — every coordinator restart, and every test, derives the identical
mapping.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(material: str) -> int:
    return int.from_bytes(hashlib.sha256(material.encode()).digest(), "big")


class HashRing:
    """Virtual-node consistent hash ring over string node ids.

    Args:
        replicas: ring points per node.  More points smooth the load
            split between nodes at the cost of a larger sorted index;
            64 keeps the max/mean key imbalance under ~30% for small
            fleets.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: list[int] = []  # sorted ring positions
        self._owners: dict[int, str] = {}  # position -> node id
        self._nodes: set[str] = set()

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def add(self, node: str) -> None:
        """Register a node (idempotent)."""
        if not node:
            raise ValueError("node id must be non-empty")
        if node in self._nodes:
            return
        self._nodes.add(node)
        for index in range(self.replicas):
            position = _point(f"{node}#{index}")
            at = bisect.bisect_left(self._points, position)
            # SHA-256 collisions between distinct (node, index) pairs are
            # not a practical concern; last add would win if one occurred.
            self._points.insert(at, position)
            self._owners[position] = node

    def remove(self, node: str) -> None:
        """Deregister a node (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if self._owners[p] != node]
        self._owners = {p: n for p, n in self._owners.items() if n != node}

    def owner(self, fingerprint: str) -> str | None:
        """The node owning ``fingerprint``, or None on an empty ring."""
        if not self._points:
            return None
        position = _point(fingerprint)
        at = bisect.bisect_right(self._points, position)
        if at == len(self._points):
            at = 0  # wrap around the circle
        return self._owners[self._points[at]]

    def owners(self, fingerprint: str, count: int) -> list[str]:
        """Up to ``count`` distinct nodes in ring order from the owner —
        the failover preference list for this fingerprint."""
        if not self._points or count < 1:
            return []
        position = _point(fingerprint)
        start = bisect.bisect_right(self._points, position)
        found: list[str] = []
        for step in range(len(self._points)):
            node = self._owners[self._points[(start + step) % len(self._points)]]
            if node not in found:
                found.append(node)
                if len(found) >= count:
                    break
        return found


__all__ = ["HashRing"]
