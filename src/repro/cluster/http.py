"""The coordinator's HTTP face: the single-node job API plus fleet and
cache endpoints.

====== ================================== ==================================
Method Path                               Meaning
====== ================================== ==================================
POST   /v1/jobs                           submit; routed by fingerprint
GET    /v1/jobs                           fleet-wide job list (node-tagged)
GET    /v1/jobs/{id}                      proxied status (``?result=1``)
GET    /v1/jobs/{id}/events               relayed chunked-JSONL stream
DELETE /v1/jobs/{id}                      proxied cancel
POST   /v1/workers                        worker registration
POST   /v1/workers/{node}/heartbeat       one beat
DELETE /v1/workers/{node}                 graceful leave (reassigns jobs)
GET    /v1/workers                        fleet membership view
GET    /v1/cache/{stage}/{key}            shared-cache read (text payload)
PUT    /v1/cache/{stage}/{key}            shared-cache write (write-through)
DELETE /v1/cache/{stage}/{key}            quarantine one entry
DELETE /v1/cache                          purge live entries
GET    /healthz                           aggregated fleet counters
GET    /metrics                           coordinator Prometheus page
====== ================================== ==================================

A client pointed at the coordinator sees the same contract as a single
node — admission refusals carry the same statuses, event streams frame
the same chunked NDJSON — which is what lets
:class:`~repro.service.client.ServiceClient` drive a whole fleet
unchanged."""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, unquote, urlparse

from repro.cluster.coordinator import ClusterCoordinator
from repro.service.client import ServiceError
from repro.service.http import MAX_BODY_BYTES
from repro.service.queue import AdmissionError


class CoordinatorHandler(BaseHTTPRequestHandler):
    """One request; the coordinator lives on ``self.server``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-synth-coordinator"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def coordinator(self) -> ClusterCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    # ------------------------------------------------------------ plumbing

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        *,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_raw(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length) if length else b""

    def _read_json(self) -> Any:
        raw = self._read_raw()
        if not raw:
            return {}
        return json.loads(raw)

    def _client_id(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _parts(self) -> list[str]:
        return [unquote(p) for p in urlparse(self.path).path.split("/") if p]

    # ------------------------------------------------------------- routing

    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        parts = self._parts()
        if parts == ["v1", "jobs"]:
            self._submit()
            return
        if parts == ["v1", "workers"]:
            self._register()
            return
        if len(parts) == 4 and parts[:2] == ["v1", "workers"] and parts[3] == "heartbeat":
            known = self.coordinator.heartbeat(parts[2])
            if known:
                self._send_json(200, {"node": parts[2], "ok": True})
            else:
                self._send_json(
                    404,
                    {"error": f"unknown node {parts[2]!r}; re-register", "ok": False},
                )
            return
        self._send_json(404, {"error": f"no such resource: {self.path}"})

    def _submit(self) -> None:
        try:
            payload = self._read_json()
        except ValueError as exc:
            self._send_json(400, {"error": f"unreadable body: {exc}"})
            return
        priority = 0
        job_id: str | None = None
        if isinstance(payload, dict):
            try:
                priority = int(payload.get("priority", 0))
            except (TypeError, ValueError):
                self._send_json(400, {"error": "'priority' must be an integer"})
                return
            raw_id = payload.pop("id", None)
            if raw_id is not None:
                if not isinstance(raw_id, str) or not raw_id:
                    self._send_json(400, {"error": "'id' must be a non-empty string"})
                    return
                job_id = raw_id
        try:
            answer = self.coordinator.submit(
                payload, client=self._client_id(), priority=priority, job_id=job_id
            )
        except AdmissionError as exc:
            self._send_json(
                exc.status, {"error": str(exc)}, retry_after=exc.retry_after
            )
            return
        except ServiceError as exc:
            self._send_json(exc.status or 502, {"error": exc.message})
            return
        self._send_json(202, answer)

    def _register(self) -> None:
        try:
            body = self._read_json()
        except ValueError as exc:
            self._send_json(400, {"error": f"unreadable body: {exc}"})
            return
        node = str(body.get("node") or "")
        url = str(body.get("url") or "")
        try:
            contract = self.coordinator.register(node, url)
        except AdmissionError as exc:
            self._send_json(exc.status, {"error": str(exc)})
            return
        self._send_json(200, contract)

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        parts = self._parts()
        if parsed.path == "/healthz":
            self._send_json(200, self.coordinator.stats())
            return
        if parsed.path == "/metrics":
            self._send_text(
                200,
                self.coordinator.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if parts == ["v1", "jobs"]:
            self._send_json(200, {"jobs": self.coordinator.jobs()})
            return
        if parts == ["v1", "workers"]:
            self._send_json(200, {"workers": self.coordinator.stats()["nodes"]})
            return
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            include_result = query.get("result", ["0"])[0] not in ("0", "false", "")
            try:
                answer = self.coordinator.status(parts[2], result=include_result)
            except ServiceError as exc:
                self._send_json(exc.status or 502, {"error": exc.message})
                return
            if answer is None:
                self._send_json(404, {"error": f"no such job: {parts[2]}"})
                return
            self._send_json(200, answer)
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "events":
            self._stream_events(parts[2], query)
            return
        if len(parts) == 4 and parts[:2] == ["v1", "cache"]:
            self._cache_get(parts[2], parts[3])
            return
        self._send_json(404, {"error": f"no such resource: {parsed.path}"})

    def do_PUT(self) -> None:  # noqa: N802
        parts = self._parts()
        if len(parts) == 4 and parts[:2] == ["v1", "cache"]:
            self._cache_put(parts[2], parts[3])
            return
        self._send_json(404, {"error": "PUT only supports /v1/cache/{stage}/{key}"})

    def do_DELETE(self) -> None:  # noqa: N802
        parts = self._parts()
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            try:
                answer = self.coordinator.cancel(parts[2])
            except (ServiceError, OSError) as exc:
                self._send_json(502, {"error": str(exc)})
                return
            if answer is None:
                self._send_json(404, {"error": f"no such job: {parts[2]}"})
                return
            self._send_json(200, answer)
            return
        if len(parts) == 3 and parts[:2] == ["v1", "workers"]:
            if self.coordinator.deregister(parts[2]):
                self._send_json(200, {"node": parts[2], "removed": True})
            else:
                self._send_json(404, {"error": f"unknown node {parts[2]!r}"})
            return
        if len(parts) == 4 and parts[:2] == ["v1", "cache"]:
            self._cache_quarantine(parts[2], parts[3])
            return
        if parts == ["v1", "cache"]:
            store = self.coordinator.store
            if store is None:
                self._send_json(404, {"error": "no shared cache configured"})
                return
            try:
                removed = store.purge()
            except OSError as exc:
                self._send_json(500, {"error": str(exc)})
                return
            self._send_json(200, {"removed": removed})
            return
        self._send_json(404, {"error": f"no such resource: {self.path}"})

    # --------------------------------------------------------- shared cache

    def _cache_get(self, stage: str, key: str) -> None:
        store = self.coordinator.store
        if store is None:
            self._send_json(404, {"error": "no shared cache configured"})
            return
        try:
            text = store.read(stage, key)
        except OSError as exc:
            self._send_json(500, {"error": str(exc)})
            return
        self.coordinator.metrics.inc(
            "cache_requests_total", op="get", result="miss" if text is None else "hit"
        )
        if text is None:
            self._send_json(404, {"error": "cache miss"})
            return
        self._send_text(200, text, "application/json")

    def _cache_put(self, stage: str, key: str) -> None:
        store = self.coordinator.store
        if store is None:
            self._send_json(404, {"error": "no shared cache configured"})
            return
        try:
            text = self._read_raw().decode()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            store.write(stage, key, text)
        except OSError as exc:
            self._send_json(500, {"error": str(exc)})
            return
        self.coordinator.metrics.inc("cache_requests_total", op="put", result="ok")
        self._send_no_content()

    def _send_no_content(self) -> None:
        self.send_response(204)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _cache_quarantine(self, stage: str, key: str) -> None:
        store = self.coordinator.store
        if store is None:
            self._send_json(404, {"error": "no shared cache configured"})
            return
        moved = store.quarantine(stage, key)
        if moved is None:
            self._send_json(404, {"error": "no such entry"})
            return
        self._send_json(200, {"quarantined": str(moved)})

    # ------------------------------------------------------------ streaming

    def _stream_events(self, job_id: str, query: dict[str, list[str]]) -> None:
        try:
            after = int(query.get("from", ["0"])[0])
        except ValueError:
            self._send_json(400, {"error": "'from' must be an integer"})
            return
        stream = self.coordinator.relay_events(job_id, after)
        if stream is None:
            self._send_json(404, {"error": f"no such job: {job_id}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            for event in stream:
                self._write_chunk(
                    (json.dumps(event, sort_keys=True) + "\n").encode()
                )
            self._write_chunk(b"")  # terminal zero-length chunk
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()


class CoordinatorServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a ClusterCoordinator."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        coordinator: ClusterCoordinator,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, CoordinatorHandler)
        self.coordinator = coordinator
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


def run_coordinator(
    coordinator: ClusterCoordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> CoordinatorServer:
    """Start the coordinator and serve it on a background thread (port 0
    picks an ephemeral port; see ``.port``)."""
    server = CoordinatorServer((host, port), coordinator, verbose=verbose)
    coordinator.start()
    thread = threading.Thread(
        target=server.serve_forever, name="cluster-http", daemon=True
    )
    thread.start()
    server._serve_thread = thread  # type: ignore[attr-defined]
    return server


def shutdown_coordinator(
    server: CoordinatorServer, timeout: float | None = 30.0
) -> None:
    """Stop the monitor, close the listener."""
    _ = timeout
    server.coordinator.close()
    server.shutdown()
    server.server_close()
    thread = getattr(server, "_serve_thread", None)
    if thread is not None:
        thread.join(5.0)


__all__ = [
    "CoordinatorHandler",
    "CoordinatorServer",
    "run_coordinator",
    "shutdown_coordinator",
]
