"""Admission control and durability for the synthesis service.

Three pieces, all service-agnostic and individually testable:

* :class:`BoundedJobQueue` — a thread-safe priority queue with a hard
  depth bound.  A full queue rejects instead of blocking (429-style
  backpressure); the drain path atomically empties it so a shutting-down
  server can journal what it never started.
* :class:`FairShareBuckets` — per-client token buckets.  Every client
  gets the same refill rate and burst, so one chatty tenant cannot
  starve the rest; the unserved caller learns how long to back off
  (``Retry-After``).
* :class:`JobJournal` — an append-only JSONL ledger of accepted work.
  Every accepted job writes an ``accept`` record, every finished one a
  ``done`` record; the set difference is exactly the work a restarted
  server owes its clients.  Appends are flushed per record and a torn
  trailing line (crash mid-append) is ignored on read, so the journal
  degrades to *at-least-once* — re-running a journaled job is safe
  because synthesis is deterministic and stage-cached.

The admission exceptions double as the HTTP error contract: each carries
the status code the API layer should answer with.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
from pathlib import Path
from typing import Any, Callable


class AdmissionError(Exception):
    """A submission the service refuses; ``status`` is the HTTP answer."""

    status = 503

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class BadRequest(AdmissionError):
    """The submission payload is malformed (unparsable source, unknown
    device, conflicting fields)."""

    status = 400


class QueueFull(AdmissionError):
    """The job queue is at its depth bound — classic backpressure."""

    status = 429


class RateLimited(AdmissionError):
    """The client exhausted its fair-share token bucket."""

    status = 429


class Draining(AdmissionError):
    """The server is shutting down and no longer accepts work."""

    status = 503


class BoundedJobQueue:
    """Priority queue with a depth bound and an atomic drain.

    Higher ``priority`` pops first; FIFO within a priority level (a
    monotonic sequence number breaks ties, so equal-priority jobs never
    compare the payload objects themselves).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("queue depth must be >= 1")
        self.maxsize = maxsize
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def push(self, priority: int, item: Any, *, force: bool = False) -> bool:
        """Enqueue; returns False when full (unless ``force``, used by the
        journal-resume path, which must never drop accepted work)."""
        with self._cond:
            if not force and len(self._heap) >= self.maxsize:
                return False
            heapq.heappush(self._heap, (-priority, self._seq, item))
            self._seq += 1
            self._cond.notify()
            return True

    def pop(self, timeout: float | None = None) -> Any | None:
        """Dequeue the highest-priority item, or None on timeout."""
        with self._cond:
            if not self._heap:
                self._cond.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def drain(self) -> list[Any]:
        """Atomically remove and return everything still queued, in pop
        order (the shutdown path journals these for the next server)."""
        with self._cond:
            items = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            return items


class FairShareBuckets:
    """Per-client token buckets with a shared rate and burst.

    Args:
        rate: tokens (submissions) replenished per second per client.
        burst: bucket capacity — the size of an allowed burst.
        clock: injectable monotonic clock for tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, tuple[float, float]] = {}  # client -> (tokens, at)
        self._lock = threading.Lock()

    def try_acquire(self, client: str = "") -> float:
        """Consume one token for ``client``.

        Returns:
            0.0 when admitted, otherwise the seconds until the next token
            becomes available (the caller's ``Retry-After``).
        """
        now = self._clock()
        with self._lock:
            tokens, at = self._buckets.get(client, (self.burst, now))
            tokens = min(self.burst, tokens + (now - at) * self.rate)
            if tokens >= 1.0:
                self._buckets[client] = (tokens - 1.0, now)
                return 0.0
            self._buckets[client] = (tokens, now)
            return (1.0 - tokens) / self.rate


class JobJournal:
    """Append-only JSONL ledger of accepted and finished jobs."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def record_accept(
        self,
        job_id: str,
        payload: dict[str, Any],
        *,
        client: str = "",
        priority: int = 0,
        node: str = "",
    ) -> None:
        """Persist an accepted submission (its full request payload rides
        along, so a restarted server can resubmit it verbatim).  The
        cluster coordinator stamps ``node`` — which worker owns the job —
        so a dead node's debt can be reassigned by fingerprint."""
        entry: dict[str, Any] = {
            "op": "accept",
            "id": job_id,
            "payload": payload,
            "client": client,
            "priority": priority,
        }
        if node:
            entry["node"] = node
        self._append(entry)

    def record_done(self, job_id: str) -> None:
        """Mark a job finished (DONE, FAILED or CANCELLED — any terminal
        state settles the debt)."""
        self._append({"op": "done", "id": job_id})

    def _append(self, entry: dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write(line + "\n")
                fh.flush()

    def _read(self) -> list[dict[str, Any]]:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        entries = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn trailing line from a crash mid-append
            if isinstance(entry, dict) and "op" in entry and "id" in entry:
                entries.append(entry)
        return entries

    def pending(self) -> list[dict[str, Any]]:
        """Accepted-but-unfinished entries, in acceptance order — the
        work a restarted server must resume."""
        with self._lock:
            entries = self._read()
        done = {e["id"] for e in entries if e["op"] == "done"}
        return [e for e in entries if e["op"] == "accept" and e["id"] not in done]

    def done_count(self) -> int:
        """How many jobs this journal has seen through to a terminal state."""
        with self._lock:
            entries = self._read()
        return len({e["id"] for e in entries if e["op"] == "done"})

    def compact(self) -> int:
        """Rewrite the file down to its pending accepts; returns how many
        records survive.  Called after a drain and on startup so the
        ledger does not grow without bound."""
        with self._lock:
            entries = self._read()
            done = {e["id"] for e in entries if e["op"] == "done"}
            keep = [
                e for e in entries if e["op"] == "accept" and e["id"] not in done
            ]
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp.open("w") as fh:
                for entry in keep:
                    fh.write(json.dumps(entry, sort_keys=True) + "\n")
            tmp.replace(self.path)
            return len(keep)


__all__ = [
    "AdmissionError",
    "BadRequest",
    "BoundedJobQueue",
    "Draining",
    "FairShareBuckets",
    "JobJournal",
    "QueueFull",
    "RateLimited",
]
