"""The job manager: queueing, coalescing, and a synthesis worker pool.

This is the heart of ``systolic-synth serve``.  A submission arrives as a
plain JSON payload (restricted-C ``source``, a saved ``design``, or a
whole ``network`` — a built-in model name or a declarative JSON spec for
the importer — plus platform/DSE ``options``), is parsed *at admission*
into a
:class:`JobRequest`, and is identified by a **content fingerprint** — the
same SHA-256 hashing discipline the pipeline's stage cache uses
(:func:`repro.pipeline.cache.stable_fingerprint` over the nest, platform,
DSE knobs and simulator backend, salted with the code version).  Two
consequences fall out of fingerprinting at admission:

* **request coalescing** — a submission whose fingerprint matches an
  in-flight (queued/running) or already-completed job *attaches* to it
  instead of consuming a queue slot and a worker: N identical
  submissions cost one synthesis, and every attached job receives the
  primary's bit-identical result payload;
* **cheap rejection** — unparsable programs are refused with a 400 at
  the door, before they can occupy the queue.

Jobs move through a small state machine::

    QUEUED ──> RUNNING ──> DONE
       │           │  └──> FAILED
       └───────────┴─────> CANCELLED

Workers are plain threads running the staged pipeline engine
(:mod:`repro.pipeline`) over a shared :class:`StageCache`; an injected
``service.worker`` fault is retried under the process retry policy
(:mod:`repro.resilience`), so chaos plans degrade gracefully here like
everywhere else in the flow.  Accepted work is journaled
(:class:`~repro.service.queue.JobJournal`) and the drain path finishes
running jobs while requeueing the rest — a restarted manager resumes
them with their original job ids.
"""

from __future__ import annotations

import hashlib
import json
import secrets
import threading
import time
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any

from repro.ir.loop import LoopNest
from repro.model.platform import Platform
from repro.nn.models import Network
from repro.dse.explore import DseConfig
from repro.pipeline.cache import (
    CacheStore,
    StageCache,
    code_version,
    stable_fingerprint,
)
from repro.pipeline.context import SynthesisContext, SynthesisResult
from repro.pipeline.events import PipelineEvent, StageFinished
from repro.resilience.faults import InjectedFault, maybe_inject
from repro.resilience.retry import call_with_retry, current_policy
from repro.service.metrics import ServiceMetrics
from repro.service.queue import (
    BadRequest,
    BoundedJobQueue,
    Draining,
    FairShareBuckets,
    JobJournal,
    QueueFull,
    RateLimited,
)

SIM_BACKENDS = (None, "fast", "rtl", "both", "testbench")

_OPTION_KEYS = frozenset(
    {
        "device",
        "datatype",
        "clock",
        "cs",
        "top_n",
        "engine",
        "strict",
        "sim_backend",
        "require_pragma",
    }
)


class JobState(str, Enum):
    """Lifecycle of one submission."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobRequest:
    """A parsed, validated submission — everything one synthesis needs.

    Exactly one of ``nest`` (single-layer synthesis) and ``network``
    (whole-network unified DSE) is set.
    """

    platform: Platform
    config: DseConfig
    nest: LoopNest | None = None
    network: Network | None = None
    name: str = "job"
    strict: bool = False
    sim_backend: str | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> "JobRequest":
        """Parse a JSON submission body.

        Raises:
            ValueError: on any malformed field (the API layer answers 400).
        """
        if not isinstance(payload, dict):
            raise ValueError("submission body must be a JSON object")
        source = payload.get("source")
        design = payload.get("design")
        network_spec = payload.get("network")
        if sum(x is not None for x in (source, design, network_spec)) != 1:
            raise ValueError(
                "provide exactly one of 'source', 'design' or 'network'"
            )
        options = payload.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError("'options' must be an object")
        unknown = set(options) - _OPTION_KEYS
        if unknown:
            raise ValueError(
                f"unknown options: {sorted(unknown)}; "
                f"supported: {sorted(_OPTION_KEYS)}"
            )
        from repro.hw.datatype import datatype_by_name
        from repro.hw.device import device_by_name

        try:
            platform = Platform(
                device=device_by_name(str(options.get("device", "arria10_gt1150"))),
                datatype=datatype_by_name(str(options.get("datatype", "float32"))),
                assumed_clock_mhz=float(options.get("clock", 280.0)),
            )
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from exc
        strict = bool(options.get("strict", False))
        config = DseConfig(
            min_dsp_utilization=float(options.get("cs", 0.8)),
            top_n=int(options.get("top_n", 14)),
            engine=str(options.get("engine", "vector")),
            strict=strict,
        )
        sim_backend = options.get("sim_backend")
        if sim_backend is not None:
            sim_backend = str(sim_backend)
        if sim_backend not in SIM_BACKENDS:
            raise ValueError(
                f"unknown sim_backend {sim_backend!r}; "
                f"choices: {[b for b in SIM_BACKENDS if b]}"
            )
        name = str(payload.get("name") or "job")
        network: Network | None = None
        nest: LoopNest | None = None
        if network_spec is not None:
            if sim_backend is not None:
                raise ValueError(
                    "'sim_backend' applies to single-nest jobs only, not "
                    "'network' submissions"
                )
            network = cls._parse_network(network_spec)
            if not payload.get("name"):
                name = network.name
        elif source is not None:
            from repro.frontend.extract import loop_nest_from_source

            if not isinstance(source, str):
                raise ValueError("'source' must be C text")
            nest, pragma = loop_nest_from_source(source, name=name)
            if bool(options.get("require_pragma", True)) and (
                pragma is None or "systolic" not in pragma
            ):
                raise ValueError(
                    "no '#pragma systolic' found; annotate the nest or submit "
                    "with options.require_pragma=false"
                )
        else:
            from repro.model.serialize import design_from_dict

            nest = design_from_dict(design).nest
        return cls(
            nest=nest,
            network=network,
            platform=platform,
            config=config,
            name=name,
            strict=strict,
            sim_backend=sim_backend,
        )

    @staticmethod
    def _parse_network(spec: Any) -> Network:
        """A built-in model name, or a JSON spec for the importer."""
        if isinstance(spec, str):
            from repro.nn import models

            builtin = getattr(models, spec, None)
            if spec not in models.__all__ or not callable(builtin) or spec == "Network":
                choices = sorted(n for n in models.__all__ if n != "Network")
                raise ValueError(
                    f"unknown built-in network {spec!r}; choices: {choices} "
                    "(or pass a JSON spec object)"
                )
            return builtin()
        if isinstance(spec, dict):
            from repro.frontend.network import import_json

            result = import_json(spec, strict=False)
            if not result.ok:
                raise ValueError(
                    "network spec rejected: "
                    + "; ".join(d.render() for d in result.report.errors)
                )
            return result.network
        raise ValueError(
            "'network' must be a built-in model name or a JSON spec object"
        )

    def fingerprint(self) -> str:
        """The coalescing identity: same hashing discipline as the stage
        cache, so logically equal submissions always collide.  The nest's
        display name is normalized out — two tenants submitting the same
        nest under different labels must still coalesce."""
        if self.network is not None:
            subject = ["network", stable_fingerprint(replace(self.network, name=""))]
        else:
            subject = ["nest", stable_fingerprint(replace(self.nest, name=""))]
        material = json.dumps(
            [
                "service-job",
                code_version(),
                *subject,
                stable_fingerprint(self.platform),
                stable_fingerprint(self.config),
                bool(self.strict),
                self.sim_backend or "",
            ],
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()


class Job:
    """One submission's record: identity, state, events, and result."""

    def __init__(
        self,
        job_id: str,
        request: JobRequest,
        payload: dict[str, Any],
        *,
        client: str = "",
        priority: int = 0,
        fingerprint: str | None = None,
    ) -> None:
        self.id = job_id
        self.request = request
        self.payload = payload
        self.client = client
        self.priority = priority
        self.fingerprint = fingerprint or request.fingerprint()
        self.state = JobState.QUEUED
        self.error: str | None = None
        # SynthesisResult for nest jobs, MultiLayerResult for network jobs.
        self.result: Any = None
        self.result_payload: dict[str, Any] | None = None
        self.primary_id: str | None = None  # set when coalesced onto another job
        self.cancel_requested = False
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.events: list[dict[str, Any]] = []
        self.cond = threading.Condition()

    @property
    def coalesced(self) -> bool:
        return self.primary_id is not None

    def to_dict(self, *, include_result: bool = False) -> dict[str, Any]:
        """The status view the HTTP API returns."""
        data: dict[str, Any] = {
            "id": self.id,
            "state": self.state.value,
            "name": self.request.name,
            "client": self.client,
            "priority": self.priority,
            "fingerprint": self.fingerprint,
            "coalesced": self.coalesced,
            "primary": self.primary_id,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if include_result and self.result_payload is not None:
            data["result"] = self.result_payload
        return data


class JobManager:
    """Bounded queue + coalescing index + worker pool + journal.

    Args:
        workers: synthesis worker threads.
        queue_depth: admission bound; a full queue answers 429.
        cache: shared stage cache (:data:`repro.flow.compile.CacheSpec`
            semantics — None disables, True selects the default dir,
            a path roots it there).
        rate / burst: per-client fair-share token bucket (None = no
            rate limiting).
        journal: path of the accepted-work ledger (None = no durability).
        pipeline_jobs: DSE process fan-out *inside* each worker (kept at
            1 by default — the service parallelizes across jobs, not
            within them).
        completed_index_size: how many finished fingerprints stay
            attachable (the in-memory result cache for coalescing).
        retain_jobs: terminal job records kept for status polling before
            the oldest are evicted.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_depth: int = 64,
        cache: StageCache | CacheStore | str | bool | None = None,
        rate: float | None = None,
        burst: float | None = None,
        journal: str | None = None,
        pipeline_jobs: int = 1,
        completed_index_size: int = 256,
        retain_jobs: int = 1024,
    ) -> None:
        from repro.pipeline.cache import resolve_cache

        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.pipeline_jobs = pipeline_jobs
        self.cache = resolve_cache(cache)
        self.metrics = ServiceMetrics()
        self.journal = JobJournal(journal) if journal else None
        self._queue = BoundedJobQueue(queue_depth)
        self._buckets = (
            FairShareBuckets(rate, burst if burst is not None else max(1.0, rate))
            if rate is not None
            else None
        )
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._index: dict[str, str] = {}  # fingerprint -> primary job id
        self._attachments: dict[str, list[str]] = {}  # primary id -> attached ids
        self._completed_index_size = completed_index_size
        self._retain_jobs = retain_jobs
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = False
        self._started = False
        self._in_flight = 0
        self._executions = 0
        # Cluster tier hooks: a worker agent stamps its node identity and
        # folds fleet-side facts (coordinator URL, replication state)
        # into /healthz via stats_extra; degradations mirror the SA5xx
        # report vocabulary (code, reason) for SA7xx fleet events.
        self.stats_extra: dict[str, Any] = {}
        self.degradations: list[dict[str, str]] = []

    # ----------------------------------------------------------- lifecycle

    def start(self) -> int:
        """Resume journaled work and launch the worker pool; returns the
        number of jobs resumed from the journal."""
        resumed = 0
        if self.journal is not None:
            for entry in self.journal.pending():
                try:
                    self.submit(
                        entry.get("payload") or {},
                        client=str(entry.get("client", "")),
                        priority=int(entry.get("priority", 0)),
                        job_id=str(entry["id"]),
                        admission=False,
                    )
                    resumed += 1
                except BadRequest as exc:
                    # The payload no longer parses (code drift across the
                    # restart): settle the debt so it cannot wedge the
                    # journal forever.
                    self.journal.record_done(str(entry["id"]))
                    self.metrics.inc("jobs_resume_failures_total")
                    _ = exc
            self.journal.compact()
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"synth-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return resumed

    def drain(self, timeout: float | None = None) -> list[Job]:
        """Graceful shutdown: refuse new work, let running jobs finish,
        and hand back what never started (it stays journaled, so a
        restarted manager picks it up).  Returns the requeued jobs."""
        with self._lock:
            # The flag flip and the queue drain must be one atomic step:
            # draining outside the lock would race submit(), which checks
            # the flag and pushes under it — a push landing between the
            # two would be accepted but never run (a silently lost job).
            self._draining = True
            requeued = self._queue.drain()
        for job in requeued:
            self._emit(job, {"event": "JobRequeued", "id": job.id})
        self._stop.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        if self.journal is not None:
            self.journal.compact()
        return requeued

    stop = drain

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # ----------------------------------------------------------- admission

    def submit(
        self,
        payload: dict[str, Any],
        *,
        client: str = "",
        priority: int = 0,
        job_id: str | None = None,
        admission: bool = True,
    ) -> Job:
        """Admit one submission.

        Args:
            payload: the JSON body (``source``/``design`` + ``options``).
            client: fair-share identity (one token bucket per value).
            priority: higher pops first.
            job_id: preserve an existing id (journal resume).
            admission: False bypasses rate limiting and the queue bound
                (resume path only — accepted work must requeue).

        Raises:
            Draining, RateLimited, BadRequest, QueueFull: refusals, each
                carrying its HTTP status.
            InjectedFault: an active ``service.queue`` chaos plan fired.
        """
        with self._lock:
            if self._draining:
                raise Draining(
                    "server is draining; resubmit to the restarted instance"
                )
        maybe_inject("service.queue")
        if admission and self._buckets is not None:
            wait = self._buckets.try_acquire(client)
            if wait > 0.0:
                self.metrics.inc("rejected_total", reason="rate_limited")
                raise RateLimited(
                    f"client {client!r} is over its fair share; retry in {wait:.2f}s",
                    retry_after=wait,
                )
        try:
            request = JobRequest.from_payload(payload)
        except ValueError as exc:
            self.metrics.inc("rejected_total", reason="bad_request")
            raise BadRequest(str(exc)) from exc
        fingerprint = request.fingerprint()
        with self._lock:
            # Authoritative drain re-check: the early test above is only a
            # fast path, and drain() may have flipped the flag while we
            # were parsing the payload.  drain() flips and empties the
            # queue under this same lock, so once we are past this point
            # our push cannot land in an already-drained queue.
            if self._draining:
                raise Draining(
                    "server is draining; resubmit to the restarted instance"
                )
            if job_id is not None:
                # At-least-once handoff: a coordinator may re-forward a job
                # this node already owns (journal resume racing a
                # reassignment).  The existing record is authoritative.
                existing = self._jobs.get(job_id)
                if existing is not None:
                    return existing
            self.metrics.inc("jobs_submitted_total")
            job = Job(
                job_id or secrets.token_hex(8),
                request,
                payload,
                client=client,
                priority=priority,
                fingerprint=fingerprint,
            )
            primary = self._live_primary(fingerprint)
            if primary is not None and primary.id != job.id:
                self._attach(job, primary)
                return job
            self._jobs[job.id] = job
            pushed = self._queue.push(priority, job, force=not admission)
            if not pushed:
                del self._jobs[job.id]
                self.metrics.inc("rejected_total", reason="queue_full")
                raise QueueFull(
                    f"queue is at its depth bound ({self._queue.maxsize})",
                    retry_after=1.0,
                )
            # Journal every fresh acceptance — including coordinator
            # forwards that arrive with an explicit id.  Only the resume
            # path (admission=False) skips: its entries are already in
            # the ledger and re-appending them would double the debt.
            if self.journal is not None and admission:
                self.journal.record_accept(
                    job.id, payload, client=client, priority=priority
                )
            self._index[fingerprint] = job.id
            self._attachments.setdefault(job.id, [])
            self._prune_index()
            self._emit(job, {"event": "JobQueued", "id": job.id})
            return job

    def _live_primary(self, fingerprint: str) -> Job | None:
        """The attachable job for this fingerprint: queued, running, or
        successfully done.  Failed/cancelled primaries are evicted so a
        resubmission gets a fresh run."""
        primary_id = self._index.get(fingerprint)
        if primary_id is None:
            return None
        primary = self._jobs.get(primary_id)
        if primary is None or primary.state in (JobState.FAILED, JobState.CANCELLED):
            self._index.pop(fingerprint, None)
            return None
        return primary

    def _attach(self, job: Job, primary: Job) -> None:
        job.primary_id = primary.id
        job.state = primary.state if primary.state.terminal else primary.state
        self._jobs[job.id] = job
        self.metrics.inc("jobs_coalesced_total")
        if primary.state is JobState.DONE:
            job.result = primary.result
            job.result_payload = primary.result_payload
            job.finished_at = time.time()
            self.metrics.inc("jobs_completed_total", state=JobState.DONE.value)
            if self.journal is not None:
                self.journal.record_accept(
                    job.id, job.payload, client=job.client, priority=job.priority
                )
                self.journal.record_done(job.id)
        else:
            self._attachments.setdefault(primary.id, []).append(job.id)
            if self.journal is not None:
                self.journal.record_accept(
                    job.id, job.payload, client=job.client, priority=job.priority
                )
        if not primary.state.terminal:
            # a terminal primary's stream already ended with JobFinished;
            # nothing may follow the terminator
            self._emit(
                primary,
                {"event": "JobCoalesced", "id": job.id, "primary": primary.id},
            )

    def _prune_index(self) -> None:
        if len(self._index) <= self._completed_index_size:
            return
        terminal = [
            (self._jobs[jid].finished_at or 0.0, fp)
            for fp, jid in self._index.items()
            if jid in self._jobs and self._jobs[jid].state.terminal
        ]
        terminal.sort()
        excess = len(self._index) - self._completed_index_size
        for _, fp in terminal[:excess]:
            self._index.pop(fp, None)

    # ------------------------------------------------------------- queries

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_at)

    def event_source(self, job_id: str) -> Job | None:
        """The job whose event buffer a stream of ``job_id`` should
        follow: the primary for coalesced jobs, the job itself otherwise."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.primary_id is not None:
                return self._jobs.get(job.primary_id, job)
            return job

    def wait_events(
        self, source: Job, after: int, timeout: float | None = None
    ) -> list[dict[str, Any]]:
        """Events of ``source`` with seq > ``after``, blocking up to
        ``timeout`` for the first new one."""
        with source.cond:
            if len(source.events) <= after:
                source.cond.wait(timeout)
            return source.events[after:]

    def wait(self, job_id: str, timeout: float | None = None) -> Job | None:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.state.terminal:
                    return job
                source = (
                    self._jobs.get(job.primary_id, job)
                    if job.primary_id is not None
                    else job
                )
            remaining = 0.1
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    return job
            with source.cond:
                source.cond.wait(remaining)

    def stats(self) -> dict[str, Any]:
        """Instantaneous service counters (the /healthz body)."""
        with self._lock:
            done = self.metrics.counter("jobs_completed_total", state="done")
            failed = self.metrics.counter("jobs_completed_total", state="failed")
            cancelled = self.metrics.counter(
                "jobs_completed_total", state="cancelled"
            )
            return {
                "queue_depth": len(self._queue),
                "in_flight": self._in_flight,
                "workers": self.workers,
                "draining": self._draining,
                "submitted": int(self.metrics.counter("jobs_submitted_total")),
                "coalesce_hits": int(self.metrics.counter("jobs_coalesced_total")),
                "executions": self._executions,
                "done": int(done),
                "failed": int(failed),
                "cancelled": int(cancelled),
                "cache_hits": self.cache.hits if self.cache is not None else 0,
                "cache_misses": self.cache.misses if self.cache is not None else 0,
                "cache_backend": (
                    self.cache.store.kind if self.cache is not None else "none"
                ),
                "degradations": list(self.degradations),
                **self.stats_extra,
            }

    def render_metrics(self) -> str:
        """The Prometheus ``/metrics`` page."""
        with self._lock:
            gauges = {
                "queue_depth": float(len(self._queue)),
                "in_flight": float(self._in_flight),
                "draining": 1.0 if self._draining else 0.0,
            }
            if self.cache is not None:
                self.metrics.inc(
                    "stage_cache_hits_total",
                    self.cache.hits - self.metrics.counter("stage_cache_hits_total"),
                )
                self.metrics.inc(
                    "stage_cache_misses_total",
                    self.cache.misses
                    - self.metrics.counter("stage_cache_misses_total"),
                )
        return self.metrics.render(gauges)

    def note_degradation(self, code: str, reason: str) -> None:
        """Record a fleet-level degradation (SA7xx) on this node: counted
        in /metrics, listed (bounded) in /healthz."""
        with self._lock:
            self.metrics.inc("degradations_total", code=code)
            self.degradations.append({"code": code, "reason": reason})
            del self.degradations[:-32]

    # ---------------------------------------------------------- cancellation

    def cancel(self, job_id: str) -> Job | None:
        """Cancel one job.

        Queued jobs cancel immediately; running jobs are marked and their
        record flips to CANCELLED on completion (the synthesis itself is
        not interruptible mid-stage); attached jobs detach without
        disturbing the primary.  Returns the job, or None when unknown.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                return job
            if job.primary_id is not None:
                attached = self._attachments.get(job.primary_id, [])
                if job.id in attached:
                    attached.remove(job.id)
                self._finish_job(job, JobState.CANCELLED)
                return job
            attachments = self._attachments.get(job.id, [])
            if job.state is JobState.QUEUED and not attachments:
                self._index.pop(job.fingerprint, None)
                self._finish_job(job, JobState.CANCELLED)
                self._emit(job, {"event": "JobFinished", "id": job.id,
                                 "state": JobState.CANCELLED.value})
                return job
            # Running, or queued-with-attachments: the execution must
            # proceed (other clients depend on it); only this record is
            # marked for cancellation.
            job.cancel_requested = True
            return job

    # ------------------------------------------------------------- workers

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self._queue.pop(timeout=0.2)
            if job is None:
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        request = job.request
        with self._lock:
            if job.state.terminal:
                return  # cancelled while queued
            attachments = list(self._attachments.get(job.id, ()))
            if job.cancel_requested and not attachments:
                self._index.pop(job.fingerprint, None)
                self._finish_job(job, JobState.CANCELLED)
                self._emit(job, {"event": "JobFinished", "id": job.id,
                                 "state": JobState.CANCELLED.value})
                return
            job.state = JobState.RUNNING
            job.started_at = time.time()
            for attached_id in attachments:
                attached = self._jobs.get(attached_id)
                if attached is not None:
                    attached.state = JobState.RUNNING
                    attached.started_at = job.started_at
            self._in_flight += 1
        self._emit(job, {"event": "JobStarted", "id": job.id})

        def bridge(event: PipelineEvent) -> None:
            self._emit(job, event.to_dict())
            if isinstance(event, StageFinished):
                self.metrics.observe_stage(event.stage, event.seconds)

        policy = current_policy()

        def attempt() -> Any:
            maybe_inject("service.worker")
            if request.network is not None:
                from repro.pipeline.unified import run_unified_dse

                return run_unified_dse(
                    request.network,
                    request.platform,
                    request.config,
                    jobs=self.pipeline_jobs,
                    cache=self.cache,
                    observers=(bridge,),
                )
            from repro.pipeline.engine import PipelineEngine
            from repro.pipeline.stages import synthesis_stages

            ctx = SynthesisContext(
                platform=request.platform,
                config=request.config,
                name=request.name,
                nest=request.nest,
                strict=request.strict,
                jobs=self.pipeline_jobs,
                sim_backend=request.sim_backend,
            )
            engine = PipelineEngine(
                synthesis_stages(), cache=self.cache, observers=(bridge,)
            )
            return engine.run(ctx).to_result()

        def on_retry(attempt_no: int, exc: Exception) -> None:
            self.metrics.inc("worker_retries_total")
            self._emit(
                job,
                {
                    "event": "StageRetried",
                    "stage": "service.worker",
                    "attempt": attempt_no,
                    "max_attempts": policy.max_attempts,
                    "reason": f"{type(exc).__name__}: {exc}",
                },
            )

        try:
            result = call_with_retry(
                attempt,
                policy=policy,
                retry_on=(InjectedFault,),
                on_retry=on_retry,
            )
            error = None
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            result = None
            error = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self._in_flight -= 1
            self._executions += 1
            attachments = list(self._attachments.pop(job.id, ()))
            if result is not None:
                if request.network is not None:
                    from repro.pipeline.codecs import encode_unified

                    payload = encode_unified(result)
                else:
                    from repro.model.serialize import result_to_dict

                    payload = result_to_dict(result)
                outcome = JobState.DONE
            else:
                payload = None
                outcome = JobState.FAILED
                self._index.pop(job.fingerprint, None)
            primary_outcome = (
                JobState.CANCELLED if job.cancel_requested else outcome
            )
            self._finish_job(
                job, primary_outcome, result=result, payload=payload, error=error
            )
            for attached_id in attachments:
                attached = self._jobs.get(attached_id)
                if attached is None or attached.state.terminal:
                    continue
                self._finish_job(
                    attached, outcome, result=result, payload=payload, error=error
                )
            self._prune_jobs()
        self._emit(
            job,
            {
                "event": "JobFinished",
                "id": job.id,
                "state": primary_outcome.value,
                "error": error,
            },
        )

    def _finish_job(
        self,
        job: Job,
        state: JobState,
        *,
        result: Any = None,
        payload: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Terminal transition (caller holds the lock): record, notify
        waiters, settle the journal."""
        job.state = state
        job.result = result
        job.result_payload = payload
        job.error = error
        job.finished_at = time.time()
        self.metrics.inc("jobs_completed_total", state=state.value)
        if self.journal is not None:
            self.journal.record_done(job.id)
        with job.cond:
            job.cond.notify_all()

    def _prune_jobs(self) -> None:
        if len(self._jobs) <= self._retain_jobs:
            return
        terminal = sorted(
            (j for j in self._jobs.values() if j.state.terminal),
            key=lambda j: j.finished_at or 0.0,
        )
        excess = len(self._jobs) - self._retain_jobs
        live_ids = set(self._index.values())
        for job in terminal:
            if excess <= 0:
                break
            if job.id in live_ids:
                continue  # still the attachable result for its fingerprint
            del self._jobs[job.id]
            excess -= 1

    # -------------------------------------------------------------- events

    def _emit(self, job: Job, event: dict[str, Any]) -> None:
        """Append one event to ``job``'s buffer (primary jobs only) and
        wake streaming connections."""
        with job.cond:
            entry = {"seq": len(job.events), "ts": time.time(), **event}
            job.events.append(entry)
            job.cond.notify_all()


__all__ = [
    "Job",
    "JobManager",
    "JobRequest",
    "JobState",
    "SIM_BACKENDS",
]
