"""Synthesis-as-a-service: a long-running daemon over the staged pipeline.

The service layer turns the push-button flow into a shared resource:
submissions are fingerprinted and coalesced (N identical requests cost
one synthesis), admission is bounded and fair-share rate limited, and
progress streams live over HTTP as the typed pipeline events.

Modules:
    jobs: job manager — state machine, coalescing index, worker pool.
    queue: bounded priority queue, token buckets, restart journal.
    http: stdlib ThreadingHTTPServer API (submit/status/stream/metrics).
    client: urllib client with reconnecting event streams.
    metrics: Prometheus text-format counters and latency histograms.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager, JobRequest, JobState
from repro.service.queue import (
    AdmissionError,
    BadRequest,
    BoundedJobQueue,
    Draining,
    FairShareBuckets,
    JobJournal,
    QueueFull,
    RateLimited,
)

__all__ = [
    "AdmissionError",
    "BadRequest",
    "BoundedJobQueue",
    "Draining",
    "FairShareBuckets",
    "Job",
    "JobJournal",
    "JobManager",
    "JobRequest",
    "JobState",
    "QueueFull",
    "RateLimited",
    "ServiceClient",
    "ServiceError",
]
