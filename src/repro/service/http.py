"""The stdlib-only HTTP face of the synthesis service.

A :class:`ThreadingHTTPServer` wrapping one :class:`JobManager`:

====== ============================ ===========================================
Method Path                         Meaning
====== ============================ ===========================================
POST   /v1/jobs                     submit (JSON body) → 202 + job status
GET    /v1/jobs                     list jobs (most recent last)
GET    /v1/jobs/{id}                job status; ``?result=1`` embeds the
                                    full synthesis result payload
GET    /v1/jobs/{id}/events         live progress stream — chunked JSONL of
                                    the typed pipeline events; ``?from=N``
                                    resumes after sequence number N
DELETE /v1/jobs/{id}                cancel
GET    /healthz                     liveness + instantaneous counters
GET    /metrics                     Prometheus text exposition
====== ============================ ===========================================

Admission refusals map straight from the exception contract in
:mod:`repro.service.queue`: :class:`BadRequest` → 400,
:class:`QueueFull`/:class:`RateLimited` → 429 (with ``Retry-After``),
:class:`Draining` → 503.  An injected ``service.queue`` fault surfaces as
a 503 so chaos runs look like a briefly unhealthy server, not a crash.

The event stream is plain HTTP/1.1 chunked transfer encoding — one JSON
object per line, terminated by a ``JobFinished`` event — so the stdlib
client (``urllib``) can follow it with nothing but ``readline()``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.resilience.faults import InjectedFault
from repro.service.jobs import JobManager
from repro.service.queue import AdmissionError

#: Submission bodies above this size are refused outright (413).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: How long one streaming poll waits for a new event before sending a
#: keepalive comment-line (keeps intermediaries from timing the stream out).
STREAM_POLL_SECONDS = 5.0


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; the manager lives on ``self.server``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-synth"

    # quiet by default; the daemon's own logging is the journal + metrics
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # ------------------------------------------------------------ plumbing

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        *,
        retry_after: float | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, round(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        return json.loads(raw)

    def _client_id(self) -> str:
        """Fair-share identity: an explicit header beats the peer address
        (so load generators can emulate distinct tenants)."""
        return self.headers.get("X-Client-Id") or self.client_address[0]

    # ------------------------------------------------------------- routing

    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        parsed = urlparse(self.path)
        if parsed.path != "/v1/jobs":
            self._send_json(404, {"error": f"no such resource: {parsed.path}"})
            return
        try:
            payload = self._read_body()
        except ValueError as exc:
            self._send_json(400, {"error": f"unreadable body: {exc}"})
            return
        priority = 0
        job_id: str | None = None
        if isinstance(payload, dict):
            try:
                priority = int(payload.get("priority", 0))
            except (TypeError, ValueError):
                self._send_json(400, {"error": "'priority' must be an integer"})
                return
            # The cluster coordinator assigns ids at its door and forwards
            # them so status/journal identities line up fleet-wide.
            raw_id = payload.pop("id", None)
            if raw_id is not None:
                if not isinstance(raw_id, str) or not raw_id:
                    self._send_json(
                        400, {"error": "'id' must be a non-empty string"}
                    )
                    return
                job_id = raw_id
        try:
            job = self.manager.submit(
                payload, client=self._client_id(), priority=priority, job_id=job_id
            )
        except AdmissionError as exc:
            self._send_json(
                exc.status, {"error": str(exc)}, retry_after=exc.retry_after
            )
            return
        except InjectedFault as exc:
            self._send_json(503, {"error": f"injected fault: {exc}"})
            return
        self._send_json(202, job.to_dict())

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        parts = [p for p in parsed.path.split("/") if p]
        if parsed.path == "/healthz":
            stats = self.manager.stats()
            stats["status"] = "draining" if stats["draining"] else "ok"
            self._send_json(200, stats)
            return
        if parsed.path == "/metrics":
            self._send_text(
                200,
                self.manager.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        if parsed.path == "/v1/jobs":
            self._send_json(
                200, {"jobs": [job.to_dict() for job in self.manager.jobs()]}
            )
            return
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self.manager.get(parts[2])
            if job is None:
                self._send_json(404, {"error": f"no such job: {parts[2]}"})
                return
            include_result = query.get("result", ["0"])[0] not in ("0", "false", "")
            self._send_json(200, job.to_dict(include_result=include_result))
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "events":
            self._stream_events(parts[2], query)
            return
        self._send_json(404, {"error": f"no such resource: {parsed.path}"})

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self.manager.cancel(parts[2])
            if job is None:
                self._send_json(404, {"error": f"no such job: {parts[2]}"})
                return
            self._send_json(200, job.to_dict())
            return
        self._send_json(404, {"error": "DELETE only supports /v1/jobs/{id}"})

    # ------------------------------------------------------------ streaming

    def _stream_events(self, job_id: str, query: dict[str, list[str]]) -> None:
        source = self.manager.event_source(job_id)
        job = self.manager.get(job_id)
        if source is None or job is None:
            self._send_json(404, {"error": f"no such job: {job_id}"})
            return
        try:
            after = int(query.get("from", ["0"])[0])
        except ValueError:
            self._send_json(400, {"error": "'from' must be an integer"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            while True:
                events = self.manager.wait_events(
                    source, after, timeout=STREAM_POLL_SECONDS
                )
                if not events:
                    # the job may have finished before we subscribed, or the
                    # stream may simply be idle mid-stage
                    current = self.manager.get(job_id)
                    if current is None or (
                        current.state.terminal and len(source.events) <= after
                    ):
                        break
                    self._write_chunk(b": keepalive\n")
                    continue
                for event in events:
                    self._write_chunk(
                        (json.dumps(event, sort_keys=True) + "\n").encode()
                    )
                after += len(events)
                if any(e.get("event") == "JobFinished" for e in events):
                    break
            self._write_chunk(b"")  # terminal zero-length chunk
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a JobManager."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        manager: JobManager,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ServiceHandler)
        self.manager = manager
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


def run_server(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> ServiceServer:
    """Start the manager and serve it on a background thread.

    Args:
        port: 0 picks an ephemeral port (tests); the bound port is on the
            returned server's ``.port``.

    Returns:
        The live server; stop it with :func:`shutdown_server`.
    """
    server = ServiceServer((host, port), manager, verbose=verbose)
    manager.start()
    thread = threading.Thread(
        target=server.serve_forever, name="synth-http", daemon=True
    )
    thread.start()
    server._serve_thread = thread  # type: ignore[attr-defined]
    return server


def shutdown_server(server: ServiceServer, timeout: float | None = 30.0) -> None:
    """Graceful stop: drain the manager (running jobs finish, queued jobs
    stay journaled), then close the listener."""
    server.manager.drain(timeout=timeout)
    server.shutdown()
    server.server_close()
    thread = getattr(server, "_serve_thread", None)
    if thread is not None:
        thread.join(5.0)


__all__ = [
    "MAX_BODY_BYTES",
    "ServiceHandler",
    "ServiceServer",
    "run_server",
    "shutdown_server",
]
