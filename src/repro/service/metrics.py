"""Service observability: counters and latency histograms, rendered in
Prometheus text exposition format.

The synthesis daemon is meant to sit behind a scraper, so everything the
job manager counts — submissions, coalesce hits, rejections, per-stage
wall time — lands here and comes back out of ``GET /metrics`` as plain
``text/plain; version=0.0.4`` samples.  Counters carry optional labels;
histograms use a fixed bucket ladder wide enough to cover both a warm
cache hit (~10 ms) and a cold VGG-scale DSE (tens of seconds).  All
methods are thread-safe: worker threads observe while HTTP threads
render.
"""

from __future__ import annotations

import math
import threading

PREFIX = "repro_service"

#: Upper bounds (seconds) of the stage-latency histogram buckets.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

Labels = tuple[tuple[str, str], ...]


def _labels(kwargs: dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in kwargs.items()))


def _render_labels(labels: Labels) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class LatencyHistogram:
    """One Prometheus histogram: bucket counts, sum and count."""

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1


class ServiceMetrics:
    """Thread-safe counter/histogram registry with a Prometheus renderer.

    Counters are created on first increment; histograms are keyed by
    pipeline stage name.  Gauges are not stored — they are instantaneous
    reads of the job manager (queue depth, in-flight count) handed to
    :meth:`render` at scrape time.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, Labels], float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        key = (name, _labels(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def counter(self, name: str, **labels: str) -> float:
        with self._lock:
            return self._counters.get((name, _labels(labels)), 0.0)

    def counter_sum(self, name: str) -> float:
        """Total of a counter across every label set (fleet rollups)."""
        with self._lock:
            return sum(
                value for (key, _), value in self._counters.items() if key == name
            )

    def observe_stage(self, stage: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(stage)
            if histogram is None:
                histogram = self._histograms[stage] = LatencyHistogram()
            histogram.observe(seconds)

    def render(self, gauges: dict[str, float] | None = None) -> str:
        """The full ``/metrics`` page: gauges, counters, histograms."""
        lines: list[str] = []
        for name, value in sorted((gauges or {}).items()):
            metric = f"{PREFIX}_{name}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
        with self._lock:
            by_name: dict[str, list[tuple[Labels, float]]] = {}
            for (name, labels), value in self._counters.items():
                by_name.setdefault(name, []).append((labels, value))
            for name in sorted(by_name):
                metric = f"{PREFIX}_{name}"
                lines.append(f"# TYPE {metric} counter")
                for labels, value in sorted(by_name[name]):
                    lines.append(
                        f"{metric}{_render_labels(labels)} {_format_value(value)}"
                    )
            if self._histograms:
                metric = f"{PREFIX}_stage_seconds"
                lines.append(f"# TYPE {metric} histogram")
                for stage in sorted(self._histograms):
                    histogram = self._histograms[stage]
                    cumulative = 0
                    for bound, bucket in zip(
                        histogram.buckets + (math.inf,), histogram.counts
                    ):
                        cumulative += bucket
                        labels = _render_labels(
                            (("le", _format_value(bound)), ("stage", stage))
                        )
                        lines.append(f"{metric}_bucket{labels} {cumulative}")
                    labels = _render_labels((("stage", stage),))
                    lines.append(f"{metric}_sum{labels} {repr(histogram.sum)}")
                    lines.append(f"{metric}_count{labels} {histogram.count}")
        return "\n".join(lines) + "\n"


__all__ = [
    "LATENCY_BUCKETS",
    "LatencyHistogram",
    "PREFIX",
    "ServiceMetrics",
]
