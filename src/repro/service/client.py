"""Stdlib client for the synthesis service.

:class:`ServiceClient` speaks the small JSON API of
:mod:`repro.service.http` over ``urllib`` — submit, poll, cancel, scrape
— and follows the chunked progress stream with automatic reconnection:
every event carries its sequence number, so a dropped connection resumes
with ``?from=<last seq + 1>`` under the process retry policy
(:mod:`repro.resilience`) and the caller sees each event exactly once.

Errors mirror the server's admission contract: any non-2xx answer raises
:class:`ServiceError` carrying the HTTP status and the server's
``error`` text, so CLI code can distinguish a 400 (fix your program)
from a 429 (back off and resubmit).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Iterator

from repro.resilience.retry import RetryPolicy, current_policy


class ServiceError(Exception):
    """A non-2xx answer from the service; ``status`` is the HTTP code."""

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServiceClient:
    """One service endpoint.

    Args:
        base_url: e.g. ``http://127.0.0.1:8451`` (no trailing slash
            needed).
        client_id: fair-share identity sent as ``X-Client-Id``; None
            lets the server key on the peer address.
        timeout: per-request socket timeout in seconds.
    """

    def __init__(
        self,
        base_url: str,
        *,
        client_id: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        *,
        client_id: str | None = None,
    ) -> Any:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        effective_id = client_id if client_id is not None else self.client_id
        if effective_id:
            request.add_header("X-Client-Id", effective_id)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            detail = exc.read()
            try:
                message = json.loads(detail).get("error", detail.decode())
            except ValueError:
                message = detail.decode(errors="replace")
            retry_after = exc.headers.get("Retry-After")
            raise ServiceError(
                exc.code,
                message,
                retry_after=float(retry_after) if retry_after else None,
            ) from exc

    # ----------------------------------------------------------------- api

    def submit(
        self,
        *,
        source: str | None = None,
        design: dict[str, Any] | None = None,
        network: str | dict[str, Any] | None = None,
        name: str | None = None,
        priority: int = 0,
        options: dict[str, Any] | None = None,
        job_id: str | None = None,
    ) -> dict[str, Any]:
        """POST /v1/jobs; returns the job status dict (id, state, ...).

        Exactly one of ``source`` (restricted-C nest), ``design`` (a saved
        design-point payload) or ``network`` (a built-in network name or a
        JSON spec object) identifies the work.  ``job_id`` preserves an
        externally assigned identity (the cluster coordinator's handoff).
        """
        body: dict[str, Any] = {"priority": priority}
        if job_id is not None:
            body["id"] = job_id
        if source is not None:
            body["source"] = source
        if design is not None:
            body["design"] = design
        if network is not None:
            body["network"] = network
        if name is not None:
            body["name"] = name
        if options:
            body["options"] = options
        return self._request("POST", "/v1/jobs", body)

    def submit_payload(
        self, payload: dict[str, Any], *, client_id: str | None = None
    ) -> dict[str, Any]:
        """POST a raw, pre-built submission body verbatim (the coordinator
        forwards client payloads — and the submitting tenant's fair-share
        identity — without re-encoding them)."""
        return self._request("POST", "/v1/jobs", payload, client_id=client_id)

    def status(self, job_id: str, *, result: bool = False) -> dict[str, Any]:
        suffix = "?result=1" if result else ""
        return self._request("GET", f"/v1/jobs/{job_id}{suffix}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        request = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode()

    # ------------------------------------------------------------ streaming

    def events(
        self,
        job_id: str,
        *,
        from_seq: int = 0,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Iterator[dict[str, Any]]:
        """Follow a job's progress stream, reconnecting on drops.

        Yields each event dict exactly once, in sequence order, ending
        after the ``JobFinished`` event.  A broken connection re-opens
        the stream at ``?from=<next seq>`` under ``policy`` (the process
        default when None); the retry budget resets whenever the stream
        makes progress, so a long job with several blips still completes.
        """
        active = policy if policy is not None else current_policy()
        next_seq = from_seq
        failures = 0
        while True:
            made_progress = False
            try:
                for event in self._stream_once(job_id, next_seq):
                    made_progress = True
                    next_seq = int(event.get("seq", next_seq)) + 1
                    yield event
                    if event.get("event") == "JobFinished":
                        return
                # stream closed without JobFinished: the job was already
                # terminal server-side (replay complete) — confirm and stop
                status = self.status(job_id)
                if status["state"] in ("done", "failed", "cancelled"):
                    return
            except ServiceError:
                raise  # 404 etc. — not a transport blip
            except (OSError, ValueError) as exc:
                if made_progress:
                    failures = 0
                failures += 1
                if failures >= active.max_attempts:
                    raise ServiceError(
                        0, f"event stream lost after {failures} attempts: {exc}"
                    ) from exc
                delay = active.delay_for(failures + 1)
                if delay > 0:
                    sleep(delay)

    def _stream_once(self, job_id: str, from_seq: int) -> Iterator[dict[str, Any]]:
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events?from={from_seq}"
        )
        if self.client_id:
            request.add_header("X-Client-Id", self.client_id)
        try:
            # no timeout here: the server keepalives idle streams, and a
            # stuck connection surfaces as an OSError the retry loop owns
            with urllib.request.urlopen(request, timeout=None) as response:
                # urllib decodes the chunked framing transparently
                for raw in response:
                    line = raw.decode().strip()
                    if not line or line.startswith(":"):
                        continue  # keepalive
                    yield json.loads(line)
        except urllib.error.HTTPError as exc:
            detail = exc.read()
            try:
                message = json.loads(detail).get("error", detail.decode())
            except ValueError:
                message = detail.decode(errors="replace")
            raise ServiceError(exc.code, message) from exc

    # ---------------------------------------------------------- conveniences

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll: float = 0.1,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the status with the
        result payload embedded (``?result=1``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id, result=True)
            if status["state"] in ("done", "failed", "cancelled"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {status['state']}")
            time.sleep(poll)


__all__ = ["ServiceClient", "ServiceError"]
