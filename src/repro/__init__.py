"""repro — Automated systolic array architecture synthesis for CNN
inference on FPGAs (reproduction of Wei et al., DAC 2017).

The public API re-exports the main entry points of each layer; see the
package docstrings (``repro.ir``, ``repro.model``, ``repro.dse``,
``repro.sim``, ``repro.codegen``, ``repro.flow``) for the full surface,
and README.md / DESIGN.md for the architecture.

Typical use::

    from repro import compile_c_source, Platform

    result = compile_c_source(open("layer.c").read())
    print(result.throughput_gops)

or, layer by layer::

    from repro import alexnet, Platform, synthesize_network

    synthesis = synthesize_network(alexnet(), Platform())
    print(synthesis.latency_ms)
"""

from repro.flow.compile import (
    compile_c_source,
    synthesize_nest,
    synthesize_network,
)
from repro.ir.loop import LoopNest, conv_loop_nest
from repro.model.design_point import ArrayShape, DesignPoint
from repro.model.mapping import Mapping, feasible_mappings
from repro.model.platform import Platform
from repro.nn.models import alexnet, tiny_cnn, vgg16
from repro.dse.explore import DseConfig, explore
from repro.dse.multi_layer import select_unified_design
from repro.sim.perf import simulate_performance

__version__ = "1.0.0"

__all__ = [
    "ArrayShape",
    "DesignPoint",
    "DseConfig",
    "LoopNest",
    "Mapping",
    "Platform",
    "__version__",
    "alexnet",
    "compile_c_source",
    "conv_loop_nest",
    "explore",
    "feasible_mappings",
    "select_unified_design",
    "simulate_performance",
    "synthesize_nest",
    "synthesize_network",
    "tiny_cnn",
    "vgg16",
]
