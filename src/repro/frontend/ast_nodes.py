"""AST for the restricted C subset.

The grammar covers exactly what the paper's programming model needs (the
left side of Fig. 6): optional array declarations, a ``#pragma`` marking
the nest, a perfect nest of normalized counted ``for`` loops, and one
``+=`` multiply-accumulate statement over subscripted arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AffineTerm:
    """``coefficient * iterator`` inside a subscript."""

    coefficient: int
    iterator: str


@dataclass(frozen=True)
class SubscriptExpr:
    """An affine subscript: sum of terms plus a constant.

    ``line``/``column`` locate the first token of the subscript in the
    source (0 when the node was built programmatically).
    """

    terms: tuple[AffineTerm, ...]
    constant: int = 0
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class ArrayRef:
    """``NAME[e0][e1]...`` reference.

    ``line``/``column`` locate the array name token in the source
    (0 when the node was built programmatically).
    """

    name: str
    subscripts: tuple[SubscriptExpr, ...]
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class MacStatement:
    """``target += a * b;`` — the convolution body."""

    target: ArrayRef
    lhs: ArrayRef
    rhs: ArrayRef
    line: int


@dataclass(frozen=True)
class ForLoop:
    """``for (it = 0; it < bound; it++) body`` — normalized counted loop."""

    iterator: str
    bound: int
    body: "ForLoop | MacStatement"
    line: int


@dataclass(frozen=True)
class ArrayDecl:
    """``float NAME[d0][d1]...;`` — recorded, used for shape checking."""

    name: str
    element_type: str
    dims: tuple[int, ...]


@dataclass(frozen=True)
class Program:
    """A parsed source file.

    Attributes:
        declarations: array declarations, in order.
        pragma: the pragma text attached to the nest (e.g. ``"systolic"``),
            or None if the nest was unannotated.
        nest: the outermost loop.
    """

    declarations: tuple[ArrayDecl, ...]
    pragma: str | None
    nest: ForLoop


__all__ = [
    "AffineTerm",
    "ArrayDecl",
    "ArrayRef",
    "ForLoop",
    "MacStatement",
    "Program",
    "SubscriptExpr",
]
