"""Restricted-C front end (the ROSE substitute).

The paper's flow starts from "a user-written intuitive CNN program": a
perfect loop nest annotated with a pragma (Fig. 6), analyzed by the ROSE
compiler infrastructure for iteration domains and access functions.  This
package parses the same programs directly:

* :mod:`repro.frontend.lexer` — tokenizer for the C subset;
* :mod:`repro.frontend.ast_nodes` — the tiny AST;
* :mod:`repro.frontend.cparser` — recursive-descent parser for pragma +
  perfect ``for`` nest + multiply-accumulate statement;
* :mod:`repro.frontend.extract` — AST to :class:`repro.ir.LoopNest`.

Everything the downstream flow needs — loop bounds and affine subscripts
— is recovered exactly; anything outside the subset is rejected with a
location-bearing error.

A second, whole-network entry point lives in
:mod:`repro.frontend.network`: declarative JSON specs and ONNX graphs
are lowered to :class:`repro.nn.Network` descriptors (and from there to
the same loop nests) with structured ``SA14x`` diagnostics.
"""

from repro.frontend.cparser import ParseError, parse_program
from repro.frontend.emit import EmitError, nest_to_c
from repro.frontend.extract import extract_loop_nest, loop_nest_from_source
from repro.frontend.lexer import LexError
from repro.frontend.network import ImportResult, import_json, import_onnx, load_network

__all__ = [
    "EmitError",
    "ImportResult",
    "LexError",
    "ParseError",
    "import_json",
    "import_onnx",
    "load_network",
    "nest_to_c",
    "extract_loop_nest",
    "loop_nest_from_source",
    "parse_program",
]
