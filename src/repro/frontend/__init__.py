"""Restricted-C front end (the ROSE substitute).

The paper's flow starts from "a user-written intuitive CNN program": a
perfect loop nest annotated with a pragma (Fig. 6), analyzed by the ROSE
compiler infrastructure for iteration domains and access functions.  This
package parses the same programs directly:

* :mod:`repro.frontend.lexer` — tokenizer for the C subset;
* :mod:`repro.frontend.ast_nodes` — the tiny AST;
* :mod:`repro.frontend.cparser` — recursive-descent parser for pragma +
  perfect ``for`` nest + multiply-accumulate statement;
* :mod:`repro.frontend.extract` — AST to :class:`repro.ir.LoopNest`.

Everything the downstream flow needs — loop bounds and affine subscripts
— is recovered exactly; anything outside the subset is rejected with a
location-bearing error.
"""

from repro.frontend.cparser import ParseError, parse_program
from repro.frontend.emit import EmitError, nest_to_c
from repro.frontend.extract import extract_loop_nest, loop_nest_from_source
from repro.frontend.lexer import LexError

__all__ = [
    "EmitError",
    "LexError",
    "ParseError",
    "nest_to_c",
    "extract_loop_nest",
    "loop_nest_from_source",
    "parse_program",
]
