"""Recursive-descent parser for the restricted C subset.

Grammar (informal)::

    program    := decl* pragma? for_loop
    decl       := type IDENT ('[' NUMBER ']')+ ';'
    pragma     := '#pragma' ...          (captured by the lexer)
    for_loop   := 'for' '(' init ';' cond ';' incr ')' ('{'? body '}'?)
    init       := ('int')? IDENT '=' NUMBER
    cond       := IDENT '<' NUMBER  |  IDENT '<=' NUMBER
    incr       := IDENT '++'  |  IDENT '+=' NUMBER(=1)
    body       := for_loop | mac ';'
    mac        := array_ref '+=' array_ref '*' array_ref
    array_ref  := IDENT ('[' affine ']')+
    affine     := term ('+' term)*
    term       := NUMBER | IDENT | NUMBER '*' IDENT | IDENT '*' NUMBER

Anything else raises :class:`ParseError` with a source location.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    PARSE_DECL_NOT_ARRAY,
    PARSE_LOOP_NOT_NORMALIZED,
    PARSE_LOOP_STEP,
    PARSE_LOOP_VAR_MISMATCH,
    PARSE_MISSING_SUBSCRIPT,
    PARSE_SYNTAX,
    Diagnostic,
    Severity,
    SourceSpan,
)
from repro.frontend.ast_nodes import (
    AffineTerm,
    ArrayDecl,
    ArrayRef,
    ForLoop,
    MacStatement,
    Program,
    SubscriptExpr,
)
from repro.frontend.lexer import Token, TokenKind, tokenize

_TYPE_KEYWORDS = {"float", "double", "int", "short", "char", "long"}


class ParseError(ValueError):
    """Syntax or subset violation, with source location in the message.

    Carries a structured :attr:`diagnostic` (code + source span) so the
    analysis layer can report rejections without scraping the message.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = PARSE_SYNTAX,
        span: SourceSpan | None = None,
        hint: str | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.span = span
        self.hint = hint

    @property
    def diagnostic(self) -> Diagnostic:
        """The error as a structured diagnostic."""
        return Diagnostic(self.code, Severity.ERROR, str(self), self.span, self.hint)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------- plumbing

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(
        self, message: str, *, code: str = PARSE_SYNTAX, hint: str | None = None
    ) -> ParseError:
        tok = self.current
        return ParseError(
            f"line {tok.line}, column {tok.column}: {message} (got {tok})",
            code=code,
            span=SourceSpan.from_token(tok),
            hint=hint,
        )

    def advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        tok = self.current
        if tok.kind is kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text if text is not None else kind.value
            raise self.error(f"expected {want!r}")
        return tok

    # -------------------------------------------------------------- grammar

    def parse_program(self) -> Program:
        declarations: list[ArrayDecl] = []
        pragma: str | None = None
        while True:
            tok = self.current
            if tok.kind is TokenKind.PRAGMA:
                pragma = self.advance().text.removeprefix("pragma").strip()
                continue
            if tok.kind is TokenKind.IDENT and tok.text in _TYPE_KEYWORDS:
                declarations.append(self.parse_declaration())
                continue
            break
        if not (self.current.kind is TokenKind.IDENT and self.current.text == "for"):
            raise self.error("expected a for-loop nest")
        nest = self.parse_for()
        self.expect(TokenKind.EOF)
        return Program(tuple(declarations), pragma, nest)

    def parse_declaration(self) -> ArrayDecl:
        element_type = self.expect(TokenKind.IDENT).text
        name = self.expect(TokenKind.IDENT).text
        dims: list[int] = []
        while self.accept(TokenKind.PUNCT, "["):
            dims.append(int(self.expect(TokenKind.NUMBER).text))
            self.expect(TokenKind.PUNCT, "]")
        if not dims:
            raise self.error(
                f"declaration of {name!r} must be an array", code=PARSE_DECL_NOT_ARRAY
            )
        self.expect(TokenKind.PUNCT, ";")
        return ArrayDecl(name, element_type, tuple(dims))

    def parse_for(self) -> ForLoop:
        line = self.current.line
        self.expect(TokenKind.IDENT, "for")
        self.expect(TokenKind.PUNCT, "(")
        self.accept(TokenKind.IDENT, "int")
        iterator = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.PUNCT, "=")
        start_token = self.expect(TokenKind.NUMBER)
        start = int(start_token.text)
        if start != 0:
            raise ParseError(
                f"line {start_token.line}, column {start_token.column}: "
                f"loop {iterator!r} must start at 0 (normalized form)",
                code=PARSE_LOOP_NOT_NORMALIZED,
                span=SourceSpan.from_token(start_token),
                hint="normalize the loop to start at 0 and fold the offset into the subscripts",
            )
        self.expect(TokenKind.PUNCT, ";")

        cond_token = self.expect(TokenKind.IDENT)
        cond_var = cond_token.text
        if cond_var != iterator:
            raise ParseError(
                f"line {cond_token.line}, column {cond_token.column}: "
                f"condition variable {cond_var!r} != iterator {iterator!r}",
                code=PARSE_LOOP_VAR_MISMATCH,
                span=SourceSpan.from_token(cond_token),
            )
        if self.accept(TokenKind.PUNCT, "<"):
            bound = int(self.expect(TokenKind.NUMBER).text)
        elif self.accept(TokenKind.PUNCT, "<="):
            bound = int(self.expect(TokenKind.NUMBER).text) + 1
        else:
            raise self.error("expected '<' or '<=' in loop condition")
        self.expect(TokenKind.PUNCT, ";")

        incr_token = self.expect(TokenKind.IDENT)
        incr_var = incr_token.text
        if incr_var != iterator:
            raise ParseError(
                f"line {incr_token.line}, column {incr_token.column}: "
                f"increment variable {incr_var!r} != iterator {iterator!r}",
                code=PARSE_LOOP_VAR_MISMATCH,
                span=SourceSpan.from_token(incr_token),
            )
        if self.accept(TokenKind.PUNCT, "++"):
            pass
        elif self.accept(TokenKind.PUNCT, "+="):
            step_token = self.expect(TokenKind.NUMBER)
            if int(step_token.text) != 1:
                raise ParseError(
                    f"line {step_token.line}, column {step_token.column}: "
                    "only unit-stride loops are supported (tile in the flow)",
                    code=PARSE_LOOP_STEP,
                    span=SourceSpan.from_token(step_token),
                    hint="the DSE derives blocking itself; write a stride-1 loop",
                )
        else:
            raise self.error("expected '++' or '+= 1'")
        self.expect(TokenKind.PUNCT, ")")

        braced = self.accept(TokenKind.PUNCT, "{") is not None
        if self.current.kind is TokenKind.IDENT and self.current.text == "for":
            body: ForLoop | MacStatement = self.parse_for()
        else:
            body = self.parse_mac()
        if braced:
            self.expect(TokenKind.PUNCT, "}")
        return ForLoop(iterator, bound, body, line)

    def parse_mac(self) -> MacStatement:
        line = self.current.line
        target = self.parse_array_ref()
        self.expect(TokenKind.PUNCT, "+=")
        lhs = self.parse_array_ref()
        self.expect(TokenKind.PUNCT, "*")
        rhs = self.parse_array_ref()
        self.expect(TokenKind.PUNCT, ";")
        return MacStatement(target, lhs, rhs, line)

    def parse_array_ref(self) -> ArrayRef:
        name_token = self.expect(TokenKind.IDENT)
        name = name_token.text
        subscripts: list[SubscriptExpr] = []
        while self.accept(TokenKind.PUNCT, "["):
            subscripts.append(self.parse_affine())
            self.expect(TokenKind.PUNCT, "]")
        if not subscripts:
            raise ParseError(
                f"line {name_token.line}, column {name_token.column}: "
                f"{name!r} must be subscripted",
                code=PARSE_MISSING_SUBSCRIPT,
                span=SourceSpan.from_token(name_token),
            )
        return ArrayRef(
            name, tuple(subscripts), line=name_token.line, column=name_token.column
        )

    def parse_affine(self) -> SubscriptExpr:
        first = self.current
        terms: list[AffineTerm] = []
        constant = 0
        while True:
            tok = self.current
            if tok.kind is TokenKind.NUMBER:
                value = int(self.advance().text)
                if self.accept(TokenKind.PUNCT, "*"):
                    ident = self.expect(TokenKind.IDENT).text
                    terms.append(AffineTerm(value, ident))
                else:
                    constant += value
            elif tok.kind is TokenKind.IDENT:
                ident = self.advance().text
                if self.accept(TokenKind.PUNCT, "*"):
                    coeff = int(self.expect(TokenKind.NUMBER).text)
                    terms.append(AffineTerm(coeff, ident))
                else:
                    terms.append(AffineTerm(1, ident))
            else:
                raise self.error("expected a subscript term")
            if not self.accept(TokenKind.PUNCT, "+"):
                break
        return SubscriptExpr(tuple(terms), constant, line=first.line, column=first.column)


def parse_program(source: str) -> Program:
    """Parse source text into a :class:`Program`.

    Raises:
        ParseError / LexError: on anything outside the subset.
    """
    return _Parser(tokenize(source)).parse_program()


__all__ = ["ParseError", "parse_program"]
