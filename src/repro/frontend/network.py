"""Network importer: JSON specs and ONNX graphs -> :class:`repro.nn.Network`.

Two entry formats share one lowering path:

* a **declarative JSON spec** (:func:`import_json`) — a sequential layer
  list with shape chaining, always available, no third-party packages;
* an **ONNX graph** (:func:`import_onnx`) — parsed by a minimal protobuf
  wire-format reader built into this module, so the ``onnx`` package is
  *optional*: pass raw ``bytes``/a path and nothing is imported; pass an
  ``onnx.ModelProto`` and it is serialized through its own
  ``SerializeToString``.

Both produce an :class:`ImportResult` holding a :class:`repro.nn.Network`
plus an :class:`AnalysisReport` of ``SA14x`` diagnostics.  Downstream the
network flows through the existing pipeline unchanged:
``prepare_network_nests`` lowers each conv layer (strided, dilated,
grouped, depthwise) to its Code-1 loop nest, and
``select_unified_design`` / ``run_unified_dse`` search the joint space.

Supported operators (the coverage matrix lives in ``docs/importer.md``):

=================  =====================================================
graph op           lowering
=================  =====================================================
Conv               :class:`ConvLayer` (stride/pad/dilation/groups kept;
                   ``groups == in_channels`` is the depthwise form)
separable_conv     depthwise ``ConvLayer`` + pointwise 1x1 ``ConvLayer``
                   (JSON only — the MobileNet building block)
MaxPool/AveragePool/GlobalAveragePool  :class:`PoolLayer`
Gemm / MatMul      :class:`FCLayer`
Add (residual)     :class:`AddLayer` (bias adds pass through)
Relu/BN/Clip/...   shape-preserving pass-through
Flatten/Reshape    collapse to a flat feature vector
=================  =====================================================

Anything else is rejected with ``SA141`` and an actionable hint; the
importer keeps scanning so one report lists every problem at once.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.analysis.diagnostics import (
    IMPORT_ASYMMETRIC_ATTRIBUTE,
    IMPORT_SHAPE_MISMATCH,
    IMPORT_SPEC_MALFORMED,
    IMPORT_UNSUPPORTED_ATTRIBUTE,
    IMPORT_UNSUPPORTED_OP,
    AnalysisReport,
    DiagnosticError,
    Severity,
)
from repro.nn.layers import AddLayer, ConvLayer, FCLayer, LayerShapeError, PoolLayer
from repro.nn.models import Network

# Activation tensors are (channels, height, width); after Flatten/Gemm the
# running shape becomes ("flat", features).
_FLAT = "flat"

_PASSTHROUGH_OPS = frozenset(
    {
        "Relu",
        "LeakyRelu",
        "PRelu",
        "Sigmoid",
        "Tanh",
        "Clip",
        "BatchNormalization",
        "Dropout",
        "Identity",
        "Softmax",
        "LRN",
    }
)

_FLATTEN_OPS = frozenset({"Flatten", "Reshape", "Squeeze", "Unsqueeze"})


@dataclass(frozen=True)
class ImportResult:
    """What an import produced.

    Attributes:
        network: the lowered network, or ``None`` when errors prevented
            assembly (only reachable with ``strict=False``).
        report: every ``SA14x``/``SA145`` finding, errors and warnings.
    """

    network: Network | None
    report: AnalysisReport

    @property
    def ok(self) -> bool:
        """True when a network was assembled without errors."""
        return self.network is not None and self.report.ok


class _NetworkBuilder:
    """Accumulates layers while recording structured diagnostics."""

    def __init__(self, name: str, report: AnalysisReport) -> None:
        self.name = name
        self.report = report
        self.convs: list[ConvLayer] = []
        self.pools: list[PoolLayer] = []
        self.fcs: list[FCLayer] = []
        self.adds: list[AddLayer] = []

    def error(self, code: str, message: str, hint: str | None = None) -> None:
        self.report.add(code, Severity.ERROR, message, hint=hint)

    def build_conv(self, **kwargs: Any) -> ConvLayer | None:
        layer = self._guarded(ConvLayer, **kwargs)
        if layer is not None:
            self.convs.append(layer)
        return layer

    def build_pool(self, **kwargs: Any) -> PoolLayer | None:
        layer = self._guarded(PoolLayer, **kwargs)
        if layer is not None:
            self.pools.append(layer)
        return layer

    def build_fc(self, **kwargs: Any) -> FCLayer | None:
        layer = self._guarded(FCLayer, **kwargs)
        if layer is not None:
            self.fcs.append(layer)
        return layer

    def build_add(self, **kwargs: Any) -> AddLayer | None:
        layer = self._guarded(AddLayer, **kwargs)
        if layer is not None:
            self.adds.append(layer)
        return layer

    def _guarded(self, ctor: Any, **kwargs: Any) -> Any:
        """Construct a layer, converting raises into report entries."""
        try:
            return ctor(**kwargs)
        except LayerShapeError as err:
            # SA145 carries its own structured report — merge it.
            self.report.diagnostics.extend(err.report.diagnostics)
        except ValueError as err:
            self.error(IMPORT_SPEC_MALFORMED, str(err))
        return None

    def finish(self, *, strict: bool) -> ImportResult:
        network: Network | None = None
        if self.report.ok and self.convs:
            network = Network(
                self.name,
                tuple(self.convs),
                tuple(self.fcs),
                tuple(self.pools),
                tuple(self.adds),
            )
        elif self.report.ok:
            self.error(
                IMPORT_SPEC_MALFORMED,
                f"network {self.name!r} has no convolutional layers to synthesize",
                hint="the systolic flow targets conv layers; add at least one",
            )
        if strict:
            self.report.raise_if_errors()
        return ImportResult(network, self.report)


# --------------------------------------------------------------------------
# JSON spec path
# --------------------------------------------------------------------------


def _as_positive_int(value: Any) -> int | None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        return None
    return value


def _symmetric(builder: _NetworkBuilder, layer: str, attr: str, value: Any, *, minimum: int = 0) -> int | None:
    """Resolve a possibly per-axis attribute to one symmetric int.

    Accepts a plain int or a list of equal ints (``[3, 3]``); a list of
    unequal values is the asymmetric case the systolic templates cannot
    express (square kernels only) -> ``SA143``.
    """
    if isinstance(value, list):
        if not value or any(not isinstance(v, int) or isinstance(v, bool) for v in value):
            builder.error(
                IMPORT_SPEC_MALFORMED, f"{layer}: attribute {attr!r} must be an int or list of ints"
            )
            return None
        if len(set(value)) != 1:
            builder.error(
                IMPORT_ASYMMETRIC_ATTRIBUTE,
                f"{layer}: asymmetric {attr} {value} is not supported",
                hint="the systolic templates assume square kernels and uniform "
                "strides/pads/dilations in both spatial dimensions",
            )
            return None
        value = value[0]
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        builder.error(
            IMPORT_SPEC_MALFORMED,
            f"{layer}: attribute {attr!r} must be an integer >= {minimum}, got {value!r}",
        )
        return None
    return value


def import_json(spec: dict[str, Any] | str, *, strict: bool = True) -> ImportResult:
    """Import a declarative JSON network spec.

    The schema (documented fully in ``docs/importer.md``)::

        {"name": "net",
         "input": {"channels": 3, "height": 224, "width": 224},
         "layers": [
           {"op": "conv", "out_channels": 32, "kernel": 3, "stride": 2,
            "pad": 1, "groups": 1, "dilation": 1},
           {"op": "separable_conv", "out_channels": 64, "kernel": 3},
           {"op": "pool", "kernel": 2, "stride": 2, "mode": "max"},
           {"op": "add", "with": "conv1"},
           {"op": "relu"}, {"op": "flatten"},
           {"op": "fc", "out_features": 1000}]}

    ``in_channels`` of every conv is inferred by chaining shapes from
    ``input``; ``"groups": "depthwise"`` resolves to the running channel
    count.  ``add`` joins the running tensor with the named earlier
    layer's output (shapes must match).

    Args:
        spec: parsed dict, or JSON text.
        strict: raise :class:`DiagnosticError` on any error finding
            (default); ``False`` returns the full report instead.

    Returns:
        :class:`ImportResult`.

    Raises:
        DiagnosticError: in strict mode, when the spec has errors.
    """
    report = AnalysisReport()
    if isinstance(spec, str):
        try:
            spec = json.loads(spec)
        except json.JSONDecodeError as err:
            report.add(
                IMPORT_SPEC_MALFORMED,
                Severity.ERROR,
                f"spec is not valid JSON: {err}",
                hint="pass a JSON object with 'input' and 'layers' keys",
            )
            if strict:
                report.raise_if_errors()
            return ImportResult(None, report)
    if not isinstance(spec, dict):
        report.add(
            IMPORT_SPEC_MALFORMED,
            Severity.ERROR,
            f"spec must be a JSON object, got {type(spec).__name__}",
        )
        if strict:
            report.raise_if_errors()
        return ImportResult(None, report)

    name = spec.get("name", "network")
    builder = _NetworkBuilder(str(name), report)

    input_spec = spec.get("input")
    layers = spec.get("layers")
    if not isinstance(input_spec, dict) or not isinstance(layers, list):
        builder.error(
            IMPORT_SPEC_MALFORMED,
            "spec needs an 'input' object and a 'layers' list",
            hint='e.g. {"input": {"channels": 3, "height": 32, "width": 32}, "layers": [...]}',
        )
        return builder.finish(strict=strict)

    shape: tuple[Any, ...] | None = None
    dims = [_as_positive_int(input_spec.get(k)) for k in ("channels", "height", "width")]
    if any(d is None for d in dims):
        builder.error(
            IMPORT_SPEC_MALFORMED,
            f"input shape must have positive integer channels/height/width, got {input_spec}",
        )
    else:
        shape = (dims[0], dims[1], dims[2])

    # Outputs of named layers, for residual joins.
    outputs: dict[str, tuple[int, int, int]] = {}
    last_name = "input"

    for index, entry in enumerate(layers):
        if shape is None:
            break  # input was malformed; per-layer chaining is meaningless
        if not isinstance(entry, dict) or "op" not in entry:
            builder.error(
                IMPORT_SPEC_MALFORMED,
                f"layers[{index}] must be an object with an 'op' key, got {entry!r}",
            )
            continue
        op = entry["op"]
        layer_name = str(entry.get("name", f"{op}{index}"))

        if op in ("conv", "separable_conv"):
            if shape[0] == _FLAT:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: convolution after the tensor was flattened",
                )
                continue
            channels, height, width = shape
            out_channels = _as_positive_int(entry.get("out_channels"))
            kernel = _symmetric(builder, layer_name, "kernel", entry.get("kernel"), minimum=1)
            stride = _symmetric(builder, layer_name, "stride", entry.get("stride", 1), minimum=1)
            pad = _symmetric(builder, layer_name, "pad", entry.get("pad", 0), minimum=0)
            dilation = _symmetric(
                builder, layer_name, "dilation", entry.get("dilation", 1), minimum=1
            )
            if out_channels is None or None in (kernel, stride, pad, dilation):
                if out_channels is None:
                    builder.error(
                        IMPORT_SPEC_MALFORMED,
                        f"{layer_name}: 'out_channels' must be a positive integer",
                    )
                continue
            if op == "separable_conv":
                if entry.get("groups") not in (None, 1):
                    builder.error(
                        IMPORT_UNSUPPORTED_ATTRIBUTE,
                        f"{layer_name}: separable_conv does not take 'groups'",
                        hint="the depthwise half always uses groups == channels",
                    )
                    continue
                dw = builder.build_conv(
                    name=f"{layer_name}_dw",
                    in_channels=channels,
                    out_channels=channels,
                    in_height=height,
                    in_width=width,
                    kernel=kernel,
                    stride=stride,
                    pad=pad,
                    groups=channels,
                    dilation=dilation,
                )
                if dw is None:
                    continue
                pw = builder.build_conv(
                    name=f"{layer_name}_pw",
                    in_channels=channels,
                    out_channels=out_channels,
                    in_height=dw.out_height,
                    in_width=dw.out_width,
                    kernel=1,
                )
                if pw is None:
                    continue
                shape = (out_channels, pw.out_height, pw.out_width)
                outputs[layer_name] = shape
                last_name = f"{layer_name}_pw"
                continue
            groups = entry.get("groups", 1)
            if groups == "depthwise":
                groups = channels
            groups = _as_positive_int(groups)
            if groups is None:
                builder.error(
                    IMPORT_SPEC_MALFORMED,
                    f"{layer_name}: 'groups' must be a positive integer or \"depthwise\"",
                )
                continue
            layer = builder.build_conv(
                name=layer_name,
                in_channels=channels,
                out_channels=out_channels,
                in_height=height,
                in_width=width,
                kernel=kernel,
                stride=stride,
                pad=pad,
                groups=groups,
                dilation=dilation,
            )
            if layer is None:
                continue
            shape = (out_channels, layer.out_height, layer.out_width)
            outputs[layer_name] = shape
            last_name = layer_name

        elif op in ("pool", "global_pool"):
            if shape[0] == _FLAT:
                builder.error(
                    IMPORT_SHAPE_MISMATCH, f"{layer_name}: pooling after the tensor was flattened"
                )
                continue
            channels, height, width = shape
            mode = entry.get("mode", "max" if op == "pool" else "avg")
            if mode not in ("max", "avg"):
                builder.error(
                    IMPORT_SPEC_MALFORMED,
                    f"{layer_name}: pooling mode must be 'max' or 'avg', got {mode!r}",
                )
                continue
            if op == "global_pool":
                kernel, stride, pad = height, 1, 0
                if height != width:
                    builder.error(
                        IMPORT_ASYMMETRIC_ATTRIBUTE,
                        f"{layer_name}: global pooling needs a square map, got {height}x{width}",
                    )
                    continue
            else:
                kernel = _symmetric(builder, layer_name, "kernel", entry.get("kernel"), minimum=1)
                stride = _symmetric(
                    builder, layer_name, "stride", entry.get("stride", kernel), minimum=1
                )
                pad = _symmetric(builder, layer_name, "pad", entry.get("pad", 0), minimum=0)
                if None in (kernel, stride, pad):
                    continue
            layer = builder.build_pool(
                name=layer_name,
                channels=channels,
                in_height=height,
                in_width=width,
                kernel=kernel,
                stride=stride,
                pad=pad,
                mode=mode,
            )
            if layer is None:
                continue
            shape = (channels, layer.out_height, layer.out_width)
            outputs[layer_name] = shape
            last_name = layer_name

        elif op == "fc":
            out_features = _as_positive_int(entry.get("out_features"))
            if out_features is None:
                builder.error(
                    IMPORT_SPEC_MALFORMED,
                    f"{layer_name}: 'out_features' must be a positive integer",
                )
                continue
            in_features = shape[1] if shape[0] == _FLAT else shape[0] * shape[1] * shape[2]
            builder.build_fc(
                name=layer_name, in_features=in_features, out_features=out_features
            )
            shape = (_FLAT, out_features)
            last_name = layer_name

        elif op == "add":
            other = entry.get("with")
            if not isinstance(other, str):
                builder.error(
                    IMPORT_SPEC_MALFORMED,
                    f"{layer_name}: residual 'add' needs a \"with\": \"<layer name>\" reference",
                )
                continue
            if other not in outputs:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: 'add' references unknown layer {other!r}",
                    hint=f"known layers: {', '.join(sorted(outputs)) or '(none)'}",
                )
                continue
            if shape[0] == _FLAT or outputs[other] != shape:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: residual operands disagree — running shape "
                    f"{shape} vs {other!r} output {outputs[other]}",
                )
                continue
            builder.build_add(
                name=layer_name,
                channels=shape[0],
                height=shape[1],
                width=shape[2],
                operands=(last_name, other),
            )
            outputs[layer_name] = shape
            last_name = layer_name

        elif op == "flatten":
            if shape[0] != _FLAT:
                shape = (_FLAT, shape[0] * shape[1] * shape[2])

        elif op in ("relu", "batchnorm", "dropout", "softmax", "identity"):
            if shape[0] != _FLAT:
                outputs.setdefault(layer_name, shape)

        else:
            builder.error(
                IMPORT_UNSUPPORTED_OP,
                f"layers[{index}]: unsupported op {op!r}",
                hint="supported: conv, separable_conv, pool, global_pool, fc, "
                "add, flatten, relu, batchnorm, dropout, softmax, identity",
            )

    return builder.finish(strict=strict)


# --------------------------------------------------------------------------
# Minimal protobuf wire-format reader (enough of ONNX to lower CNNs)
# --------------------------------------------------------------------------


class _WireError(ValueError):
    """Raised on malformed protobuf bytes; surfaced as SA140."""


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise _WireError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise _WireError("varint longer than 64 bits")


def _signed64(value: int) -> int:
    return value - (1 << 64) if value >= 1 << 63 else value


def _iter_fields(buf: bytes) -> Iterator[tuple[int, int, Any]]:
    """Yield (field_number, wire_type, value) triples from a message.

    Varints come back as ints, length-delimited fields as bytes, fixed32
    and fixed64 as raw bytes (callers unpack the few they care about).
    """
    pos = 0
    while pos < len(buf):
        key, pos = _read_varint(buf, pos)
        number, wire = key >> 3, key & 0x7
        if wire == 0:
            value, pos = _read_varint(buf, pos)
        elif wire == 1:
            value, pos = buf[pos : pos + 8], pos + 8
            if len(value) != 8:
                raise _WireError("truncated fixed64 field")
        elif wire == 2:
            length, pos = _read_varint(buf, pos)
            value, pos = buf[pos : pos + length], pos + length
            if len(value) != length:
                raise _WireError("truncated length-delimited field")
        elif wire == 5:
            value, pos = buf[pos : pos + 4], pos + 4
            if len(value) != 4:
                raise _WireError("truncated fixed32 field")
        else:
            raise _WireError(f"unsupported wire type {wire}")
        yield number, wire, value


def _packed_varints(value: Any, wire: int) -> list[int]:
    """A repeated int64 field: packed (one bytes blob) or one-per-entry."""
    if wire == 0:
        return [_signed64(value)]
    out = []
    pos = 0
    while pos < len(value):
        item, pos = _read_varint(value, pos)
        out.append(_signed64(item))
    return out


@dataclass
class _OnnxNode:
    op_type: str = ""
    name: str = ""
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)


def _parse_attribute(buf: bytes) -> tuple[str, Any]:
    # AttributeProto: 1=name 2=f 3=i 4=s 7=floats 8=ints (others unused here)
    name = ""
    value: Any = None
    ints: list[int] = []
    floats: list[float] = []
    for number, wire, raw in _iter_fields(buf):
        if number == 1:
            name = raw.decode("utf-8", errors="replace")
        elif number == 2:
            value = struct.unpack("<f", raw)[0]
        elif number == 3:
            value = _signed64(raw)
        elif number == 4:
            value = raw.decode("utf-8", errors="replace")
        elif number == 7:
            if wire == 5:
                floats.append(struct.unpack("<f", raw)[0])
            else:
                floats.extend(struct.unpack(f"<{len(raw) // 4}f", raw))
        elif number == 8:
            ints.extend(_packed_varints(raw, wire))
    if ints:
        value = ints
    elif floats:
        value = floats
    return name, value


def _parse_node(buf: bytes) -> _OnnxNode:
    # NodeProto: 1=input 2=output 3=name 4=op_type 5=attribute
    node = _OnnxNode()
    for number, _wire, raw in _iter_fields(buf):
        if number == 1:
            node.inputs.append(raw.decode("utf-8", errors="replace"))
        elif number == 2:
            node.outputs.append(raw.decode("utf-8", errors="replace"))
        elif number == 3:
            node.name = raw.decode("utf-8", errors="replace")
        elif number == 4:
            node.op_type = raw.decode("utf-8", errors="replace")
        elif number == 5:
            key, value = _parse_attribute(raw)
            node.attrs[key] = value
    return node


def _parse_tensor_dims(buf: bytes) -> tuple[str, tuple[int, ...]]:
    # TensorProto: 1=dims (repeated int64) 8=name
    name = ""
    dims: list[int] = []
    for number, wire, raw in _iter_fields(buf):
        if number == 1:
            dims.extend(_packed_varints(raw, wire))
        elif number == 8:
            name = raw.decode("utf-8", errors="replace")
    return name, tuple(dims)


def _parse_value_info(buf: bytes) -> tuple[str, tuple[int | None, ...]]:
    # ValueInfoProto: 1=name 2=type; TypeProto: 1=tensor_type;
    # Tensor: 2=shape; TensorShapeProto: 1=dim; Dimension: 1=dim_value 2=dim_param
    name = ""
    dims: list[int | None] = []
    for number, _wire, raw in _iter_fields(buf):
        if number == 1:
            name = raw.decode("utf-8", errors="replace")
        elif number == 2:
            for t_num, _w, t_raw in _iter_fields(raw):
                if t_num != 1:
                    continue
                for tt_num, _w2, tt_raw in _iter_fields(t_raw):
                    if tt_num != 2:
                        continue
                    for s_num, _w3, s_raw in _iter_fields(tt_raw):
                        if s_num != 1:
                            continue
                        dim_value: int | None = None
                        for d_num, _w4, d_raw in _iter_fields(s_raw):
                            if d_num == 1:
                                dim_value = _signed64(d_raw)
                        dims.append(dim_value)
    return name, tuple(dims)


@dataclass
class _OnnxGraph:
    name: str = "network"
    nodes: list[_OnnxNode] = field(default_factory=list)
    initializers: dict[str, tuple[int, ...]] = field(default_factory=dict)
    inputs: dict[str, tuple[int | None, ...]] = field(default_factory=dict)


def _parse_graph(buf: bytes) -> _OnnxGraph:
    # GraphProto: 1=node 2=name 5=initializer 11=input
    graph = _OnnxGraph()
    for number, _wire, raw in _iter_fields(buf):
        if number == 1:
            graph.nodes.append(_parse_node(raw))
        elif number == 2:
            graph.name = raw.decode("utf-8", errors="replace") or graph.name
        elif number == 5:
            name, dims = _parse_tensor_dims(raw)
            graph.initializers[name] = dims
        elif number == 11:
            name, dims = _parse_value_info(raw)
            graph.inputs[name] = dims
    return graph


def _parse_model(data: bytes) -> _OnnxGraph:
    # ModelProto: 7=graph
    graph: _OnnxGraph | None = None
    for number, _wire, raw in _iter_fields(data):
        if number == 7:
            graph = _parse_graph(raw)
    if graph is None:
        raise _WireError("no GraphProto found in the model bytes")
    return graph


# --------------------------------------------------------------------------
# ONNX graph lowering
# --------------------------------------------------------------------------


def _onnx_symmetric(
    builder: _NetworkBuilder, layer: str, attr: str, values: Any, default: int
) -> int | None:
    """Resolve an ONNX per-axis int-list attribute to one symmetric value."""
    if values is None:
        return default
    if isinstance(values, int):
        return values
    if not isinstance(values, list) or not values:
        builder.error(
            IMPORT_SPEC_MALFORMED, f"{layer}: malformed ONNX attribute {attr!r}: {values!r}"
        )
        return None
    if len(set(values)) != 1:
        builder.error(
            IMPORT_ASYMMETRIC_ATTRIBUTE,
            f"{layer}: asymmetric {attr} {values} is not supported",
            hint="the systolic templates assume square kernels and uniform "
            "strides/pads/dilations in both spatial dimensions",
        )
        return None
    return values[0]


def import_onnx(
    source: bytes | str | Path | Any, *, name: str | None = None, strict: bool = True
) -> ImportResult:
    """Import an ONNX model.

    Args:
        source: raw ``.onnx`` bytes, a path to an ``.onnx`` file, or an
            ``onnx.ModelProto``-like object exposing ``SerializeToString``
            (the ``onnx`` package itself is never imported here — it stays
            a purely optional dependency).
        name: override the network name (defaults to the graph name).
        strict: raise :class:`DiagnosticError` on any error finding.

    Returns:
        :class:`ImportResult`.
    """
    report = AnalysisReport()
    if hasattr(source, "SerializeToString"):
        data = source.SerializeToString()
    elif isinstance(source, (str, Path)):
        data = Path(source).read_bytes()
    else:
        data = bytes(source)

    try:
        graph = _parse_model(data)
    except _WireError as err:
        report.add(
            IMPORT_SPEC_MALFORMED,
            Severity.ERROR,
            f"not a parseable ONNX model: {err}",
            hint="pass serialized ModelProto bytes (onnx.save output)",
        )
        if strict:
            report.raise_if_errors()
        return ImportResult(None, report)

    builder = _NetworkBuilder(name or graph.name, report)
    _lower_onnx_graph(graph, builder)
    return builder.finish(strict=strict)


def _lower_onnx_graph(graph: _OnnxGraph, builder: _NetworkBuilder) -> None:
    inits = graph.initializers
    # Activation shapes, batch dimension stripped: name -> (C, H, W) or
    # (_FLAT, features).  Graph inputs that are initializers are weights.
    shapes: dict[str, tuple[Any, ...]] = {}
    for tensor, dims in graph.inputs.items():
        if tensor in inits:
            continue
        if len(dims) == 4 and all(isinstance(d, int) and d > 0 for d in dims[1:]):
            shapes[tensor] = (dims[1], dims[2], dims[3])
        elif len(dims) == 2 and isinstance(dims[1], int) and dims[1] > 0:
            shapes[tensor] = (_FLAT, dims[1])
        else:
            builder.error(
                IMPORT_SHAPE_MISMATCH,
                f"graph input {tensor!r} has unusable shape {dims} "
                "(need NxCxHxW with concrete C/H/W, or NxF)",
                hint="export the model with static spatial dimensions",
            )

    # Conv/pool output names whose producing layer is known, for residuals.
    producers: dict[str, str] = {}

    for index, node in enumerate(graph.nodes):
        op = node.op_type
        layer_name = node.name or (node.outputs[0] if node.outputs else f"{op.lower()}_{index}")
        out_name = node.outputs[0] if node.outputs else ""

        if op == "Conv":
            shape = shapes.get(node.inputs[0]) if node.inputs else None
            weight_dims = inits.get(node.inputs[1]) if len(node.inputs) > 1 else None
            if shape is None or shape[0] == _FLAT:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: input activation shape is unknown",
                )
                continue
            if weight_dims is None or len(weight_dims) != 4:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: Conv weights must be a rank-4 initializer, "
                    f"got {weight_dims}",
                    hint="dynamic (computed) conv weights cannot be lowered",
                )
                continue
            auto_pad = node.attrs.get("auto_pad")
            if auto_pad not in (None, "NOTSET"):
                builder.error(
                    IMPORT_UNSUPPORTED_ATTRIBUTE,
                    f"{layer_name}: auto_pad={auto_pad!r} is not supported",
                    hint="re-export with explicit 'pads'",
                )
                continue
            out_ch, in_per_group, k_h, k_w = weight_dims
            if k_h != k_w:
                builder.error(
                    IMPORT_ASYMMETRIC_ATTRIBUTE,
                    f"{layer_name}: non-square kernel {k_h}x{k_w} is not supported",
                )
                continue
            groups = node.attrs.get("group", 1)
            stride = _onnx_symmetric(builder, layer_name, "strides", node.attrs.get("strides"), 1)
            dilation = _onnx_symmetric(
                builder, layer_name, "dilations", node.attrs.get("dilations"), 1
            )
            pads = node.attrs.get("pads")
            if pads is not None and (
                not isinstance(pads, list) or len(set(pads)) != 1
            ):
                builder.error(
                    IMPORT_ASYMMETRIC_ATTRIBUTE,
                    f"{layer_name}: asymmetric pads {pads} are not supported",
                )
                continue
            pad = pads[0] if isinstance(pads, list) else 0
            if stride is None or dilation is None:
                continue
            if shape[0] != in_per_group * groups:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: input has {shape[0]} channels but weights "
                    f"expect {in_per_group}*{groups}",
                )
                continue
            layer = builder.build_conv(
                name=layer_name,
                in_channels=shape[0],
                out_channels=out_ch,
                in_height=shape[1],
                in_width=shape[2],
                kernel=k_h,
                stride=stride,
                pad=pad,
                groups=groups,
                dilation=dilation,
            )
            if layer is None:
                continue
            shapes[out_name] = (out_ch, layer.out_height, layer.out_width)
            producers[out_name] = layer_name

        elif op in ("MaxPool", "AveragePool", "GlobalAveragePool"):
            shape = shapes.get(node.inputs[0]) if node.inputs else None
            if shape is None or shape[0] == _FLAT:
                builder.error(
                    IMPORT_SHAPE_MISMATCH, f"{layer_name}: input activation shape is unknown"
                )
                continue
            if node.attrs.get("ceil_mode", 0):
                builder.error(
                    IMPORT_UNSUPPORTED_ATTRIBUTE,
                    f"{layer_name}: ceil_mode pooling is not supported",
                    hint="re-export with floor-mode pooling",
                )
                continue
            if op == "GlobalAveragePool":
                if shape[1] != shape[2]:
                    builder.error(
                        IMPORT_ASYMMETRIC_ATTRIBUTE,
                        f"{layer_name}: global pooling needs a square map, "
                        f"got {shape[1]}x{shape[2]}",
                    )
                    continue
                kernel, stride, pad = shape[1], 1, 0
            else:
                kernel = _onnx_symmetric(
                    builder, layer_name, "kernel_shape", node.attrs.get("kernel_shape"), 0
                )
                stride = _onnx_symmetric(
                    builder, layer_name, "strides", node.attrs.get("strides"), 1
                )
                pads = node.attrs.get("pads")
                if pads is not None and (
                    not isinstance(pads, list) or len(set(pads)) != 1
                ):
                    builder.error(
                        IMPORT_ASYMMETRIC_ATTRIBUTE,
                        f"{layer_name}: asymmetric pads {pads} are not supported",
                    )
                    continue
                pad = pads[0] if isinstance(pads, list) else 0
                if not kernel or stride is None:
                    continue
            layer = builder.build_pool(
                name=layer_name,
                channels=shape[0],
                in_height=shape[1],
                in_width=shape[2],
                kernel=kernel,
                stride=stride,
                pad=pad,
                mode="max" if op == "MaxPool" else "avg",
            )
            if layer is None:
                continue
            shapes[out_name] = (shape[0], layer.out_height, layer.out_width)
            producers[out_name] = layer_name

        elif op in ("Gemm", "MatMul"):
            shape = shapes.get(node.inputs[0]) if node.inputs else None
            weight_dims = inits.get(node.inputs[1]) if len(node.inputs) > 1 else None
            if weight_dims is None or len(weight_dims) != 2:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: {op} weights must be a rank-2 initializer",
                )
                continue
            if op == "Gemm" and (
                node.attrs.get("alpha", 1.0) != 1.0
                or node.attrs.get("beta", 1.0) != 1.0
                or node.attrs.get("transA", 0)
            ):
                builder.error(
                    IMPORT_UNSUPPORTED_ATTRIBUTE,
                    f"{layer_name}: Gemm with alpha/beta != 1 or transA is not supported",
                )
                continue
            if op == "Gemm" and node.attrs.get("transB", 0):
                out_features, in_features = weight_dims
            else:
                in_features, out_features = weight_dims
            if shape is not None:
                have = shape[1] if shape[0] == _FLAT else shape[0] * shape[1] * shape[2]
                if have != in_features:
                    builder.error(
                        IMPORT_SHAPE_MISMATCH,
                        f"{layer_name}: {op} expects {in_features} input features "
                        f"but the incoming tensor has {have}",
                    )
                    continue
            builder.build_fc(
                name=layer_name, in_features=in_features, out_features=out_features
            )
            shapes[out_name] = (_FLAT, out_features)

        elif op == "Add":
            operands = [t for t in node.inputs if t not in inits]
            if len(operands) < 2:
                # Bias/constant add: shape-preserving pass-through.
                if operands and operands[0] in shapes:
                    shapes[out_name] = shapes[operands[0]]
                continue
            a, b = operands[0], operands[1]
            if a not in shapes or b not in shapes:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: residual Add has operands with unknown shapes",
                )
                continue
            if shapes[a] != shapes[b] or shapes[a][0] == _FLAT:
                builder.error(
                    IMPORT_SHAPE_MISMATCH,
                    f"{layer_name}: residual operands disagree — "
                    f"{shapes[a]} vs {shapes[b]}",
                )
                continue
            channels, height, width = shapes[a]
            builder.build_add(
                name=layer_name,
                channels=channels,
                height=height,
                width=width,
                operands=(producers.get(a, a), producers.get(b, b)),
            )
            shapes[out_name] = shapes[a]
            producers[out_name] = layer_name

        elif op in _PASSTHROUGH_OPS:
            if node.inputs and node.inputs[0] in shapes:
                shapes[out_name] = shapes[node.inputs[0]]
                if node.inputs[0] in producers:
                    producers[out_name] = producers[node.inputs[0]]

        elif op in _FLATTEN_OPS:
            shape = shapes.get(node.inputs[0]) if node.inputs else None
            if shape is not None:
                features = shape[1] if shape[0] == _FLAT else shape[0] * shape[1] * shape[2]
                shapes[out_name] = (_FLAT, features)

        elif op == "Constant":
            continue

        else:
            builder.error(
                IMPORT_UNSUPPORTED_OP,
                f"{layer_name}: unsupported ONNX op {op!r}",
                hint="supported: Conv, Gemm, MatMul, MaxPool, AveragePool, "
                "GlobalAveragePool, Add, Flatten/Reshape and shape-preserving "
                "activations; see docs/importer.md for the unsupported-op policy",
            )


# --------------------------------------------------------------------------
# Path dispatch
# --------------------------------------------------------------------------


def load_network(path: str | Path, *, strict: bool = True) -> ImportResult:
    """Import a network file, dispatching on its suffix.

    ``.json`` -> :func:`import_json`; ``.onnx`` / ``.pb`` ->
    :func:`import_onnx`.  Anything else is an ``SA140`` error.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        return import_json(path.read_text(), strict=strict)
    if suffix in (".onnx", ".pb"):
        return import_onnx(path, strict=strict)
    report = AnalysisReport()
    report.add(
        IMPORT_SPEC_MALFORMED,
        Severity.ERROR,
        f"unrecognized network file suffix {suffix!r} for {path.name}",
        hint="use a .json spec or a serialized .onnx model",
    )
    if strict:
        report.raise_if_errors()
    return ImportResult(None, report)


__all__ = [
    "ImportResult",
    "import_json",
    "import_onnx",
    "load_network",
]
