"""LoopNest -> C emission (the front end's inverse).

Renders a nest back into the pragma-annotated C subset the parser
accepts, including array declarations sized from the access ranges.
Used for reporting (showing a user the canonical form of their layer),
for building testbench inputs, and by the round-trip property tests that
pin the parser and the emitter against each other.
"""

from __future__ import annotations

from repro.analysis.diagnostics import EMIT_NOT_SUBSET, Diagnostic, Severity
from repro.ir.access import AffineExpr, ArrayAccess
from repro.ir.loop import LoopNest


class EmitError(ValueError):
    """A nest that cannot be rendered in the restricted C subset.

    There is no user source to point into (the nest was built
    programmatically), so the diagnostic carries the nest name instead
    of a span.
    """

    def __init__(self, message: str, *, code: str = EMIT_NOT_SUBSET) -> None:
        super().__init__(message)
        self.code = code

    @property
    def diagnostic(self) -> Diagnostic:
        """The error as a structured diagnostic."""
        return Diagnostic(self.code, Severity.ERROR, str(self))


def _expr_to_c(expr: AffineExpr) -> str:
    parts = []
    for name, coeff in expr.terms:
        parts.append(name if coeff == 1 else f"{coeff}*{name}")
    if expr.const or not parts:
        parts.append(str(expr.const))
    return " + ".join(parts)


def _ref_to_c(access: ArrayAccess) -> str:
    return access.array + "".join(f"[{_expr_to_c(e)}]" for e in access.indices)


def nest_to_c(
    nest: LoopNest,
    *,
    pragma: str | None = "systolic",
    declarations: bool = True,
    element_type: str = "float",
) -> str:
    """Render a nest as compilable-subset C text.

    Args:
        nest: the loop nest (one MAC statement, per the subset).
        pragma: pragma text to attach (None omits it).
        declarations: emit array declarations sized from the access
            ranges over the nest bounds.
        element_type: C element type for the declarations.

    Returns:
        C source text that :func:`repro.frontend.parse_program` accepts
        and that round-trips to an equal nest.
    """
    try:
        out = nest.output
    except ValueError as exc:
        raise EmitError(f"nest {nest.name!r}: {exc}") from exc
    reads = nest.reads
    if len(reads) != 2:
        raise EmitError(
            f"nest {nest.name!r}: the C subset carries exactly one a*b "
            f"accumulation, found {len(reads)} read operand(s)"
        )
    lines: list[str] = []
    if declarations:
        bounds = nest.bounds
        for access in nest.accesses:
            dims = "".join(
                f"[{access.indices[d].value_range(bounds)[1] + 1}]"
                for d in range(access.rank)
            )
            lines.append(f"{element_type} {access.array}{dims};")
        lines.append("")
    if pragma:
        lines.append(f"#pragma {pragma}")
    indent = ""
    for loop in nest.loops:
        lines.append(
            f"{indent}for ({loop.iterator} = 0; "
            f"{loop.iterator} < {loop.trip_count}; {loop.iterator}++)"
        )
        indent += "  "
    lines.append(
        f"{indent}{_ref_to_c(out)} += {_ref_to_c(reads[0])} * {_ref_to_c(reads[1])};"
    )
    return "\n".join(lines) + "\n"


__all__ = ["EmitError", "nest_to_c"]
