"""Tokenizer for the restricted C subset.

Handles identifiers, integer literals, the punctuation the loop-nest
grammar needs, ``//`` and ``/* */`` comments, and ``#pragma`` lines
(returned as single tokens so the parser can attach them to the following
loop).  Tracks line/column for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.analysis.diagnostics import (
    LEX_BAD_CHAR,
    LEX_UNTERMINATED_COMMENT,
    Diagnostic,
    Severity,
    SourceSpan,
)


class TokenKind(Enum):
    IDENT = "ident"
    NUMBER = "number"
    PUNCT = "punct"
    PRAGMA = "pragma"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: token class.
        text: exact source text (for PRAGMA, the full line without '#').
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.text!r}@{self.line}:{self.column}"


PUNCTUATION = (
    "+=", "++", "<=", "==", "*", "+", "<", "=", ";", ",",
    "(", ")", "[", "]", "{", "}",
)


class LexError(ValueError):
    """Raised on characters outside the subset.

    Carries a structured :attr:`diagnostic` (code + source span) so the
    analysis layer can report it without re-parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = LEX_BAD_CHAR,
        span: SourceSpan | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.span = span

    @property
    def diagnostic(self) -> Diagnostic:
        """The error as a structured diagnostic."""
        return Diagnostic(self.code, Severity.ERROR, str(self), self.span)


def tokenize(source: str) -> list[Token]:
    """Tokenize a program; returns tokens ending with one EOF token."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def advance(text: str) -> None:
        nonlocal line, col
        for ch in text:
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1

    while i < n:
        ch = source[i]
        # whitespace
        if ch in " \t\r\n":
            advance(ch)
            i += 1
            continue
        # line comment
        if source.startswith("//", i):
            end = source.find("\n", i)
            end = n if end == -1 else end
            advance(source[i:end])
            i = end
            continue
        # block comment
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError(
                    f"unterminated block comment at line {line}",
                    code=LEX_UNTERMINATED_COMMENT,
                    span=SourceSpan(line, col),
                )
            advance(source[i : end + 2])
            i = end + 2
            continue
        # pragma: swallow the whole (possibly continued) line
        if ch == "#":
            end = source.find("\n", i)
            end = n if end == -1 else end
            text = source[i + 1 : end].strip()
            tokens.append(Token(TokenKind.PRAGMA, text, line, col))
            advance(source[i:end])
            i = end
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token(TokenKind.IDENT, source[i:j], line, col))
            advance(source[i:j])
            i = j
            continue
        # number
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.NUMBER, source[i:j], line, col))
            advance(source[i:j])
            i = j
            continue
        # punctuation (longest match first)
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, line, col))
                advance(punct)
                i += len(punct)
                break
        else:
            raise LexError(
                f"unexpected character {ch!r} at line {line}, column {col}",
                code=LEX_BAD_CHAR,
                span=SourceSpan(line, col),
            )

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens


__all__ = ["LexError", "Token", "TokenKind", "tokenize"]
