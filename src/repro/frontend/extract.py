"""AST to IR extraction — the analysis ROSE performs in the paper's flow.

Walks the parsed perfect nest, collects iteration domains (loop bounds)
and access functions (affine subscripts), checks the perfect-nest and
single-statement discipline, and verifies subscripts against the declared
array shapes where declarations are present.
"""

from __future__ import annotations

from repro.frontend.ast_nodes import ArrayRef, ForLoop, MacStatement, Program
from repro.frontend.cparser import ParseError, parse_program
from repro.ir.access import AffineExpr, ArrayAccess
from repro.ir.loop import Loop, LoopNest


def _to_affine(ref: ArrayRef) -> tuple[AffineExpr, ...]:
    return tuple(
        AffineExpr.of(
            [(term.iterator, term.coefficient) for term in sub.terms], sub.constant
        )
        for sub in ref.subscripts
    )


def extract_loop_nest(program: Program, *, name: str = "user_nest") -> LoopNest:
    """Build a :class:`LoopNest` from a parsed program.

    Raises:
        ParseError: if the nest breaks a structural rule (duplicate
            iterators, subscripts using undeclared iterators, subscript
            ranges exceeding a declared array shape).
    """
    loops: list[Loop] = []
    node: ForLoop | MacStatement = program.nest
    while isinstance(node, ForLoop):
        loops.append(Loop(node.iterator, node.bound))
        node = node.body
    statement = node

    accesses = (
        ArrayAccess(statement.target.name, _to_affine(statement.target), is_write=True),
        ArrayAccess(statement.lhs.name, _to_affine(statement.lhs)),
        ArrayAccess(statement.rhs.name, _to_affine(statement.rhs)),
    )
    try:
        nest = LoopNest(tuple(loops), accesses, name=name)
    except ValueError as exc:
        raise ParseError(f"line {statement.line}: {exc}") from exc

    # Shape-check subscript ranges against declarations.
    decls = {d.name: d for d in program.declarations}
    bounds = nest.bounds
    for access in accesses:
        decl = decls.get(access.array)
        if decl is None:
            continue
        if len(decl.dims) != access.rank:
            raise ParseError(
                f"array {access.array!r} declared with {len(decl.dims)} dims "
                f"but accessed with {access.rank}"
            )
        for dim, (expr, extent) in enumerate(zip(access.indices, decl.dims)):
            lo, hi = expr.value_range(bounds)
            if lo < 0 or hi >= extent:
                raise ParseError(
                    f"subscript {dim} of {access.array!r} spans [{lo}, {hi}] "
                    f"but the array dimension is {extent}"
                )
    return nest


def loop_nest_from_source(source: str, *, name: str = "user_nest") -> tuple[LoopNest, str | None]:
    """Parse C text and extract (nest, pragma)."""
    program = parse_program(source)
    return extract_loop_nest(program, name=name), program.pragma


__all__ = ["extract_loop_nest", "loop_nest_from_source"]
