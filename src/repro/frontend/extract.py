"""AST to IR extraction — the analysis ROSE performs in the paper's flow.

Walks the parsed perfect nest, collects iteration domains (loop bounds)
and access functions (affine subscripts), checks the perfect-nest and
single-statement discipline, and verifies subscripts against the declared
array shapes where declarations are present.  Every rejection raises a
:class:`ParseError` carrying a diagnostic code and a source span.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    NEST_DUPLICATE_ITERATOR,
    NEST_RANK_MISMATCH,
    NEST_SHAPE_OVERFLOW,
    NEST_UNBOUND_ITERATOR,
    SourceSpan,
)
from repro.frontend.ast_nodes import ArrayRef, ForLoop, MacStatement, Program
from repro.frontend.cparser import ParseError, parse_program
from repro.ir.access import AffineExpr, ArrayAccess
from repro.ir.loop import Loop, LoopNest


def _to_affine(ref: ArrayRef) -> tuple[AffineExpr, ...]:
    return tuple(
        AffineExpr.of(
            [(term.iterator, term.coefficient) for term in sub.terms], sub.constant
        )
        for sub in ref.subscripts
    )


def _ref_span(ref: ArrayRef) -> SourceSpan | None:
    """Source span of an array reference (None for programmatic ASTs)."""
    if ref.line <= 0:
        return None
    return SourceSpan(ref.line, max(1, ref.column))


def extract_loop_nest(program: Program, *, name: str = "user_nest") -> LoopNest:
    """Build a :class:`LoopNest` from a parsed program.

    Raises:
        ParseError: if the nest breaks a structural rule (duplicate
            iterators, subscripts using undeclared iterators, subscript
            ranges exceeding a declared array shape).  The error carries
            a diagnostic code and the offending source span.
    """
    loops: list[Loop] = []
    node: ForLoop | MacStatement = program.nest
    while isinstance(node, ForLoop):
        if any(loop.iterator == node.iterator for loop in loops):
            raise ParseError(
                f"line {node.line}: duplicate loop iterator {node.iterator!r}",
                code=NEST_DUPLICATE_ITERATOR,
                span=SourceSpan(node.line),
            )
        try:
            loops.append(Loop(node.iterator, node.bound))
        except ValueError as exc:
            raise ParseError(
                f"line {node.line}: {exc}", span=SourceSpan(node.line)
            ) from exc
        node = node.body
    statement = node

    refs = (statement.target, statement.lhs, statement.rhs)
    accesses = (
        ArrayAccess(statement.target.name, _to_affine(statement.target), is_write=True),
        ArrayAccess(statement.lhs.name, _to_affine(statement.lhs)),
        ArrayAccess(statement.rhs.name, _to_affine(statement.rhs)),
    )

    # Every subscript iterator must be bound by a loop of the nest.
    known = {loop.iterator for loop in loops}
    for ref, access in zip(refs, accesses):
        unknown = sorted(access.iterators - known)
        if unknown:
            raise ParseError(
                f"line {statement.line}: access {access} uses iterators {unknown} "
                f"not bound by any loop of the nest",
                code=NEST_UNBOUND_ITERATOR,
                span=_ref_span(ref) or SourceSpan(statement.line),
            )

    try:
        nest = LoopNest(tuple(loops), accesses, name=name)
    except ValueError as exc:
        # LoopNest re-checks the invariants above; anything it still
        # rejects is surfaced as a located ParseError, never a bare
        # ValueError mid-flow.
        raise ParseError(
            f"line {statement.line}: {exc}", span=SourceSpan(statement.line)
        ) from exc

    # Shape-check subscript ranges against declarations.
    decls = {d.name: d for d in program.declarations}
    bounds = nest.bounds
    for ref, access in zip(refs, accesses):
        decl = decls.get(access.array)
        if decl is None:
            continue
        if len(decl.dims) != access.rank:
            raise ParseError(
                f"array {access.array!r} declared with {len(decl.dims)} dims "
                f"but accessed with {access.rank}",
                code=NEST_RANK_MISMATCH,
                span=_ref_span(ref),
            )
        for dim, (expr, extent) in enumerate(zip(access.indices, decl.dims)):
            lo, hi = expr.value_range(bounds)
            if lo < 0 or hi >= extent:
                sub = ref.subscripts[dim]
                span = (
                    SourceSpan(sub.line, max(1, sub.column))
                    if sub.line > 0
                    else _ref_span(ref)
                )
                raise ParseError(
                    f"subscript {dim} of {access.array!r} spans [{lo}, {hi}] "
                    f"but the array dimension is {extent}",
                    code=NEST_SHAPE_OVERFLOW,
                    span=span,
                    hint=f"declare {access.array} with dimension {dim} >= {hi + 1}"
                    if lo >= 0
                    else None,
                )
    return nest


def loop_nest_from_source(source: str, *, name: str = "user_nest") -> tuple[LoopNest, str | None]:
    """Parse C text and extract (nest, pragma)."""
    program = parse_program(source)
    return extract_loop_nest(program, name=name), program.pragma


__all__ = ["extract_loop_nest", "loop_nest_from_source"]
