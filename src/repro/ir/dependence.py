"""Loop parallelism classification (paper Section 2.1).

"In the original six-level nested loop, three (L1, L4, L3) are
parallelizable because they do not have data dependency; the remaining
loops (L2, L5, L6) have dependency carried for the accumulation of array
out.  However, these loops are still parallelizable by leveraging the
associative law of the addition operations."

For the single-statement multiply-accumulate nests this flow handles, a
loop carries a dependence iff consecutive iterations touch the *same
output element* (a read-modify-write collision); that is exactly the
fine-grained-reuse condition (Eq. 3) applied to the written array.  The
classification:

* **parallel** — no dependence: output index varies with the loop;
* **reduction** — dependence carried, but only through the commutative
  ``+=`` accumulation, so the loop still parallelizes via an adder tree
  / SIMD accumulation chain (how the vector dimension of the PE works).

The semantic (enumerating) dependence test is also provided and
cross-checked against the syntactic shortcut in the tests, mirroring the
reuse analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.domain import IterationDomain
from repro.ir.loop import LoopNest
from repro.ir.reuse import carries_reuse, carries_reuse_semantic


@dataclass(frozen=True)
class ParallelismReport:
    """Classification of every loop of a nest.

    Attributes:
        parallel: loops with no loop-carried dependence (DOALL).
        reduction: loops whose only dependence is the commutative
            accumulation (parallelizable as reductions).
    """

    parallel: tuple[str, ...]
    reduction: tuple[str, ...]

    def kind(self, iterator: str) -> str:
        """'parallel' or 'reduction' for one loop."""
        if iterator in self.parallel:
            return "parallel"
        if iterator in self.reduction:
            return "reduction"
        raise KeyError(f"unknown loop {iterator!r}")


def carries_dependence(nest: LoopNest, iterator: str) -> bool:
    """Whether the loop carries a dependence on the accumulated output.

    True iff consecutive iterations write the same OUT element — i.e. the
    output access is invariant to the iterator (the Eq. 3 condition on
    the written array).
    """
    return carries_reuse(nest.output, iterator)


def carries_dependence_semantic(
    nest: LoopNest, iterator: str, domain: IterationDomain | None = None
) -> bool:
    """Enumerating version of :func:`carries_dependence` (small nests)."""
    domain = domain or IterationDomain.of(nest.bounds)
    return carries_reuse_semantic(nest.output, iterator, domain)


def classify_parallelism(nest: LoopNest) -> ParallelismReport:
    """Classify every loop of the nest as parallel or reduction."""
    parallel = []
    reduction = []
    for it in nest.iterators:
        (reduction if carries_dependence(nest, it) else parallel).append(it)
    return ParallelismReport(tuple(parallel), tuple(reduction))


__all__ = [
    "ParallelismReport",
    "carries_dependence",
    "carries_dependence_semantic",
    "classify_parallelism",
]
