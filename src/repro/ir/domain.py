"""Iteration domains and data-footprint counting (paper Eq. 5).

The BRAM model needs :math:`DA_r(\\vec s, \\vec t)` — the number of distinct
array elements of ``r`` touched by the middle+inner loops.  The paper notes
that counting integer points of an affine image is expensive in general
(they cite isl) but collapses to a product of per-dimension ranges for the
CNN access patterns.  We implement both:

* :func:`count_footprint_enumerated` — exact brute-force enumeration, used
  as the oracle in tests and for small domains.
* :func:`count_footprint_rectangular` — the closed-form range product the
  paper uses, exact whenever every subscript has nonnegative coefficients
  and the touched region of each dimension is dense (true for all CNN
  subscripts: ``it`` or ``it_a + it_b`` with unit coefficients, and for the
  strided folded variants as long as the summed strides cover the range,
  which :func:`rectangular_is_exact` checks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.ir.access import ArrayAccess


@dataclass(frozen=True)
class IterationDomain:
    """A rectangular iteration domain ``0 <= it_k < extent_k``.

    The paper's :math:`\\mathcal{D}_{\\vec s,\\vec t}` (middle + inner loops
    of one data block) is always rectangular, as is the original nest
    domain, so a box is all we need.
    """

    extents: tuple[tuple[str, int], ...]

    @staticmethod
    def of(extents: Mapping[str, int] | Iterable[tuple[str, int]]) -> "IterationDomain":
        """Build a domain from an iterator->extent mapping."""
        if isinstance(extents, Mapping):
            items = tuple(extents.items())
        else:
            items = tuple(extents)
        for name, extent in items:
            if extent < 1:
                raise ValueError(f"iterator {name!r} has nonpositive extent {extent}")
        return IterationDomain(items)

    @property
    def iterators(self) -> tuple[str, ...]:
        """Iterator names in declaration order."""
        return tuple(name for name, _ in self.extents)

    @property
    def bounds(self) -> dict[str, int]:
        """Mapping iterator -> extent."""
        return dict(self.extents)

    @property
    def size(self) -> int:
        """Number of integer points in the domain."""
        total = 1
        for _, extent in self.extents:
            total *= extent
        return total

    def points(self) -> Iterable[dict[str, int]]:
        """Iterate all integer points (use only on small domains)."""
        names = self.iterators
        ranges = [range(extent) for _, extent in self.extents]
        for combo in itertools.product(*ranges):
            yield dict(zip(names, combo))


def count_footprint_enumerated(access: ArrayAccess, domain: IterationDomain) -> int:
    """Exact |{F_r(i) : i in D}| by enumeration.

    This is the reference implementation of Eq. 5; exponential in the
    domain size, so only used for validation and small blocks.
    """
    relevant = access.iterators
    # Project the domain onto the iterators the access actually reads;
    # the others multiply iteration count but not footprint.
    projected = IterationDomain.of(
        [(name, extent) for name, extent in domain.extents if name in relevant]
    )
    touched = {access.evaluate(point) for point in projected.points()}
    return len(touched)


def _dimension_range(access: ArrayAccess, dim: int, bounds: Mapping[str, int]) -> int:
    """Size of the (dense) index range of one array dimension."""
    lo, hi = access.indices[dim].value_range(bounds)
    return hi - lo + 1


def rectangular_is_exact(access: ArrayAccess, domain: IterationDomain) -> bool:
    """Whether the rectangular closed form is exact for this access/domain.

    It is exact when (a) no iterator appears in more than one dimension of
    the subscript vector (so the touched set is a product of per-dimension
    sets) and (b) each dimension's touched set is a dense integer interval.
    Condition (b) holds when each dimension's subscript is a sum of terms
    whose coefficients, sorted ascending, each divide the "reach" of the
    smaller terms plus one — for CNN subscripts (all unit coefficients, or
    ``stride*r + p`` with ``p`` spanning at least ``stride`` values) this
    is the standard dense-coverage condition.
    """
    bounds = domain.bounds
    seen: set[str] = set()
    for expr in access.indices:
        used = expr.iterators & set(bounds)
        if used & seen:
            return False
        seen |= used
        # Dense-coverage check per dimension.
        terms = sorted(
            ((coeff, name) for name, coeff in expr.terms if name in bounds),
            key=lambda item: abs(item[0]),
        )
        if any(coeff < 0 for coeff, _ in terms):
            return False
        reach = 1  # we can currently hit a dense interval of this length
        for coeff, name in terms:
            if coeff > reach:
                return False
            reach += coeff * (bounds[name] - 1)
    return True


def count_footprint_rectangular(access: ArrayAccess, domain: IterationDomain) -> int:
    """Closed-form footprint: product of per-dimension range sizes.

    This is the simplification the paper describes in Section 3.3: for
    subscript ``it`` the range is the loop extent; for ``it_a + it_b`` it
    is ``extent_a + extent_b - 1``.  Implemented generally via the affine
    value range.  Exact iff :func:`rectangular_is_exact`; otherwise an
    upper bound (it counts the bounding box).
    """
    bounds = domain.bounds
    total = 1
    for dim in range(access.rank):
        total *= _dimension_range(access, dim, bounds)
    return total


def count_footprint(
    access: ArrayAccess, domain: IterationDomain, *, exact_threshold: int = 200_000
) -> int:
    """Footprint with automatic strategy selection.

    Uses the closed form when it is provably exact; otherwise falls back to
    enumeration when the projected domain is small enough, and to the
    (upper-bound) closed form beyond that.

    Args:
        access: the array access.
        domain: the iteration domain to count over.
        exact_threshold: maximum projected-domain size for enumeration.
    """
    if rectangular_is_exact(access, domain):
        return count_footprint_rectangular(access, domain)
    relevant = access.iterators
    projected_size = 1
    for name, extent in domain.extents:
        if name in relevant:
            projected_size *= extent
    if projected_size <= exact_threshold:
        return count_footprint_enumerated(access, domain)
    return count_footprint_rectangular(access, domain)


def count_footprint_batch(
    access: ArrayAccess,
    iterators: Sequence[str],
    extents: np.ndarray,
    *,
    exact_threshold: int = 200_000,
) -> np.ndarray:
    """Vectorized :func:`count_footprint` over a batch of rectangular domains.

    ``extents`` is an int array of shape ``(B, len(iterators))``; row ``i``
    describes the domain ``0 <= iterators[k] < extents[i, k]``.  Returns an
    int64 array of length ``B`` where every entry equals
    ``count_footprint(access, IterationDomain.of(zip(iterators, row)))``
    exactly — the per-row strategy selection (provably-exact closed form /
    enumeration / upper-bound closed form) is replayed per row, so the
    batch is a drop-in replacement for the scalar loop.

    Rows where the closed form is exact (the common CNN case) are computed
    with pure array arithmetic; the remaining rows fall back to the scalar
    function, which keeps the enumeration oracle authoritative.
    """
    ext = np.asarray(extents, dtype=np.int64)
    if ext.ndim != 2 or ext.shape[1] != len(iterators):
        raise ValueError(
            f"extents must be (B, {len(iterators)}); got shape {ext.shape}"
        )
    batch = ext.shape[0]
    position = {name: k for k, name in enumerate(iterators)}
    available = set(iterators)

    # Condition (a) of rectangular_is_exact — no iterator shared across
    # subscript dimensions — does not depend on the extents.
    disjoint = True
    seen: set[str] = set()
    for expr in access.indices:
        used = expr.iterators & available
        if used & seen:
            disjoint = False
            break
        seen |= used

    exact = np.full(batch, disjoint)
    if disjoint:
        # Condition (b), dense coverage, replayed per row: walking terms
        # by ascending |coeff|, each coefficient must not exceed the
        # dense reach of the smaller terms.
        for expr in access.indices:
            terms = sorted(
                ((coeff, name) for name, coeff in expr.terms if name in available),
                key=lambda item: abs(item[0]),
            )
            if any(coeff < 0 for coeff, _ in terms):
                exact[:] = False
                break
            reach = np.ones(batch, dtype=np.int64)
            for coeff, name in terms:
                exact &= coeff <= reach
                reach = reach + coeff * (ext[:, position[name]] - 1)

    # Closed-form product of per-dimension value ranges (exact rows).
    words = np.ones(batch, dtype=np.int64)
    for expr in access.indices:
        lo = np.full(batch, expr.const, dtype=np.int64)
        hi = np.full(batch, expr.const, dtype=np.int64)
        for name, coeff in expr.terms:
            if name not in available:
                continue  # absent iterators are fixed at 0 (span 0)
            span = coeff * (ext[:, position[name]] - 1)
            if coeff >= 0:
                hi = hi + span
            else:
                lo = lo + span
        words *= hi - lo + 1

    # Inexact rows: defer to the scalar strategy selection row by row.
    for i in np.flatnonzero(~exact):
        domain = IterationDomain.of(
            [(name, int(ext[i, position[name]])) for name in iterators]
        )
        words[i] = count_footprint(access, domain, exact_threshold=exact_threshold)
    return words


__all__ = [
    "IterationDomain",
    "count_footprint",
    "count_footprint_batch",
    "count_footprint_enumerated",
    "count_footprint_rectangular",
    "rectangular_is_exact",
]
