"""Affine array-access functions.

The paper (Section 3.3) observes that CNN programs contain exactly two
subscript patterns: a single loop iterator (``w[o][i][p][q]``) and a sum of
two iterators (``in[i][r+p][c+q]``).  :class:`AffineExpr` represents the
general affine form ``sum(coeff_l * iter_l) + const`` so the analysis also
covers strided and folded variants (e.g. ``in[i][4*r + p]`` after folding
AlexNet conv1), while the closed-form footprint math in
:mod:`repro.ir.domain` exploits the restricted structure when it applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class AffineExpr:
    """An affine expression over loop iterators.

    Attributes:
        terms: mapping from iterator name to integer coefficient.  Zero
            coefficients are dropped at construction.
        const: additive integer constant.
    """

    terms: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(terms: Mapping[str, int] | Iterable[tuple[str, int]], const: int = 0) -> "AffineExpr":
        """Build an expression, normalizing term order and dropping zeros."""
        if isinstance(terms, Mapping):
            items = terms.items()
        else:
            items = list(terms)
        merged: dict[str, int] = {}
        for name, coeff in items:
            merged[name] = merged.get(name, 0) + int(coeff)
        cleaned = tuple(sorted((n, c) for n, c in merged.items() if c != 0))
        return AffineExpr(cleaned, int(const))

    @staticmethod
    def var(name: str) -> "AffineExpr":
        """The expression consisting of a single iterator."""
        return AffineExpr(((name, 1),), 0)

    @staticmethod
    def parse(text: str) -> "AffineExpr":
        """Parse a simple subscript like ``"r+p"``, ``"4*r + p"`` or ``"i"``.

        Only ``+`` separated terms of the form ``[k*]name`` or integer
        literals are supported; that covers every subscript in the paper's
        programs and in the folded variants we generate.
        """
        terms: dict[str, int] = {}
        const = 0
        for raw in text.replace(" ", "").split("+"):
            if not raw:
                raise ValueError(f"empty term in subscript {text!r}")
            if "*" in raw:
                coeff_s, name = raw.split("*", 1)
                coeff = int(coeff_s)
            elif raw.lstrip("-").isdigit():
                const += int(raw)
                continue
            else:
                coeff, name = 1, raw
            if not name.isidentifier():
                raise ValueError(f"bad iterator name {name!r} in subscript {text!r}")
            terms[name] = terms.get(name, 0) + coeff
        return AffineExpr.of(terms, const)

    @property
    def iterators(self) -> frozenset[str]:
        """The set of iterator names appearing with nonzero coefficient."""
        return frozenset(name for name, _ in self.terms)

    def coefficient(self, name: str) -> int:
        """The coefficient of ``name`` (0 if absent)."""
        for term_name, coeff in self.terms:
            if term_name == name:
                return coeff
        return 0

    def depends_on(self, name: str) -> bool:
        """Whether the expression value changes when iterator ``name`` changes."""
        return self.coefficient(name) != 0

    def evaluate(self, point: Mapping[str, int]) -> int:
        """Evaluate at an iteration point (missing iterators default to 0)."""
        return self.const + sum(coeff * point.get(name, 0) for name, coeff in self.terms)

    def value_range(self, bounds: Mapping[str, int]) -> tuple[int, int]:
        """Inclusive (min, max) over ``0 <= iter < bounds[iter]``.

        Iterators absent from ``bounds`` are treated as fixed at 0.
        """
        lo = hi = self.const
        for name, coeff in self.terms:
            extent = bounds.get(name, 1)
            if extent < 1:
                raise ValueError(f"nonpositive bound {extent} for iterator {name!r}")
            span = coeff * (extent - 1)
            if span >= 0:
                hi += span
            else:
                lo += span
        return lo, hi

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.terms:
            parts.append(name if coeff == 1 else f"{coeff}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts)


@dataclass(frozen=True)
class ArrayAccess:
    """A (possibly multi-dimensional) affine access to a named array.

    This is the access function :math:`F_r` of the paper: it maps an
    iteration vector to a tuple of array indexes.

    Attributes:
        array: array name (e.g. ``"IN"``).
        indices: one :class:`AffineExpr` per array dimension.
        is_write: True for the accumulated output array.
    """

    array: str
    indices: tuple[AffineExpr, ...]
    is_write: bool = False

    @staticmethod
    def parse(array: str, subscripts: Iterable[str], is_write: bool = False) -> "ArrayAccess":
        """Build from textual subscripts, e.g. ``parse("IN", ["i", "r+p", "c+q"])``."""
        return ArrayAccess(array, tuple(AffineExpr.parse(s) for s in subscripts), is_write)

    @property
    def rank(self) -> int:
        """Number of array dimensions."""
        return len(self.indices)

    @property
    def iterators(self) -> frozenset[str]:
        """All iterators appearing anywhere in the subscripts."""
        result: frozenset[str] = frozenset()
        for expr in self.indices:
            result |= expr.iterators
        return result

    def depends_on(self, name: str) -> bool:
        """Whether any subscript involves iterator ``name``."""
        return any(expr.depends_on(name) for expr in self.indices)

    def evaluate(self, point: Mapping[str, int]) -> tuple[int, ...]:
        """The array element touched at an iteration point."""
        return tuple(expr.evaluate(point) for expr in self.indices)

    def __str__(self) -> str:
        subs = "".join(f"[{expr}]" for expr in self.indices)
        return f"{self.array}{subs}"


__all__ = ["AffineExpr", "ArrayAccess"]
