"""Fine-grained data-reuse analysis (paper Eq. 3).

Array ``r`` has *fine-grained reuse* carried by loop ``l`` iff consecutive
iterations of ``l`` (all other iterators fixed) touch the same element:

.. math::

    \\forall \\vec i \\in \\mathcal D:
    F_r(\\dots, i_l, \\dots) = F_r(\\dots, i_l + 1, \\dots)

For affine accesses this is a purely syntactic condition — it holds iff no
subscript of ``r`` has a nonzero coefficient on ``l`` — but we also provide
the semantic (enumerating) checker and verify they agree in tests, since
the syntactic shortcut is exactly the kind of thing that silently breaks
when the access patterns generalize.

The result is the paper's binary matrix :math:`c_{rl}` used by the feasible
mapping condition (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.access import ArrayAccess
from repro.ir.domain import IterationDomain
from repro.ir.loop import LoopNest


def carries_reuse(access: ArrayAccess, iterator: str) -> bool:
    """Syntactic Eq. 3: loop ``iterator`` carries fine-grained reuse of ``access``.

    True iff the access value is invariant to a unit step of the iterator,
    i.e. the iterator does not appear in any subscript.
    """
    return not access.depends_on(iterator)


def carries_reuse_semantic(
    access: ArrayAccess, iterator: str, domain: IterationDomain
) -> bool:
    """Semantic Eq. 3 by enumeration over the given (small) domain.

    Checks ``F(.., i_l, ..) == F(.., i_l + 1, ..)`` for every point whose
    successor in ``iterator`` is still inside the domain.
    """
    bounds = domain.bounds
    if iterator not in bounds:
        return True  # the access can't possibly depend on an unbound iterator
    for point in domain.points():
        if point[iterator] + 1 >= bounds[iterator]:
            continue
        stepped = dict(point)
        stepped[iterator] += 1
        if access.evaluate(point) != access.evaluate(stepped):
            return False
    return True


@dataclass(frozen=True)
class ReuseTable:
    """The binary reuse matrix :math:`c_{rl}` for a loop nest.

    Attributes:
        arrays: array names (rows).
        iterators: loop iterator names (columns), outermost first.
        matrix: ``matrix[array][iterator] -> bool``.
    """

    arrays: tuple[str, ...]
    iterators: tuple[str, ...]
    matrix: tuple[tuple[bool, ...], ...]

    def carried(self, array: str, iterator: str) -> bool:
        """Whether ``iterator`` carries reuse of ``array`` (c_rl)."""
        return self.matrix[self.arrays.index(array)][self.iterators.index(iterator)]

    def reuse_loops(self, array: str) -> tuple[str, ...]:
        """All loops carrying reuse of ``array``."""
        row = self.matrix[self.arrays.index(array)]
        return tuple(it for it, bit in zip(self.iterators, row) if bit)

    def reuse_arrays(self, iterator: str) -> tuple[str, ...]:
        """All arrays whose reuse is carried by ``iterator``."""
        col = self.iterators.index(iterator)
        return tuple(
            array for array, row in zip(self.arrays, self.matrix) if row[col]
        )

    def as_dict(self) -> dict[str, dict[str, bool]]:
        """Nested-dict view ``{array: {iterator: bool}}``."""
        return {
            array: dict(zip(self.iterators, row))
            for array, row in zip(self.arrays, self.matrix)
        }

    def __str__(self) -> str:
        width = max(len(a) for a in self.arrays) if self.arrays else 1
        header = " " * (width + 1) + " ".join(f"{it:>3}" for it in self.iterators)
        lines = [header]
        for array, row in zip(self.arrays, self.matrix):
            cells = " ".join(f"{'  1' if bit else '  .'}" for bit in row)
            lines.append(f"{array:<{width}} {cells}")
        return "\n".join(lines)


def analyze_reuse(nest: LoopNest) -> ReuseTable:
    """Compute the reuse table of a nest via the syntactic Eq. 3 condition."""
    arrays = nest.array_names
    iterators = nest.iterators
    matrix = tuple(
        tuple(carries_reuse(nest.access(array), it) for it in iterators)
        for array in arrays
    )
    return ReuseTable(arrays, iterators, matrix)


__all__ = ["ReuseTable", "analyze_reuse", "carries_reuse", "carries_reuse_semantic"]
