"""Loop-nest intermediate representation.

This package is the "polyhedral-lite" substrate of the reproduction.  The
paper analyzes a convolution loop nest with the polyhedral model (iteration
domains, affine access functions, data-reuse conditions, integer-point
counting of data footprints).  CNN loop nests only need a small, fully
characterizable subset of that machinery — every array subscript is either
a single loop iterator (``out[o][r][c]``) or a sum of two iterators
(``in[i][r+p][c+q]``) — so this package implements that subset exactly and
verifies its closed forms against brute-force enumeration in the tests.

Main entry points:

* :class:`~repro.ir.loop.Loop`, :class:`~repro.ir.loop.LoopNest` — the nest.
* :class:`~repro.ir.access.ArrayAccess` — an affine array subscript.
* :mod:`~repro.ir.domain` — iteration domains and footprint counting
  (Eq. 5 of the paper).
* :mod:`~repro.ir.reuse` — fine-grained data-reuse analysis (Eq. 3).
* :mod:`~repro.ir.tiling` — the loop-tiling representation of Fig. 4 that
  links the nest to the systolic architecture.
"""

from repro.ir.access import AffineExpr, ArrayAccess
from repro.ir.dependence import (
    ParallelismReport,
    carries_dependence,
    classify_parallelism,
)
from repro.ir.domain import (
    IterationDomain,
    count_footprint_enumerated,
    count_footprint_rectangular,
)
from repro.ir.loop import Loop, LoopNest, conv_loop_nest
from repro.ir.reuse import ReuseTable, analyze_reuse, carries_reuse
from repro.ir.tiling import LoopTiling, TiledLoopNest

__all__ = [
    "AffineExpr",
    "ArrayAccess",
    "ParallelismReport",
    "carries_dependence",
    "classify_parallelism",
    "IterationDomain",
    "Loop",
    "LoopNest",
    "LoopTiling",
    "ReuseTable",
    "TiledLoopNest",
    "analyze_reuse",
    "carries_reuse",
    "conv_loop_nest",
    "count_footprint_enumerated",
    "count_footprint_rectangular",
]
