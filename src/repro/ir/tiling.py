"""Loop-tiling representation of the systolic mapping (paper Fig. 4).

The paper links architecture and program through a three-level tiling of
the original nest:

* **outer loops** — iterate over data blocks (off-chip <-> on-chip),
* **middle loops** (bounds :math:`\\vec s`) — sequential feeding of one
  block from the on-chip reuse buffers into the PE array,
* **inner loops** (bounds :math:`\\vec t`) — the three parallel dimensions
  realized in hardware (PE rows, PE columns, in-PE SIMD vector).

:class:`LoopTiling` records, for every original loop ``l``, the inner bound
``t_l`` (1 unless the loop is one of the three mapped loops) and the middle
bound ``s_l``.  The block then covers ``b_l = s_l * t_l`` consecutive
iterations of loop ``l``, and the outer loop runs ``ceil(N_l / b_l)``
times.  All quantization (DSP-efficiency) math lives here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.ir.domain import IterationDomain
from repro.ir.loop import LoopNest


@dataclass(frozen=True)
class LoopTiling:
    """Per-loop middle (s) and inner (t) bounds for a nest.

    Attributes:
        middle: mapping iterator -> s_l (defaults to 1 where omitted).
        inner: mapping iterator -> t_l (only mapped loops present; their
            values are the PE-array shape).
    """

    middle: tuple[tuple[str, int], ...]
    inner: tuple[tuple[str, int], ...]

    @staticmethod
    def of(
        middle: Mapping[str, int] | None = None, inner: Mapping[str, int] | None = None
    ) -> "LoopTiling":
        """Build a tiling from plain dicts, validating positivity."""
        middle = dict(middle or {})
        inner = dict(inner or {})
        for label, mapping in (("middle", middle), ("inner", inner)):
            for name, value in mapping.items():
                if value < 1:
                    raise ValueError(f"{label} bound for {name!r} must be >= 1, got {value}")
        return LoopTiling(tuple(sorted(middle.items())), tuple(sorted(inner.items())))

    @property
    def middle_bounds(self) -> dict[str, int]:
        """s_l mapping (only explicitly set entries)."""
        return dict(self.middle)

    @property
    def inner_bounds(self) -> dict[str, int]:
        """t_l mapping (only mapped loops)."""
        return dict(self.inner)

    def s(self, iterator: str) -> int:
        """Middle bound s_l (1 if not set)."""
        return dict(self.middle).get(iterator, 1)

    def t(self, iterator: str) -> int:
        """Inner bound t_l (1 if the loop is not mapped to the array)."""
        return dict(self.inner).get(iterator, 1)

    def block_extent(self, iterator: str) -> int:
        """b_l = s_l * t_l, iterations of loop l covered by one block."""
        return self.s(iterator) * self.t(iterator)

    def with_middle(self, middle: Mapping[str, int]) -> "LoopTiling":
        """Same inner bounds, new middle bounds."""
        return LoopTiling.of(middle, dict(self.inner))


@dataclass(frozen=True)
class TiledLoopNest:
    """A loop nest together with a tiling — the Fig. 4 program.

    This is the object the analytical models evaluate: it knows block
    shapes, block counts, executed (padded) iteration counts and the
    iteration domain of one block.
    """

    nest: LoopNest
    tiling: LoopTiling

    def __post_init__(self) -> None:
        bounds = self.nest.bounds
        for name in self.tiling.inner_bounds:
            if name not in bounds:
                raise ValueError(f"inner bound on unknown loop {name!r} in {self.nest.name!r}")
        for name in self.tiling.middle_bounds:
            if name not in bounds:
                raise ValueError(f"middle bound on unknown loop {name!r} in {self.nest.name!r}")

    # ----------------------------------------------------------------- shape

    def block_extent(self, iterator: str) -> int:
        """Iterations of ``iterator`` covered by one block, b_l = s_l * t_l."""
        return self.tiling.block_extent(iterator)

    def block_count(self, iterator: str) -> int:
        """Number of blocks along ``iterator`` (the outer-loop trip count)."""
        return math.ceil(self.nest.bounds[iterator] / self.tiling.block_extent(iterator))

    @property
    def total_blocks(self) -> int:
        """Total outer-loop iterations (product over loops)."""
        total = 1
        for it in self.nest.iterators:
            total *= self.block_count(it)
        return total

    @property
    def block_domain(self) -> IterationDomain:
        """Iteration domain of the middle+inner loops of one (full) block.

        This is :math:`\\mathcal D_{\\vec s, \\vec t}` of Eq. 5.  Block
        extents are *not* clipped here: the hardware buffers are sized for
        a full block even when the last block along a loop is ragged.
        """
        return IterationDomain.of(
            [(it, self.tiling.block_extent(it)) for it in self.nest.iterators]
        )

    @property
    def block_domain_clipped(self) -> IterationDomain:
        """Block domain with extents clipped at the padded loop extent.

        Under clipped-middle semantics, a block whose extent exceeds
        ``ceil(N_l / t_l) * t_l`` behaves exactly like one covering the
        loop — smaller buffers, smaller transfers.  Models evaluating a
        clipped platform use this domain so they agree with the DSE
        tuner's accounting.
        """
        extents = []
        for it in self.nest.iterators:
            cap = math.ceil(self.nest.bounds[it] / self.tiling.t(it)) * self.tiling.t(it)
            extents.append((it, min(self.tiling.block_extent(it), cap)))
        return IterationDomain.of(extents)

    @property
    def block_iterations(self) -> int:
        """Middle+inner iterations per block = Π b_l."""
        return self.block_domain.size

    # ------------------------------------------------------------ efficiency

    @property
    def executed_iterations(self) -> int:
        """Iterations actually executed, counting quantization padding.

        Every block runs to its full shape (the systolic schedule cannot
        shorten a wavefront), so the executed count is
        ``Π_l ceil(N_l / b_l) * b_l``.
        """
        total = 1
        for it in self.nest.iterators:
            total *= self.block_count(it) * self.tiling.block_extent(it)
        return total

    @property
    def efficiency(self) -> float:
        """DSP efficiency (paper Eq. 1): effective / executed iterations."""
        return self.nest.total_iterations / self.executed_iterations

    @property
    def executed_iterations_clipped(self) -> int:
        """Executed iterations when ragged *middle* blocks are clipped.

        The middle loops feed the array sequentially, so a hardware
        implementation may shorten the last block's middle trip counts;
        only the inner (spatial) padding is then unavoidable:
        ``prod_l ceil(N_l / t_l) * t_l`` — independent of s.  This is the
        semantics under which the paper's power-of-two tiling pruning is
        exactly optimal; see EXPERIMENTS.md for the discussion.
        """
        total = 1
        for it in self.nest.iterators:
            trip = self.nest.bounds[it]
            t = self.tiling.t(it)
            total *= math.ceil(trip / t) * t
        return total

    @property
    def clipped_efficiency(self) -> float:
        """DSP efficiency under clipped-middle semantics (s-independent)."""
        return self.nest.total_iterations / self.executed_iterations_clipped

    def efficiency_along(self, iterator: str) -> float:
        """Per-loop efficiency factor N_l / (ceil(N_l/b_l) * b_l)."""
        trip = self.nest.bounds[iterator]
        return trip / (self.block_count(iterator) * self.tiling.block_extent(iterator))

    def __str__(self) -> str:
        parts = []
        for it in self.nest.iterators:
            parts.append(f"{it}:N={self.nest.bounds[it]},s={self.tiling.s(it)},t={self.tiling.t(it)}")
        return f"TiledLoopNest({self.nest.name}; " + " ".join(parts) + ")"


__all__ = ["LoopTiling", "TiledLoopNest"]
