"""Loop and loop-nest containers.

A :class:`LoopNest` is the program representation produced by the front-end
(or built directly, e.g. from a CNN layer descriptor) and consumed by the
analysis, modeling and DSE layers.  It corresponds to the paper's Code 1:
a perfect nest of normalized counted loops around a single
multiply-accumulate statement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.ir.access import ArrayAccess


@dataclass(frozen=True)
class Loop:
    """A normalized counted loop ``for (it = 0; it < trip_count; it++)``.

    Attributes:
        iterator: the loop iterator name.
        trip_count: the (compile-time constant) trip count.  CNN layer
            shapes are static, which is what makes exhaustive analytical
            DSE possible in the first place.
    """

    iterator: str
    trip_count: int

    def __post_init__(self) -> None:
        if not self.iterator.isidentifier():
            raise ValueError(f"invalid iterator name {self.iterator!r}")
        if self.trip_count < 1:
            raise ValueError(
                f"loop {self.iterator!r} must have a positive trip count, got {self.trip_count}"
            )

    def __str__(self) -> str:
        return f"for {self.iterator} in [0, {self.trip_count})"


@dataclass(frozen=True)
class LoopNest:
    """A perfect loop nest around one multiply-accumulate statement.

    Attributes:
        loops: loops from outermost to innermost.
        accesses: the array accesses of the statement.  Exactly one must be
            a write (the accumulated output) for the systolic mapping
            analysis to apply.
        name: optional human-readable label (e.g. ``"alexnet_conv5"``).
    """

    loops: tuple[Loop, ...]
    accesses: tuple[ArrayAccess, ...]
    name: str = "loop_nest"

    def __post_init__(self) -> None:
        iterators = [loop.iterator for loop in self.loops]
        if len(set(iterators)) != len(iterators):
            raise ValueError(f"duplicate loop iterators in nest {self.name!r}: {iterators}")
        known = set(iterators)
        for access in self.accesses:
            unknown = access.iterators - known
            if unknown:
                raise ValueError(
                    f"access {access} uses iterators {sorted(unknown)} "
                    f"not bound by any loop of nest {self.name!r}"
                )

    @property
    def iterators(self) -> tuple[str, ...]:
        """Iterator names from outermost to innermost."""
        return tuple(loop.iterator for loop in self.loops)

    @property
    def bounds(self) -> dict[str, int]:
        """Mapping iterator name -> trip count."""
        return {loop.iterator: loop.trip_count for loop in self.loops}

    @property
    def depth(self) -> int:
        """Number of loops in the nest."""
        return len(self.loops)

    @property
    def total_iterations(self) -> int:
        """Product of all trip counts — the statement's execution count."""
        total = 1
        for loop in self.loops:
            total *= loop.trip_count
        return total

    @property
    def total_operations(self) -> int:
        """Total arithmetic operations (2 per MAC: multiply + accumulate)."""
        return 2 * self.total_iterations

    @property
    def writes(self) -> tuple[ArrayAccess, ...]:
        """The written (accumulated) accesses."""
        return tuple(a for a in self.accesses if a.is_write)

    @property
    def reads(self) -> tuple[ArrayAccess, ...]:
        """The read-only accesses."""
        return tuple(a for a in self.accesses if not a.is_write)

    @property
    def output(self) -> ArrayAccess:
        """The unique written access.

        Raises:
            ValueError: if the nest does not have exactly one write.
        """
        writes = self.writes
        if len(writes) != 1:
            raise ValueError(
                f"nest {self.name!r} must have exactly one written array, found "
                f"{[str(w) for w in writes]}"
            )
        return writes[0]

    @property
    def array_names(self) -> tuple[str, ...]:
        """Names of all accessed arrays, in access order."""
        return tuple(a.array for a in self.accesses)

    def loop(self, iterator: str) -> Loop:
        """Look up a loop by iterator name."""
        for candidate in self.loops:
            if candidate.iterator == iterator:
                return candidate
        raise KeyError(f"no loop {iterator!r} in nest {self.name!r}")

    def access(self, array: str) -> ArrayAccess:
        """Look up an access by array name."""
        for candidate in self.accesses:
            if candidate.array == array:
                return candidate
        raise KeyError(f"no access to array {array!r} in nest {self.name!r}")

    def with_bounds(self, bounds: Mapping[str, int], name: str | None = None) -> "LoopNest":
        """A copy of the nest with some trip counts replaced."""
        loops = tuple(
            Loop(loop.iterator, bounds.get(loop.iterator, loop.trip_count)) for loop in self.loops
        )
        return replace(self, loops=loops, name=name or self.name)

    def __str__(self) -> str:
        header = " / ".join(f"{loop.iterator}<{loop.trip_count}" for loop in self.loops)
        body = ", ".join(str(a) for a in self.accesses)
        return f"{self.name}: [{header}] {{{body}}}"


def conv_loop_nest(
    out_channels: int,
    in_channels: int,
    out_height: int,
    out_width: int,
    kernel_h: int,
    kernel_w: int,
    *,
    stride: int = 1,
    dilation: int = 1,
    name: str = "conv",
) -> LoopNest:
    """The canonical convolution nest of the paper's Code 1.

    Loop order (outermost first) follows the paper: ``o`` output channel,
    ``i`` input channel, ``c`` output column, ``r`` output row, ``p``
    kernel row, ``q`` kernel column::

        OUT[o][r][c] += W[o][i][p][q] * IN[i][stride*r+dilation*p][stride*c+dilation*q]

    Args:
        out_channels: O, number of output feature maps.
        in_channels: I, number of input feature maps.
        out_height: R, output feature map rows.
        out_width: C, output feature map columns.
        kernel_h: K (P loop), kernel rows.
        kernel_w: K (Q loop), kernel columns.
        stride: convolution stride (1 in Code 1; >1 after folding).
        dilation: kernel dilation (1 in Code 1; >1 spreads the taps).
        name: label for the nest.

    Returns:
        The six-deep :class:`LoopNest`.
    """
    from repro.ir.access import AffineExpr

    if stride < 1 or dilation < 1:
        raise ValueError(f"nest {name!r}: stride and dilation must be >= 1")
    in_row = AffineExpr.of({"r": stride, "p": dilation})
    in_col = AffineExpr.of({"c": stride, "q": dilation})
    loops = (
        Loop("o", out_channels),
        Loop("i", in_channels),
        Loop("c", out_width),
        Loop("r", out_height),
        Loop("p", kernel_h),
        Loop("q", kernel_w),
    )
    accesses = (
        ArrayAccess(
            "OUT",
            (AffineExpr.var("o"), AffineExpr.var("r"), AffineExpr.var("c")),
            is_write=True,
        ),
        ArrayAccess(
            "W",
            (
                AffineExpr.var("o"),
                AffineExpr.var("i"),
                AffineExpr.var("p"),
                AffineExpr.var("q"),
            ),
        ),
        ArrayAccess("IN", (AffineExpr.var("i"), in_row, in_col)),
    )
    return LoopNest(loops, accesses, name=name)


__all__ = ["Loop", "LoopNest", "conv_loop_nest"]
