"""Roofline-model DSE baseline (Zhang et al., FPGA'15 style).

The paper's motivation: prior accelerators unroll loops into directly
connected PE farms and pick tile/unroll factors with a roofline model;
this "achieve[s] massive parallelization", but on big devices "the
implementation of the design may have difficulty in making the timing
closure" — large fan-out, long wires, wide muxes.  This module implements
that baseline faithfully enough to quantify the argument:

* design space: unroll factors (To, Ti) over output/input channels and
  tile sizes (Tr, Tc) over the feature map — the FPGA'15 space;
* performance: attainable = min(computation roof, CTC x bandwidth);
* frequency: a *direct-interconnect* frequency surrogate whose fan-out
  penalty grows with the unroll product, unlike the systolic surrogate's
  flat profile — this is exactly the contrast of the paper's Section 1.

The comparison bench sweeps DSP utilization and shows the crossover: the
direct design wins nothing at scale because its clock collapses, while
the systolic design keeps ~250+ MHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.platform import Platform
from repro.nn.layers import ConvLayer


@dataclass(frozen=True)
class RooflineDesign:
    """Winner of the roofline exploration.

    Attributes:
        unroll_out: To — output channels computed in parallel.
        unroll_in: Ti — input channels multiplied in parallel.
        tile_rows / tile_cols: Tr, Tc feature-map tile.
        frequency_mhz: realized clock of the direct design.
        throughput_gops: attainable performance at that clock.
        ctc_ratio: computation-to-communication ratio (ops/byte).
        dsp_utilization: fraction of the budget used.
    """

    unroll_out: int
    unroll_in: int
    tile_rows: int
    tile_cols: int
    frequency_mhz: float
    throughput_gops: float
    ctc_ratio: float
    dsp_utilization: float


def direct_frequency(
    lanes: int, base_mhz: float = 280.0, *, fanout_penalty: float = 85.0
) -> float:
    """Clock of a direct-interconnect PE farm.

    Broadcast fan-out and the output mux tree deepen with the unroll
    product, costing roughly a logic level (and routing slack) per
    doubling: ``f = base - penalty * log10(lanes)``, floored at 60 MHz.
    Calibrated so ~100 lanes run near the FPGA'15 report (~100 MHz at
    448 DSPs on Virtex-7) and ~1500 lanes collapse below 20% of the
    systolic clock — the paper's "dramatic performance degradation".
    """
    if lanes < 1:
        raise ValueError("lanes must be positive")
    return max(60.0, base_mhz - fanout_penalty * math.log10(lanes))


def roofline_explore(
    layer: ConvLayer,
    platform: Platform,
    *,
    max_unroll: int | None = None,
) -> RooflineDesign:
    """Exhaustive roofline DSE for one layer (the FPGA'15 procedure).

    Args:
        layer: the conv layer (per-group view is taken automatically).
        platform: supplies the DSP budget and bandwidth.
        max_unroll: optional cap on To*Ti (defaults to the DSP budget).

    Returns:
        The attainable-throughput-maximal :class:`RooflineDesign`.
    """
    per_group = layer.group_view()
    out_ch, in_ch = per_group.out_channels, per_group.in_channels
    out_h, out_w = per_group.out_height, per_group.out_width
    kernel = per_group.kernel
    budget = max_unroll or platform.dsp_total
    bw = platform.memory.total_bytes_per_second
    word = platform.datatype.activation_bytes

    best: RooflineDesign | None = None
    # Unroll factors over channels (divisor-friendly candidates).
    def candidates(n: int) -> list[int]:
        values = {1, n}
        k = 1
        while k * k <= n:
            if n % k == 0:
                values.add(k)
                values.add(n // k)
            k += 1
        values |= {2, 4, 8, 16, 32, 64}
        return sorted(v for v in values if v <= n)

    for unroll_out in candidates(out_ch):
        for unroll_in in candidates(in_ch):
            lanes = unroll_out * unroll_in
            if lanes > budget:
                continue
            freq = direct_frequency(lanes)
            comp_roof = 2.0 * lanes * freq * 1e6
            # Feature-map tiles: bigger tiles raise CTC until BRAM binds;
            # sweep a few representative tile shapes.
            for tile_rows in sorted({out_h, max(1, out_h // 2), max(1, out_h // 4)}):
                for tile_cols in sorted({out_w, max(1, out_w // 2)}):
                    ops = 2.0 * out_ch * in_ch * tile_rows * tile_cols * kernel * kernel
                    in_bytes = (
                        in_ch
                        * (tile_rows * layer.stride + kernel - 1)
                        * (tile_cols * layer.stride + kernel - 1)
                        * word
                    )
                    w_bytes = out_ch * in_ch * kernel * kernel * word
                    out_bytes = out_ch * tile_rows * tile_cols * word
                    ctc = ops / (in_bytes + w_bytes + out_bytes)
                    attainable = min(comp_roof, ctc * bw)
                    util = lanes / platform.dsp_total
                    candidate = RooflineDesign(
                        unroll_out=unroll_out,
                        unroll_in=unroll_in,
                        tile_rows=tile_rows,
                        tile_cols=tile_cols,
                        frequency_mhz=freq,
                        throughput_gops=attainable / 1e9,
                        ctc_ratio=ctc,
                        dsp_utilization=util,
                    )
                    if best is None or candidate.throughput_gops > best.throughput_gops:
                        best = candidate
    assert best is not None
    return best


__all__ = ["RooflineDesign", "direct_frequency", "roofline_explore"]
