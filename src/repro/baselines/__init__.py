"""Comparison baselines.

* :mod:`repro.baselines.roofline` — a roofline-model DSE for a direct
  (non-systolic) accelerator in the style of Zhang et al. (FPGA'15),
  the optimization approach the paper argues breaks down on large
  devices because direct interconnects cannot hold frequency at high
  DSP utilization;
* :mod:`repro.baselines.literature` — the published rows of the paper's
  Table 2 (prior FPGA CNN accelerators), used by the comparison bench.
"""

from repro.baselines.literature import LITERATURE_ROWS, LiteratureDesign, PAPER_OURS_ROWS
from repro.baselines.roofline import RooflineDesign, roofline_explore

__all__ = [
    "LITERATURE_ROWS",
    "LiteratureDesign",
    "PAPER_OURS_ROWS",
    "RooflineDesign",
    "roofline_explore",
]
