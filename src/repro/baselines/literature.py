"""Published comparison data — the paper's Table 2.

These rows are *reference constants from the literature* (they cannot be
re-measured here); the "ours" rows are what this reproduction must
regenerate with its own DSE + simulator and compare against the paper's
reported values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LiteratureDesign:
    """One row of Table 2.

    Attributes:
        label: citation tag used in the paper.
        fpga: device string.
        frequency_mhz: reported clock.
        cnn: model evaluated ("VGG" or "AlexNet").
        precision: datatype string.
        dsp_used / dsp_pct: DSP count and utilization (None if N/A).
        bram_used / bram_pct: BRAM blocks and utilization (None if N/A).
        latency_ms: reported latency per image.
        throughput_gops: reported throughput (Gops or GFlops).
        is_float: floating-point design.
    """

    label: str
    fpga: str
    frequency_mhz: float
    cnn: str
    precision: str
    dsp_used: int | None
    dsp_pct: float | None
    bram_used: int | None
    bram_pct: float | None
    latency_ms: float
    throughput_gops: float
    is_float: bool


LITERATURE_ROWS: tuple[LiteratureDesign, ...] = (
    LiteratureDesign(
        "[9] Qiu FPGA'16", "Stratix-V", 120, "VGG", "fixed 8-16b",
        727, 0.37, 1500, 0.58, 262.9, 117.8, False,
    ),
    LiteratureDesign(
        "[10] Caffeine VC709", "Xilinx VC709", 150, "VGG", "fixed 16b",
        2833, 0.78, 1248, 0.42, 65.13, 354.0, False,
    ),
    LiteratureDesign(
        "[10] Caffeine KU060", "Xilinx KU060", 200, "VGG", "fixed 16b",
        1058, 0.38, 782, 0.36, 101.15, 266.0, False,
    ),
    LiteratureDesign(
        "[11] Ma FPGA'17", "Arria10 GX1150", 150, "VGG", "fixed 8-16b",
        1518, 1.00, 1900, 0.70, 47.97, 645.25, False,
    ),
    LiteratureDesign(
        "[17] Aydonat FPGA'17", "Arria10 GX1150", 303, "AlexNet", "float 16b",
        1476, 0.97, 2487, 0.92, 1.06, 1382.0, True,
    ),
    LiteratureDesign(
        "[26] Zhang FPGA'17 float", "Arria10 GX1150", 370, "VGG", "float 32b",
        1320, 0.87, 1250, 0.46, 35.5, 866.0, True,
    ),
    LiteratureDesign(
        "[26] Zhang FPGA'17 fixed", "Arria10 GX1150", 385, "VGG", "fixed 16b",
        2756, 0.91, 1450, 0.54, 17.18, 1790.0, False,
    ),
)
"""Prior-art rows of Table 2, as printed in the paper."""


PAPER_OURS_ROWS: tuple[LiteratureDesign, ...] = (
    LiteratureDesign(
        "Ours AlexNet float", "Arria10 GT1150", 239.62, "AlexNet", "float 32b",
        1290, 0.85, 2360, 0.86, 4.05, 360.4, True,
    ),
    LiteratureDesign(
        "Ours VGG float", "Arria10 GT1150", 221.65, "VGG", "float 32b",
        1340, 0.88, 2455, 0.90, 54.12, 460.5, True,
    ),
    LiteratureDesign(
        "Ours VGG fixed", "Arria10 GT1150", 231.85, "VGG", "fixed 8-16b",
        1500, 0.49, 1668, 0.61, 26.85, 1171.3, False,
    ),
)
"""The paper's own Table 2 rows — the targets this reproduction must
regenerate (shape, not silicon-exact values; see EXPERIMENTS.md)."""


__all__ = ["LITERATURE_ROWS", "LiteratureDesign", "PAPER_OURS_ROWS"]
