"""Analytical models (paper Section 3).

Everything the DSE needs to evaluate a candidate design without touching
hardware: the feasible-mapping condition (Eq. 2/3), DSP and BRAM resource
models (Eq. 4–6), DSP efficiency (Eq. 1), and the throughput model
(Eq. 7–10), bundled around two containers:

* :class:`~repro.model.platform.Platform` — device + datatype + memory +
  frequency surrogate + model calibration constants;
* :class:`~repro.model.design_point.DesignPoint` — one fully specified
  candidate design (nest, mapping, PE-array shape, tiling).
"""

from repro.model.design_point import ArrayShape, DesignEvaluation, DesignPoint
from repro.model.mapping import Mapping, array_roles, feasible_mappings, is_feasible
from repro.model.performance import PerformanceEstimate, estimate_performance
from repro.model.platform import Platform
from repro.model.serialize import (
    design_from_dict,
    design_to_dict,
    load_design,
    save_design,
)
from repro.model.resources import (
    BramBreakdown,
    bram_usage,
    dsp_usage,
    logic_usage,
)

__all__ = [
    "ArrayShape",
    "BramBreakdown",
    "DesignEvaluation",
    "DesignPoint",
    "Mapping",
    "PerformanceEstimate",
    "Platform",
    "array_roles",
    "bram_usage",
    "dsp_usage",
    "estimate_performance",
    "design_from_dict",
    "design_to_dict",
    "feasible_mappings",
    "load_design",
    "save_design",
    "is_feasible",
    "logic_usage",
]
