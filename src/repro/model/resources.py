"""Resource utilization models (paper Section 3.3, Eq. 4–6).

DSP usage is exact: the array instantiates one MAC lane per inner-loop
iteration (Eq. 4), at the datatype's DSP cost per lane.

BRAM usage follows Eq. 6.  Footprints :math:`DA_r` (Eq. 5) come from
:mod:`repro.ir.domain`; each double-buffered reuse buffer occupies a
power-of-two number of RAM blocks (the Intel OpenCL flow "will allocate
the actual memory size as the rounding up power of two value"), plus the
constant per-buffer overhead ``c_b`` and the per-PE cost ``c_p``.

A coarse logic (ALM/LUT) model is included for the Table 3 utilization
columns; it is a linear calibration, documented as such.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.domain import count_footprint
from repro.ir.tiling import TiledLoopNest
from repro.model.mapping import array_roles
from repro.model.platform import Platform


def dsp_usage(rows: int, cols: int, vector: int, platform: Platform) -> float:
    """Eq. 4: DSP blocks consumed by the PE array.

    ``DSP_per_PE x prod(t)`` with DSP_per_PE taken from the datatype
    (1 block per float MAC lane, 0.5 per 8x16 fixed lane).
    """
    if min(rows, cols, vector) < 1:
        raise ValueError("array shape must be positive")
    return rows * cols * vector * platform.dsp_per_mac


def mac_lanes(rows: int, cols: int, vector: int) -> int:
    """Parallel MAC lanes of the array = prod(t)."""
    return rows * cols * vector


@dataclass(frozen=True)
class BramBreakdown:
    """Where the RAM blocks go, for reporting and Fig. 7(a).

    Attributes:
        per_array_blocks: array name -> double-buffered, power-of-two
            rounded block count (incl. ``c_b``).
        pe_blocks: blocks inside the PE array (``c_p x #PE``).
        footprints: array name -> DA_r in words.
    """

    per_array_blocks: dict[str, int]
    pe_blocks: int
    footprints: dict[str, int]

    @property
    def total(self) -> int:
        """Total RAM blocks (the B(s, t) of Eq. 6)."""
        return sum(self.per_array_blocks.values()) + self.pe_blocks


def bram_usage(tiled: TiledLoopNest, platform: Platform) -> BramBreakdown:
    """Eq. 6: RAM blocks for all reuse buffers plus the PE array.

    For each array ``r``:

    1. footprint ``DA_r`` in words over one block's middle+inner domain
       (Eq. 5, closed form validated against enumeration in tests);
    2. raw blocks = ceil(words / words-per-block at the role's width);
    3. power-of-two rounding (tool behaviour);
    4. x2 for double buffering;
    5. + ``c_b`` control overhead.

    The PE-internal term is ``c_p x prod(t)``.
    """
    roles = array_roles(tiled.nest)
    domain = (
        tiled.block_domain
        if platform.ragged_middle == "padded"
        else tiled.block_domain_clipped
    )
    per_array: dict[str, int] = {}
    footprints: dict[str, int] = {}
    for access in tiled.nest.accesses:
        words = count_footprint(access, domain)
        footprints[access.array] = words
        word_bytes = platform.datatype.bytes_for(roles[access.array])
        raw_blocks = math.ceil(words / platform.device.bram_words_per_block(word_bytes))
        rounded = 1 << math.ceil(math.log2(raw_blocks)) if raw_blocks > 1 else 1
        per_array[access.array] = platform.bram_buffer_constant + 2 * rounded

    lanes = 1
    for _, bound in tiled.tiling.inner:
        lanes *= bound
    pe_blocks = math.ceil(platform.bram_per_pe * lanes)
    return BramBreakdown(per_array, pe_blocks, footprints)


def logic_usage(
    rows: int,
    cols: int,
    vector: int,
    platform: Platform,
    *,
    base_cells: int = 40_000,
    cells_per_lane: float = 160.0,
) -> float:
    """Rough ALM/LUT count: infrastructure base + per-MAC-lane glue.

    Calibrated so the paper's unified designs (~1200 float lanes) land
    near the reported ~57-59% logic on Arria 10.  Reporting-only — no
    DSE decision depends on logic.
    """
    return base_cells + cells_per_lane * mac_lanes(rows, cols, vector)


__all__ = ["BramBreakdown", "bram_usage", "dsp_usage", "logic_usage", "mac_lanes"]
