"""The Platform bundle: everything a design is evaluated against.

Collects the device, datatype, memory system, frequency surrogate and the
two calibration constants of the BRAM model (Eq. 6's ``c_b`` and ``c_p``)
plus the phase-1 assumed clock (the paper evaluates the pruned space "with
a given clock frequency (280 MHz)").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hw.datatype import FLOAT32, ArithmeticSpec
from repro.hw.device import ARRIA10_GT1150, FPGADevice
from repro.hw.frequency import FrequencyModel
from repro.hw.memory import ARRIA10_DEVKIT_DDR4, MemorySystem


@dataclass(frozen=True)
class Platform:
    """An evaluation platform for systolic designs.

    Attributes:
        device: FPGA capacities.
        datatype: arithmetic cost model.
        memory: DRAM bandwidth model.
        frequency_model: post-P&R clock surrogate (phase-2 oracle).
        assumed_clock_mhz: the fixed clock phase 1 prices designs at.
        bram_buffer_constant: Eq. 6's ``c_b`` — control/FIFO overhead
            blocks per reuse buffer.
        bram_per_pe: Eq. 6's ``c_p`` — RAM blocks per PE (output shift
            registers and local FIFOs; 0.5 = one M20K shared by two PEs).
        dsp_total_override: optional override of the DSP budget (Table 1
            computes utilization against a 1600 budget; Table 3 against
            the physical 1518 — see EXPERIMENTS.md).
        ragged_middle: quantization semantics for ragged middle blocks.
            ``"padded"`` (default) is the literal Eq. 8 reading — partial
            blocks execute their full shape — which reproduces the paper's
            Section 2.3 numbers exactly; ``"clipped"`` lets the sequential
            middle loops stop early in the last block, the semantics under
            which the paper's power-of-two tiling pruning is exactly
            optimal.  See EXPERIMENTS.md for the full discussion.
    """

    device: FPGADevice = ARRIA10_GT1150
    datatype: ArithmeticSpec = FLOAT32
    memory: MemorySystem = ARRIA10_DEVKIT_DDR4
    frequency_model: FrequencyModel = field(default_factory=FrequencyModel)
    assumed_clock_mhz: float = 280.0
    bram_buffer_constant: int = 2
    bram_per_pe: float = 0.5
    dsp_total_override: int | None = None
    ragged_middle: str = "padded"

    def __post_init__(self) -> None:
        if self.assumed_clock_mhz <= 0:
            raise ValueError("assumed clock must be positive")
        if self.bram_buffer_constant < 0 or self.bram_per_pe < 0:
            raise ValueError("BRAM constants must be nonnegative")
        if self.ragged_middle not in ("padded", "clipped"):
            raise ValueError(
                f"ragged_middle must be 'padded' or 'clipped', got {self.ragged_middle!r}"
            )

    SOFT_FLOAT_DSP_PER_MAC = 3.0
    """DSP blocks per float32 MAC on devices without hardened FP DSPs
    (e.g. a DSP48-based multiplier plus fabric adder on Xilinx parts) —
    the resource reality that kept pre-Arria-10 float designs small."""

    @property
    def dsp_per_mac(self) -> float:
        """Effective DSP cost of one MAC lane on this device/datatype.

        Arria 10's hardened floating-point DSPs do a full float32 MAC per
        block; on devices without native float the cost multiplies."""
        cost = self.datatype.dsp_per_mac
        if self.datatype.is_floating_point and not self.device.dsp_supports_native_float:
            cost *= self.SOFT_FLOAT_DSP_PER_MAC
        return cost

    @property
    def dsp_total(self) -> int:
        """MAC-lane budget D_total at this datatype."""
        if self.dsp_total_override is not None:
            return self.dsp_total_override
        return self.device.mac_capacity(self.dsp_per_mac)

    @property
    def bram_total(self) -> int:
        """RAM-block budget B_total."""
        return self.device.bram_blocks

    def with_datatype(self, datatype: ArithmeticSpec) -> "Platform":
        """Same platform at a different precision."""
        return replace(self, datatype=datatype)

    def with_assumed_clock(self, mhz: float) -> "Platform":
        """Same platform with a different phase-1 clock assumption."""
        return replace(self, assumed_clock_mhz=mhz)


__all__ = ["Platform"]
