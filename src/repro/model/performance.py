"""Throughput model (paper Section 3.4, Eq. 7–10).

Double buffering decouples computation from data transfer, so layer
throughput is the minimum of:

* **PT** (Eq. 8) — computation: the fully pipelined array retires
  ``prod(t)`` MACs (2 ops) per cycle, derated by DSP efficiency;
* **MT** (Eq. 9/10) — memory: effective ops per block divided by the
  block's transfer time, at both the aggregate bandwidth and each array
  port's bandwidth.

All throughputs are reported in Gops (= GFlops for float precision).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.domain import count_footprint, count_footprint_batch
from repro.ir.loop import LoopNest
from repro.ir.tiling import TiledLoopNest
from repro.model.mapping import array_roles
from repro.model.platform import Platform

#: Largest integer magnitude whose float64 conversion is exact.  The
#: batched model promises bit-identity with the scalar path, which does
#: correctly-rounded big-int division; past this limit NumPy's
#: int64→float64 conversion rounds first, so the batch refuses.
FLOAT64_EXACT_INT = 2**53


@dataclass(frozen=True)
class PerformanceEstimate:
    """The analytical model's verdict on one design.

    Attributes:
        frequency_mhz: clock used for the estimate.
        efficiency: DSP efficiency (Eq. 1).
        lanes: parallel MAC lanes (prod t).
        block_iterations: middle+inner iterations per block (prod(s x t)).
        pt_gops: computation throughput (Eq. 8).
        mt_gops: memory throughput (Eq. 9, min over limits).
        mt_total_gops: aggregate-bandwidth-limited throughput.
        mt_per_array_gops: per-port-limited throughput per array.
        throughput_gops: overall T = min(PT, MT) (Eq. 7).
        effective_ops: the layer's real operation count.
        seconds: closed-form layer latency = effective_ops / T.
        block_bytes: bytes transferred per block, per array.
    """

    frequency_mhz: float
    efficiency: float
    lanes: int
    block_iterations: int
    pt_gops: float
    mt_gops: float
    mt_total_gops: float
    mt_per_array_gops: dict[str, float]
    throughput_gops: float
    effective_ops: int
    seconds: float
    block_bytes: dict[str, int]

    @property
    def bound(self) -> str:
        """Which side limits the design: 'compute' or 'memory'."""
        return "compute" if self.pt_gops <= self.mt_gops else "memory"

    @property
    def bandwidth_demand_gbs(self) -> float:
        """Aggregate DRAM bandwidth needed to sustain PT, in GB/s.

        The quantity behind the paper's Section 2.3 example: "we require
        around 67 GB/s memory bandwidth to achieve the peak throughput".
        Computed as PT x (bytes moved per effective op).
        """
        block_ops = self.efficiency * 2.0 * self.block_iterations
        bytes_per_op = sum(self.block_bytes.values()) / block_ops
        return self.pt_gops * bytes_per_op  # Gops * B/op = GB/s


def estimate_performance(
    tiled: TiledLoopNest,
    platform: Platform,
    *,
    frequency_mhz: float | None = None,
) -> PerformanceEstimate:
    """Evaluate Eq. 7–10 for one tiled design.

    Args:
        tiled: the design's tiled loop nest (mapping + shape + tiling).
        platform: evaluation platform.
        frequency_mhz: clock override; defaults to the platform's phase-1
            assumed clock.

    Returns:
        A :class:`PerformanceEstimate`.
    """
    freq_hz = (frequency_mhz or platform.assumed_clock_mhz) * 1e6
    eff = (
        tiled.efficiency
        if platform.ragged_middle == "padded"
        else tiled.clipped_efficiency
    )

    lanes = 1
    for _, bound in tiled.tiling.inner:
        lanes *= bound

    # Eq. 8 — computation throughput.
    pt = eff * 2.0 * lanes * freq_hz

    # Eq. 9/10 — memory transfer throughput.  Clipped platforms use the
    # clipped block domain so the model agrees with the DSE tuner.
    roles = array_roles(tiled.nest)
    domain = (
        tiled.block_domain
        if platform.ragged_middle == "padded"
        else tiled.block_domain_clipped
    )
    block_iterations = domain.size
    block_ops = eff * 2.0 * block_iterations

    block_bytes: dict[str, int] = {}
    for access in tiled.nest.accesses:
        words = count_footprint(access, domain)
        block_bytes[access.array] = words * platform.datatype.bytes_for(roles[access.array])

    total_bytes = sum(block_bytes.values())
    mt_total = block_ops / (total_bytes / platform.memory.total_bytes_per_second)
    mt_per_array = {
        array: block_ops / (nbytes / platform.memory.port_bytes_per_second)
        for array, nbytes in block_bytes.items()
    }
    mt = min(mt_total, *mt_per_array.values())

    throughput = min(pt, mt)
    effective_ops = tiled.nest.total_operations
    return PerformanceEstimate(
        frequency_mhz=freq_hz / 1e6,
        efficiency=eff,
        lanes=lanes,
        block_iterations=block_iterations,
        pt_gops=pt / 1e9,
        mt_gops=mt / 1e9,
        mt_total_gops=mt_total / 1e9,
        mt_per_array_gops={a: v / 1e9 for a, v in mt_per_array.items()},
        throughput_gops=throughput / 1e9,
        effective_ops=effective_ops,
        seconds=effective_ops / throughput,
        block_bytes=block_bytes,
    )


@dataclass(frozen=True)
class PerformanceBatch:
    """Array-valued :class:`PerformanceEstimate` over B candidate tilings.

    Every attribute mirrors its scalar counterpart, with floats and ints
    replaced by aligned length-B arrays; entry ``i`` is bit-identical to
    evaluating candidate ``i`` through :func:`estimate_performance`
    (property-tested in ``tests/model/test_performance_batch.py``).
    """

    frequency_mhz: float
    efficiency: np.ndarray
    lanes: np.ndarray
    block_iterations: np.ndarray
    pt_gops: np.ndarray
    mt_gops: np.ndarray
    mt_total_gops: np.ndarray
    mt_per_array_gops: dict[str, np.ndarray]
    throughput_gops: np.ndarray
    effective_ops: int
    seconds: np.ndarray
    block_bytes: dict[str, np.ndarray]

    def __len__(self) -> int:
        return int(self.throughput_gops.shape[0])

    @property
    def bound(self) -> np.ndarray:
        """'compute'/'memory' per candidate (same rule as the scalar)."""
        return np.where(self.pt_gops <= self.mt_gops, "compute", "memory")


def estimate_performance_batch(
    nest: LoopNest,
    platform: Platform,
    *,
    inner: np.ndarray,
    middle: np.ndarray,
    frequency_mhz: float | None = None,
) -> PerformanceBatch:
    """Evaluate Eq. 7–10 for a whole tiling subspace in one shot.

    ``inner`` and ``middle`` are int arrays of shape
    ``(B, len(nest.iterators))`` holding the per-loop bounds ``t`` and
    ``s`` in ``nest.iterators`` order (1 for unmapped loops).  Shares
    every constant and formula with :func:`estimate_performance` and
    applies them in the same order, so each row is bit-identical to the
    scalar estimate of the same design.

    Raises:
        ValueError: on shape mismatch, or when an intermediate integer
            would exceed float64's exact range (use the scalar path).
    """
    iterators = nest.iterators
    inner_arr = np.asarray(inner, dtype=np.int64)
    middle_arr = np.asarray(middle, dtype=np.int64)
    if inner_arr.shape != middle_arr.shape or inner_arr.ndim != 2:
        raise ValueError("inner and middle must both be (B, n_loops)")
    if inner_arr.shape[1] != len(iterators):
        raise ValueError(
            f"expected {len(iterators)} loop columns, got {inner_arr.shape[1]}"
        )
    if inner_arr.shape[0] == 0:
        raise ValueError("empty candidate batch")

    freq_hz = (frequency_mhz or platform.assumed_clock_mhz) * 1e6
    trips = np.array([nest.bounds[it] for it in iterators], dtype=np.int64)
    blocks = middle_arr * inner_arr

    padded = platform.ragged_middle == "padded"
    if padded:
        executed = np.multiply.reduce(-(-trips // blocks) * blocks, axis=1)
        domain_ext = blocks
    else:
        cap = -(-trips // inner_arr) * inner_arr
        executed = np.multiply.reduce(cap, axis=1)
        domain_ext = np.minimum(blocks, cap)
    eff = nest.total_iterations / executed
    block_iterations = np.multiply.reduce(domain_ext, axis=1)

    lanes = np.multiply.reduce(inner_arr, axis=1)

    # Eq. 8 — computation throughput.
    pt = eff * 2.0 * lanes * freq_hz

    # Eq. 9/10 — memory transfer throughput over the (clipped) block domain.
    roles = array_roles(nest)
    block_ops = eff * 2.0 * block_iterations
    block_bytes: dict[str, np.ndarray] = {}
    for access in nest.accesses:
        words = count_footprint_batch(access, iterators, domain_ext)
        block_bytes[access.array] = words * platform.datatype.bytes_for(
            roles[access.array]
        )

    guard = max(
        int(executed.max()),
        int(block_iterations.max()),
        nest.total_iterations,
        max(int(b.max()) for b in block_bytes.values()),
    )
    if guard > FLOAT64_EXACT_INT:
        raise ValueError(
            "batch intermediate exceeds float64's exact integer range; "
            "evaluate these candidates through the scalar model"
        )

    # The scalar path sums the (integer) per-array bytes exactly and
    # converts once at the division, so the batch accumulates in int64.
    total_bytes = np.zeros(inner_arr.shape[0], dtype=np.int64)
    for nbytes in block_bytes.values():
        total_bytes = total_bytes + nbytes
    mt_total = block_ops / (total_bytes / platform.memory.total_bytes_per_second)
    mt_per_array = {
        array: block_ops / (nbytes / platform.memory.port_bytes_per_second)
        for array, nbytes in block_bytes.items()
    }
    mt = mt_total
    for value in mt_per_array.values():
        mt = np.minimum(mt, value)

    throughput = np.minimum(pt, mt)
    effective_ops = nest.total_operations
    return PerformanceBatch(
        frequency_mhz=freq_hz / 1e6,
        efficiency=eff,
        lanes=lanes,
        block_iterations=block_iterations,
        pt_gops=pt / 1e9,
        mt_gops=mt / 1e9,
        mt_total_gops=mt_total / 1e9,
        mt_per_array_gops={a: v / 1e9 for a, v in mt_per_array.items()},
        throughput_gops=throughput / 1e9,
        effective_ops=effective_ops,
        seconds=effective_ops / throughput,
        block_bytes=block_bytes,
    )


__all__ = [
    "PerformanceBatch",
    "PerformanceEstimate",
    "estimate_performance",
    "estimate_performance_batch",
]
