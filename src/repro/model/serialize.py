"""Design persistence: JSON round-trips for design points.

DSE runs are deterministic but not free; users want to pin a winning
design in version control and regenerate artifacts from it without
re-searching.  The format is plain JSON with a schema version:

.. code-block:: json

    {
      "format": "repro-design/1",
      "nest": {"name": "...", "loops": [["o", 128], ...],
               "accesses": [{"array": "OUT", "write": true,
                              "indices": [[["o", 1]], ...], "consts": [0, ...]}]},
      "mapping": {"row": "o", "col": "c", "vector": "i",
                   "vertical": "IN", "horizontal": "W"},
      "shape": [11, 13, 8],
      "middle": {"i": 4, "o": 4}
    }

Everything needed to rebuild the :class:`~repro.model.design_point.DesignPoint`
is embedded (including the nest), so a saved design is self-contained.
"""

from __future__ import annotations

import json
from typing import Any

from repro.ir.access import AffineExpr, ArrayAccess
from repro.ir.loop import Loop, LoopNest
from repro.model.design_point import ArrayShape, DesignPoint
from repro.model.mapping import Mapping

FORMAT = "repro-design/1"


def design_to_dict(design: DesignPoint) -> dict[str, Any]:
    """Serialize a design point to plain JSON-able data."""
    nest = design.nest
    accesses = []
    for access in nest.accesses:
        accesses.append(
            {
                "array": access.array,
                "write": access.is_write,
                "indices": [sorted(expr.terms) for expr in access.indices],
                "consts": [expr.const for expr in access.indices],
            }
        )
    return {
        "format": FORMAT,
        "nest": {
            "name": nest.name,
            "loops": [[loop.iterator, loop.trip_count] for loop in nest.loops],
            "accesses": accesses,
        },
        "mapping": {
            "row": design.mapping.row,
            "col": design.mapping.col,
            "vector": design.mapping.vector,
            "vertical": design.mapping.vertical_array,
            "horizontal": design.mapping.horizontal_array,
        },
        "shape": [design.shape.rows, design.shape.cols, design.shape.vector],
        "middle": design.middle_bounds,
    }


def design_from_dict(data: dict[str, Any]) -> DesignPoint:
    """Rebuild a design point from :func:`design_to_dict` data.

    Raises:
        ValueError: on unknown format versions or malformed payloads.
    """
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported design format {data.get('format')!r} (expected {FORMAT!r})"
        )
    try:
        nest_data = data["nest"]
        loops = tuple(Loop(name, trip) for name, trip in nest_data["loops"])
        accesses = []
        for entry in nest_data["accesses"]:
            indices = tuple(
                AffineExpr.of({n: c for n, c in terms}, const)
                for terms, const in zip(entry["indices"], entry["consts"])
            )
            accesses.append(ArrayAccess(entry["array"], indices, entry["write"]))
        nest = LoopNest(loops, tuple(accesses), name=nest_data["name"])
        mapping = Mapping(
            data["mapping"]["row"],
            data["mapping"]["col"],
            data["mapping"]["vector"],
            data["mapping"]["vertical"],
            data["mapping"]["horizontal"],
        )
        rows, cols, vector = data["shape"]
        return DesignPoint.create(
            nest, mapping, ArrayShape(rows, cols, vector), data.get("middle") or {}
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed design payload: {exc}") from exc


def save_design(design: DesignPoint, path) -> None:
    """Write a design point to a JSON file."""
    from pathlib import Path

    Path(path).write_text(json.dumps(design_to_dict(design), indent=2) + "\n")


def load_design(path) -> DesignPoint:
    """Read a design point from a JSON file."""
    from pathlib import Path

    return design_from_dict(json.loads(Path(path).read_text()))


__all__ = ["FORMAT", "design_from_dict", "design_to_dict", "load_design", "save_design"]
