"""Design persistence: JSON round-trips for design points, evaluations
and full synthesis results.

DSE runs are deterministic but not free; users want to pin a winning
design in version control and regenerate artifacts from it without
re-searching, and the pipeline's content-addressed stage cache
(:mod:`repro.pipeline.cache`) needs every stage output to survive a
round trip bit-for-bit (JSON floats round-trip exactly through
``repr``).  The design format is plain JSON with a schema version:

.. code-block:: json

    {
      "format": "repro-design/1",
      "nest": {"name": "...", "loops": [["o", 128], ...],
               "accesses": [{"array": "OUT", "write": true,
                              "indices": [[["o", 1]], ...], "consts": [0, ...]}]},
      "mapping": {"row": "o", "col": "c", "vector": "i",
                   "vertical": "IN", "horizontal": "W"},
      "shape": [11, 13, 8],
      "middle": {"i": 4, "o": 4}
    }

Everything needed to rebuild the :class:`~repro.model.design_point.DesignPoint`
is embedded (including the nest), so a saved design is self-contained.
"""

from __future__ import annotations

import json
from typing import Any

from repro.ir.access import AffineExpr, ArrayAccess
from repro.ir.loop import Loop, LoopNest
from repro.model.design_point import ArrayShape, DesignEvaluation, DesignPoint
from repro.model.mapping import Mapping
from repro.model.performance import PerformanceEstimate
from repro.model.resources import BramBreakdown

FORMAT = "repro-design/1"
EVALUATION_FORMAT = "repro-evaluation/1"
RESULT_FORMAT = "repro-result/1"
ENGINE_RESULT_FORMAT = "repro-engine-result/1"


def nest_to_dict(nest: LoopNest) -> dict[str, Any]:
    """Serialize a loop nest to plain JSON-able data."""
    accesses = []
    for access in nest.accesses:
        accesses.append(
            {
                "array": access.array,
                "write": access.is_write,
                "indices": [sorted(expr.terms) for expr in access.indices],
                "consts": [expr.const for expr in access.indices],
            }
        )
    return {
        "name": nest.name,
        "loops": [[loop.iterator, loop.trip_count] for loop in nest.loops],
        "accesses": accesses,
    }


def nest_from_dict(data: dict[str, Any]) -> LoopNest:
    """Rebuild a loop nest from :func:`nest_to_dict` data."""
    loops = tuple(Loop(name, trip) for name, trip in data["loops"])
    accesses = []
    for entry in data["accesses"]:
        indices = tuple(
            AffineExpr.of({n: c for n, c in terms}, const)
            for terms, const in zip(entry["indices"], entry["consts"])
        )
        accesses.append(ArrayAccess(entry["array"], indices, entry["write"]))
    return LoopNest(loops, tuple(accesses), name=data["name"])


def design_to_dict(design: DesignPoint) -> dict[str, Any]:
    """Serialize a design point to plain JSON-able data."""
    return {
        "format": FORMAT,
        "nest": nest_to_dict(design.nest),
        "mapping": {
            "row": design.mapping.row,
            "col": design.mapping.col,
            "vector": design.mapping.vector,
            "vertical": design.mapping.vertical_array,
            "horizontal": design.mapping.horizontal_array,
        },
        "shape": [design.shape.rows, design.shape.cols, design.shape.vector],
        "middle": design.middle_bounds,
    }


def design_from_dict(data: dict[str, Any]) -> DesignPoint:
    """Rebuild a design point from :func:`design_to_dict` data.

    Raises:
        ValueError: on unknown format versions or malformed payloads.
    """
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported design format {data.get('format')!r} (expected {FORMAT!r})"
        )
    try:
        nest = nest_from_dict(data["nest"])
        mapping = Mapping(
            data["mapping"]["row"],
            data["mapping"]["col"],
            data["mapping"]["vector"],
            data["mapping"]["vertical"],
            data["mapping"]["horizontal"],
        )
        rows, cols, vector = data["shape"]
        return DesignPoint.create(
            nest, mapping, ArrayShape(rows, cols, vector), data.get("middle") or {}
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed design payload: {exc}") from exc


def save_design(design: DesignPoint, path) -> None:
    """Write a design point to a JSON file."""
    from pathlib import Path

    Path(path).write_text(json.dumps(design_to_dict(design), indent=2) + "\n")


def load_design(path) -> DesignPoint:
    """Read a design point from a JSON file."""
    from pathlib import Path

    return design_from_dict(json.loads(Path(path).read_text()))


# --------------------------------------------------------- evaluations


def evaluation_to_dict(evaluation: DesignEvaluation) -> dict[str, Any]:
    """Serialize a :class:`DesignEvaluation` (design + model verdict)."""
    perf = evaluation.performance
    return {
        "format": EVALUATION_FORMAT,
        "design": design_to_dict(evaluation.design),
        "performance": {
            "frequency_mhz": perf.frequency_mhz,
            "efficiency": perf.efficiency,
            "lanes": perf.lanes,
            "block_iterations": perf.block_iterations,
            "pt_gops": perf.pt_gops,
            "mt_gops": perf.mt_gops,
            "mt_total_gops": perf.mt_total_gops,
            "mt_per_array_gops": perf.mt_per_array_gops,
            "throughput_gops": perf.throughput_gops,
            "effective_ops": perf.effective_ops,
            "seconds": perf.seconds,
            "block_bytes": perf.block_bytes,
        },
        "bram": {
            "per_array_blocks": evaluation.bram.per_array_blocks,
            "pe_blocks": evaluation.bram.pe_blocks,
            "footprints": evaluation.bram.footprints,
        },
        "dsp_blocks": evaluation.dsp_blocks,
        "dsp_utilization": evaluation.dsp_utilization,
        "bram_utilization": evaluation.bram_utilization,
        "logic_cells": evaluation.logic_cells,
    }


def evaluation_from_dict(data: dict[str, Any]) -> DesignEvaluation:
    """Rebuild a :class:`DesignEvaluation` from :func:`evaluation_to_dict`.

    Raises:
        ValueError: on unknown format versions or malformed payloads.
    """
    if data.get("format") != EVALUATION_FORMAT:
        raise ValueError(
            f"unsupported evaluation format {data.get('format')!r} "
            f"(expected {EVALUATION_FORMAT!r})"
        )
    try:
        perf = data["performance"]
        bram = data["bram"]
        return DesignEvaluation(
            design=design_from_dict(data["design"]),
            performance=PerformanceEstimate(
                frequency_mhz=perf["frequency_mhz"],
                efficiency=perf["efficiency"],
                lanes=perf["lanes"],
                block_iterations=perf["block_iterations"],
                pt_gops=perf["pt_gops"],
                mt_gops=perf["mt_gops"],
                mt_total_gops=perf["mt_total_gops"],
                mt_per_array_gops=dict(perf["mt_per_array_gops"]),
                throughput_gops=perf["throughput_gops"],
                effective_ops=perf["effective_ops"],
                seconds=perf["seconds"],
                block_bytes=dict(perf["block_bytes"]),
            ),
            bram=BramBreakdown(
                per_array_blocks=dict(bram["per_array_blocks"]),
                pe_blocks=bram["pe_blocks"],
                footprints=dict(bram["footprints"]),
            ),
            dsp_blocks=data["dsp_blocks"],
            dsp_utilization=data["dsp_utilization"],
            bram_utilization=data["bram_utilization"],
            logic_cells=data["logic_cells"],
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed evaluation payload: {exc}") from exc


# ------------------------------------------------------ full results


def measurement_to_dict(measurement: Any) -> dict[str, Any]:
    """Serialize a :class:`repro.sim.perf.LayerMeasurement`."""
    return {
        "seconds": measurement.seconds,
        "cycles": measurement.cycles,
        "compute_cycles": measurement.compute_cycles,
        "transfer_cycles": measurement.transfer_cycles,
        "frequency_mhz": measurement.frequency_mhz,
        "throughput_gops": measurement.throughput_gops,
        "blocks": measurement.blocks,
        "bound": measurement.bound,
        "utilization": measurement.utilization,
    }


def measurement_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a :class:`repro.sim.perf.LayerMeasurement`."""
    from repro.sim.perf import LayerMeasurement

    try:
        return LayerMeasurement(**data)
    except TypeError as exc:
        raise ValueError(f"malformed measurement payload: {exc}") from exc


def engine_result_to_dict(engine_result: Any) -> dict[str, Any]:
    """Serialize a :class:`repro.sim.engine.EngineResult`.

    The output tensor is stored flat plus its shape; float64 values
    round-trip bit-for-bit through JSON's ``repr``-based float encoding,
    so a reloaded result compares bit-identical to the simulated one.
    """
    output = engine_result.output
    return {
        "format": ENGINE_RESULT_FORMAT,
        "output_shape": list(output.shape),
        "output": output.ravel().tolist(),
        "compute_cycles": engine_result.compute_cycles,
        "blocks": engine_result.blocks,
        "waves": engine_result.waves,
        "pe_active_cycles": engine_result.pe_active_cycles,
        "first_all_active_cycle": engine_result.first_all_active_cycle,
    }


def engine_result_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild an :class:`repro.sim.engine.EngineResult`.

    Raises:
        ValueError: on unknown format versions or malformed payloads.
    """
    import numpy as np

    from repro.sim.engine import EngineResult

    if data.get("format") != ENGINE_RESULT_FORMAT:
        raise ValueError(
            f"unsupported engine-result format {data.get('format')!r} "
            f"(expected {ENGINE_RESULT_FORMAT!r})"
        )
    try:
        output = np.asarray(data["output"], dtype=np.float64).reshape(
            tuple(data["output_shape"])
        )
        return EngineResult(
            output=output,
            compute_cycles=data["compute_cycles"],
            blocks=data["blocks"],
            waves=data["waves"],
            pe_active_cycles=data["pe_active_cycles"],
            first_all_active_cycle=data["first_all_active_cycle"],
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed engine-result payload: {exc}") from exc


def result_to_dict(result: Any) -> dict[str, Any]:
    """Serialize a full :class:`repro.pipeline.context.SynthesisResult`."""
    data = {
        "format": RESULT_FORMAT,
        "evaluation": evaluation_to_dict(result.evaluation),
        "frequency_mhz": result.frequency_mhz,
        "measurement": measurement_to_dict(result.measurement),
        "kernel_source": result.kernel_source,
        "host_source": result.host_source,
        "testbench_source": result.testbench_source,
        "driver_source": result.driver_source,
        "rtl_source": getattr(result, "rtl_source", None),
        "configs_enumerated": result.configs_enumerated,
        "configs_tuned": result.configs_tuned,
        "dse_seconds": result.dse_seconds,
        # Excluded from equality on the dataclass, but part of the run's
        # observable history — a saved result must keep its degradation
        # trail for post-mortems.
        "degradations": [list(entry) for entry in getattr(result, "degradations", ())],
    }
    engine_result = getattr(result, "engine_result", None)
    if engine_result is not None:
        data["engine_result"] = engine_result_to_dict(engine_result)
    return data


def result_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild a :class:`repro.pipeline.context.SynthesisResult`.

    Raises:
        ValueError: on unknown format versions or malformed payloads.
    """
    # The result type lives at the flow layer; import lazily so the model
    # layer carries no import-time dependency on it.
    from repro.pipeline.context import SynthesisResult

    if data.get("format") != RESULT_FORMAT:
        raise ValueError(
            f"unsupported result format {data.get('format')!r} "
            f"(expected {RESULT_FORMAT!r})"
        )
    try:
        return SynthesisResult(
            evaluation=evaluation_from_dict(data["evaluation"]),
            frequency_mhz=data["frequency_mhz"],
            measurement=measurement_from_dict(data["measurement"]),
            kernel_source=data["kernel_source"],
            host_source=data["host_source"],
            testbench_source=data["testbench_source"],
            driver_source=data["driver_source"],
            # Absent in pre-RTL saved results; None is the degraded state.
            rtl_source=data.get("rtl_source"),
            configs_enumerated=data["configs_enumerated"],
            configs_tuned=data["configs_tuned"],
            dse_seconds=data["dse_seconds"],
            degradations=tuple(
                (str(code), str(reason))
                for code, reason in data.get("degradations", [])
            ),
            engine_result=(
                engine_result_from_dict(data["engine_result"])
                if "engine_result" in data
                else None
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed result payload: {exc}") from exc


def save_result(result: Any, path) -> None:
    """Write a full synthesis result (design, artifacts, stats) to JSON."""
    from pathlib import Path

    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result(path) -> Any:
    """Read a full synthesis result back from JSON."""
    from pathlib import Path

    return result_from_dict(json.loads(Path(path).read_text()))


__all__ = [
    "ENGINE_RESULT_FORMAT",
    "EVALUATION_FORMAT",
    "FORMAT",
    "RESULT_FORMAT",
    "design_from_dict",
    "design_to_dict",
    "engine_result_from_dict",
    "engine_result_to_dict",
    "evaluation_from_dict",
    "evaluation_to_dict",
    "load_design",
    "load_result",
    "measurement_from_dict",
    "measurement_to_dict",
    "nest_from_dict",
    "nest_to_dict",
    "result_from_dict",
    "result_to_dict",
    "save_design",
    "save_result",
]
