"""Loop-to-architecture mapping and the feasibility condition (Section 3.2).

A systolic configuration picks three loops of the nest as the *inner*
(parallel) dimensions: PE row, PE column, and the SIMD vector inside each
PE.  The paper's feasibility condition (Eq. 2):

    each of the three array variables has to have fine-grained data reuse
    carried by at least one of the three inner loops,

with the architectural refinement visible in Fig. 1/2:

* the **vector** loop carries the *output's* reuse — the in-PE SIMD unit
  accumulates across it, so consecutive vector iterations must hit the
  same OUT element;
* the **row** loop carries the reuse of the *vertically shifted* operand
  (IN in Fig. 2: every PE in a column sees the same IN stream);
* the **column** loop carries the reuse of the *horizontally shifted*
  operand (W in Fig. 2).

Which read operand shifts vertically vs horizontally is itself a free
choice, so :func:`feasible_mappings` enumerates both orientations.  For
the canonical conv nest this yields 6 loop triples x 2 orientations = 12
ordered mappings, derived from the reuse table rather than hard-coded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.ir.loop import LoopNest
from repro.ir.reuse import ReuseTable, analyze_reuse


def array_roles(nest: LoopNest) -> dict[str, str]:
    """Assign memory roles ('output' | 'weight' | 'input') to arrays.

    Role drives word width (8-bit weights vs 16-bit pixels in the fixed
    mode) and the per-port bandwidth accounting.  Arrays with recognizable
    names are matched by name; otherwise the written array is the output,
    the highest-rank read is the weight (the kernel tensor carries both
    channel dimensions), and the remaining read is the input.
    """
    roles: dict[str, str] = {}
    reads = []
    for access in nest.accesses:
        lowered = access.array.lower()
        if access.is_write:
            roles[access.array] = "output"
        elif lowered in ("w", "weight", "weights", "wt"):
            roles[access.array] = "weight"
        elif lowered in ("in", "input", "x", "img", "ifm"):
            roles[access.array] = "input"
        else:
            reads.append(access)
    if reads:
        reads = sorted(reads, key=lambda a: a.rank, reverse=True)
        unassigned = [r for r in ("weight", "input") if r not in roles.values()]
        for access, role in zip(reads, unassigned):
            roles[access.array] = role
        for access in reads:  # any extra reads count as inputs
            roles.setdefault(access.array, "input")
    return roles


@dataclass(frozen=True)
class Mapping:
    """An ordered loop-to-architecture assignment.

    Attributes:
        row: iterator mapped to PE rows.
        col: iterator mapped to PE columns.
        vector: iterator mapped to the in-PE SIMD dimension.
        vertical_array: array whose data shifts down the columns (its
            reuse is carried by ``row``).
        horizontal_array: array whose data shifts along the rows (its
            reuse is carried by ``col``).
    """

    row: str
    col: str
    vector: str
    vertical_array: str
    horizontal_array: str

    def __post_init__(self) -> None:
        if len({self.row, self.col, self.vector}) != 3:
            raise ValueError(
                f"mapping must use three distinct loops, got "
                f"({self.row}, {self.col}, {self.vector})"
            )

    @property
    def inner_loops(self) -> tuple[str, str, str]:
        """The (row, col, vector) iterator triple."""
        return (self.row, self.col, self.vector)

    def selection_vector(self, nest: LoopNest) -> dict[str, int]:
        """The paper's binary k_l vector over the nest's loops."""
        inner = set(self.inner_loops)
        return {it: int(it in inner) for it in nest.iterators}

    def __str__(self) -> str:
        return (
            f"row={self.row}({self.vertical_array}v) "
            f"col={self.col}({self.horizontal_array}>) vec={self.vector}"
        )


def is_feasible(nest: LoopNest, mapping: Mapping, table: ReuseTable | None = None) -> bool:
    """Check the full feasibility condition for one mapping.

    Requires (a) Eq. 2 — every array has reuse on some inner loop — and
    (b) the architectural role constraints: row carries the vertical
    array's reuse, col the horizontal array's, vector the output's.
    """
    table = table or analyze_reuse(nest)
    output = nest.output.array
    reads = {a.array for a in nest.reads}
    if {mapping.vertical_array, mapping.horizontal_array} != reads:
        return False
    role_ok = (
        table.carried(mapping.vertical_array, mapping.row)
        and table.carried(mapping.horizontal_array, mapping.col)
        and table.carried(output, mapping.vector)
    )
    if not role_ok:
        return False
    # Eq. 2: sum_l k_l * c_rl > 0 for every array r (implied by the role
    # constraints, but checked explicitly so the generic condition is the
    # one enforced).
    inner = mapping.inner_loops
    return all(
        any(table.carried(array, it) for it in inner) for array in nest.array_names
    )


def feasible_mappings(nest: LoopNest) -> tuple[Mapping, ...]:
    """Enumerate all feasible ordered mappings of a nest.

    Iterates every ordered triple of distinct loops and both operand
    orientations, keeping those passing :func:`is_feasible`.  For Code 1
    this reproduces the structural analysis of Section 3.2: the IN-reuse
    loop (o) must be an inner loop, paired with one W-reuse loop (r or c)
    and one OUT-reuse loop (i, p or q).
    """
    table = analyze_reuse(nest)
    reads = [a.array for a in nest.reads]
    if len(reads) != 2:
        raise ValueError(
            f"systolic mapping needs exactly two read arrays, nest {nest.name!r} has {reads}"
        )
    result = []
    for row_it, col_it, vec_it in itertools.permutations(nest.iterators, 3):
        for vertical, horizontal in (tuple(reads), tuple(reversed(reads))):
            mapping = Mapping(row_it, col_it, vec_it, vertical, horizontal)
            if is_feasible(nest, mapping, table):
                result.append(mapping)
    return tuple(result)


__all__ = ["Mapping", "array_roles", "feasible_mappings", "is_feasible"]
