"""Design points: one fully specified systolic configuration.

A design point = (loop nest, mapping, PE-array shape, data-reuse tiling).
It owns the derived tiled nest and provides one-call evaluation against a
platform, producing the resource + performance record the DSE ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import Mapping as MappingT

from repro.ir.loop import LoopNest
from repro.ir.tiling import LoopTiling, TiledLoopNest
from repro.model.mapping import Mapping
from repro.model.performance import PerformanceEstimate, estimate_performance
from repro.model.platform import Platform
from repro.model.resources import BramBreakdown, bram_usage, dsp_usage, logic_usage


@dataclass(frozen=True)
class ArrayShape:
    """PE-array shape: (rows, cols, vector) = the inner-loop bounds t."""

    rows: int
    cols: int
    vector: int

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.vector) < 1:
            raise ValueError(f"array shape must be positive, got {self}")

    @property
    def lanes(self) -> int:
        """Parallel MAC lanes = prod(t)."""
        return self.rows * self.cols * self.vector

    def __str__(self) -> str:
        return f"({self.rows},{self.cols},{self.vector})"


@dataclass(frozen=True)
class DesignEvaluation:
    """Everything the DSE knows about one evaluated design.

    Attributes:
        design: the evaluated design point.
        performance: Eq. 7-10 results at the evaluation clock.
        bram: Eq. 6 breakdown.
        dsp_blocks: Eq. 4 result.
        dsp_utilization: against the platform budget.
        bram_utilization: against the device's RAM blocks.
        logic_cells: coarse ALM estimate (reporting only).
        feasible: resource-feasibility verdict (Problem 2 constraints).
    """

    design: "DesignPoint"
    performance: PerformanceEstimate
    bram: BramBreakdown
    dsp_blocks: float
    dsp_utilization: float
    bram_utilization: float
    logic_cells: float

    @property
    def feasible(self) -> bool:
        """B(s,t) <= B_total and D(t) <= D_total (Problem 2 constraints)."""
        return self.dsp_utilization <= 1.0 and self.bram_utilization <= 1.0

    @property
    def throughput_gops(self) -> float:
        """Shortcut to the overall throughput."""
        return self.performance.throughput_gops


@dataclass(frozen=True)
class DesignPoint:
    """A complete candidate design.

    Attributes:
        nest: the convolution loop nest.
        mapping: loop-to-architecture assignment.
        shape: PE array shape (bounds of the three inner loops).
        middle: middle-loop bounds s (iterator -> bound; omitted = 1).
    """

    nest: LoopNest
    mapping: Mapping
    shape: ArrayShape
    middle: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def create(
        nest: LoopNest,
        mapping: Mapping,
        shape: ArrayShape,
        middle: MappingT[str, int] | None = None,
    ) -> "DesignPoint":
        """Build a design point from plain dicts."""
        return DesignPoint(nest, mapping, shape, tuple(sorted((middle or {}).items())))

    @cached_property
    def tiling(self) -> LoopTiling:
        """The LoopTiling induced by mapping + shape + middle bounds."""
        inner = {
            self.mapping.row: self.shape.rows,
            self.mapping.col: self.shape.cols,
            self.mapping.vector: self.shape.vector,
        }
        return LoopTiling.of(dict(self.middle), inner)

    @cached_property
    def tiled(self) -> TiledLoopNest:
        """The tiled loop nest (Fig. 4 program) of this design."""
        return TiledLoopNest(self.nest, self.tiling)

    @property
    def middle_bounds(self) -> dict[str, int]:
        """Middle bounds as a dict."""
        return dict(self.middle)

    @property
    def efficiency(self) -> float:
        """DSP efficiency of the full tiling."""
        return self.tiled.efficiency

    @property
    def signature(self) -> str:
        """Stable identity string (drives the frequency surrogate)."""
        mids = ",".join(f"{k}={v}" for k, v in self.middle)
        return f"{self.nest.name}|{self.mapping}|{self.shape}|{mids}"

    def with_middle(self, middle: MappingT[str, int]) -> "DesignPoint":
        """Same architecture, different data-reuse tiling."""
        return replace(self, middle=tuple(sorted(middle.items())))

    def with_nest(self, nest: LoopNest) -> "DesignPoint":
        """Same architecture and tiling applied to a different layer.

        Used by the unified multi-layer selection: one hardware design is
        priced against every conv layer of the model.
        """
        return replace(self, nest=nest)

    def realized_frequency(self, platform: Platform) -> float:
        """Phase-2 clock from the frequency surrogate."""
        evaluation = self.evaluate(platform)
        return platform.frequency_model.realize(
            rows=self.shape.rows,
            cols=self.shape.cols,
            vector=self.shape.vector,
            dsp_utilization=evaluation.dsp_utilization,
            bram_utilization=evaluation.bram_utilization,
            signature=self.signature,
        )

    def evaluate(
        self, platform: Platform, *, frequency_mhz: float | None = None
    ) -> DesignEvaluation:
        """Run the full analytical model against a platform.

        Args:
            platform: evaluation platform.
            frequency_mhz: clock override (phase 2 uses the realized
                clock; phase 1 the platform's assumed clock).
        """
        performance = estimate_performance(
            self.tiled, platform, frequency_mhz=frequency_mhz
        )
        bram = bram_usage(self.tiled, platform)
        dsp_blocks = dsp_usage(self.shape.rows, self.shape.cols, self.shape.vector, platform)
        dsp_budget_blocks = platform.dsp_total * platform.dsp_per_mac
        return DesignEvaluation(
            design=self,
            performance=performance,
            bram=bram,
            dsp_blocks=dsp_blocks,
            dsp_utilization=dsp_blocks / dsp_budget_blocks,
            bram_utilization=bram.total / platform.bram_total,
            logic_cells=logic_usage(
                self.shape.rows, self.shape.cols, self.shape.vector, platform
            ),
        )

    def __str__(self) -> str:
        return f"DesignPoint({self.signature})"


__all__ = ["ArrayShape", "DesignEvaluation", "DesignPoint"]
