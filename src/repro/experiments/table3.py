"""Table 3 — the unified design configuration per network.

Paper values (float32, Arria 10 GT1150):

=======  ==========  =========  ====  ====  =====  ====
model    PE shape    freq MHz   LUT   DSP   BRAM   FF
=======  ==========  =========  ====  ====  =====  ====
AlexNet  (11,14,8)   270.8      57%   81%   45%    40%
VGG      (8,19,8)    252.6      59%   81%   47%    40%
=======  ==========  =========  ====  ====  =====  ====

Our DSE runs the same two-phase flow against the frequency surrogate, so
the selected shape and clock are calibration-level matches; the
reproduction targets are (i) a high-utilization shape whose row/column
extents track the networks' loop structure, (ii) a realized clock in the
paper's 220-280 MHz band, and (iii) the resource profile.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.networks import unified_design

PAPER_CONFIGS = {
    "alexnet": {"shape": "(11,14,8)", "freq": 270.8, "lut": 0.57, "dsp": 0.81, "bram": 0.45},
    "vgg16": {"shape": "(8,19,8)", "freq": 252.6, "lut": 0.59, "dsp": 0.81, "bram": 0.47},
}


def run_table3_configs(*, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 3 for AlexNet and VGG16 (float32)."""
    result = ExperimentResult(
        name="Table 3",
        description="Unified design per network: shape, clock, resources (float32)",
        headers=["model", "PE shape", "freq MHz", "LUT", "DSP", "BRAM", "source"],
    )
    for name in ("alexnet", "vgg16"):
        paper = PAPER_CONFIGS[name]
        result.add_row(
            name, paper["shape"], f"{paper['freq']:.1f}", f"{paper['lut']:.0%}",
            f"{paper['dsp']:.0%}", f"{paper['bram']:.0%}", "paper",
        )
        ml, _ = unified_design(name, fast=fast)
        result.add_row(
            name,
            str(ml.config.shape),
            f"{ml.frequency_mhz:.1f}",
            f"{ml.logic_utilization:.0%}",
            f"{ml.dsp_utilization:.0%}",
            f"{ml.bram_utilization:.0%}",
            "ours",
        )
        result.metrics[f"{name}_freq_mhz"] = ml.frequency_mhz
        result.metrics[f"{name}_dsp_utilization"] = ml.dsp_utilization
        result.metrics[f"{name}_bram_utilization"] = ml.bram_utilization
        result.metrics[f"{name}_lanes"] = float(ml.config.shape.lanes)
    result.note(
        "shapes differ in detail because the realized-frequency oracle differs "
        "(surrogate vs real P&R); both land >=80% DSP utilization with a "
        "vector of 8 and clocks in the paper's 220-280 MHz band."
    )
    return result


__all__ = ["PAPER_CONFIGS", "run_table3_configs"]
