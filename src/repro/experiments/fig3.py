"""Figure 3 — cycle-level schedule of the systolic array.

The paper's 3x3 example: PE(0,0) starts at the first cycle; data skews
one cycle per hop; "all PEs are active after five cycles"; thereafter the
array is fully synchronous.  The cycle-accurate engine regenerates these
facts and proves the schedule computes the right convolution.
"""

from __future__ import annotations

import numpy as np

from repro.model.design_point import ArrayShape, DesignPoint
from repro.model.mapping import Mapping
from repro.nn.golden import conv2d_layer, random_layer_tensors
from repro.nn.layers import ConvLayer
from repro.sim.engine import SystolicArrayEngine
from repro.sim.functional import simulate_layer
from repro.sim.schedule import first_all_active_cycle, wave_schedule_cycles
from repro.sim.trace import schedule_waterfall
from repro.experiments.common import ExperimentResult


def run_fig3_schedule() -> ExperimentResult:
    """Regenerate the Fig. 3 schedule facts on a 3x3 array."""
    layer = ConvLayer("toy", 4, 6, 7, 7, kernel=3)
    design = DesignPoint.create(
        layer.to_loop_nest(),
        Mapping("o", "c", "i", "IN", "W"),
        ArrayShape(3, 3, 2),
        {"i": 2, "r": 3, "p": 3, "q": 3},
    )
    inputs, weights = random_layer_tensors(layer, seed=42, dtype=np.float64)
    engine_result = SystolicArrayEngine(design).run({"IN": inputs, "W": weights})
    output = simulate_layer(design, layer, inputs, weights)
    reference = conv2d_layer(layer, inputs, weights)
    max_err = float(np.abs(output - reference).max())

    result = ExperimentResult(
        name="Figure 3",
        description="Cycle-level scheduling of a 3x3 systolic array",
        headers=["fact", "paper", "ours"],
    )
    all_active = first_all_active_cycle(3, 3) + 1  # 1-indexed "after N cycles"
    result.add_row("all PEs active after", "5 cycles", f"{all_active} cycles")
    result.add_row(
        "block pipeline cost", "M + R + C - 2 cycles",
        f"{wave_schedule_cycles(10, 3, 3)} cycles for M=10",
    )
    result.add_row("schedule wave tags consistent", "(implied)", "asserted every cycle")
    result.add_row("functional vs golden conv", "exact", f"max err {max_err:.2e}")
    result.metrics["all_active_cycle"] = float(all_active)
    result.metrics["max_error"] = max_err
    result.metrics["blocks"] = float(engine_result.blocks)
    result.metrics["pe_activity"] = float(engine_result.pe_active_cycles)
    result.note("schedule waterfall (cf. the figure):\n" + schedule_waterfall(3, 3, 7))
    return result


__all__ = ["run_fig3_schedule"]
