"""Figure 7 — the design space and the analytical model's accuracy.

(a) The pruned design space of AlexNet's conv layers at a fixed 280 MHz:
    each point is one configuration's (DSP, BRAM, aggregate throughput)
    after data-reuse tuning.  The paper's observation: "high throughput
    design options may cost moderate BRAM blocks and DSPs".

(b) The top-14 designs carried into phase 2: several share the best
    estimated throughput (6 in the paper) and separate only through
    their realized (post-P&R) clocks; with the real clock plugged in,
    the analytical model matches the on-board measurement within 2% on
    average.  Our performance simulator plays the board.
"""

from __future__ import annotations

from repro.model.design_point import DesignPoint
from repro.model.platform import Platform
from repro.dse.multi_layer import LayerWorkload, _evaluate_config
from repro.dse.space import SystolicConfig, enumerate_shapes
from repro.sim.perf import simulate_performance
from repro.experiments.common import ExperimentResult
from repro.experiments.networks import paper_dse_config, unified_design


def _aggregate_simulated(
    workloads: tuple[LayerWorkload, ...],
    config: SystolicConfig,
    layers,
    platform: Platform,
    frequency_mhz: float,
) -> float:
    """'On-board' aggregate throughput: per-layer performance simulator."""
    total_ops = 0.0
    total_seconds = 0.0
    middle_of = {l.name: l.middle for l in layers}
    for w in workloads:
        design = DesignPoint.create(
            w.nest, config.mapping, config.shape, middle_of[w.name]
        )
        measurement = simulate_performance(design, platform, frequency_mhz=frequency_mhz, streaming=True)
        total_seconds += w.multiplicity * measurement.seconds
        total_ops += w.effective_ops
    return total_ops / total_seconds / 1e9


def run_fig7a_design_space(
    platform: Platform | None = None, *, fast: bool = False, sample_points: int | None = None
) -> ExperimentResult:
    """Regenerate Fig. 7(a): the pruned design-space scatter for AlexNet."""
    platform = platform or Platform()
    result_ml, workloads = unified_design("alexnet", fast=fast)
    dse = paper_dse_config(fast=fast)

    from repro.dse.multi_layer import _common_mappings, _envelope_nest

    envelope = _envelope_nest(workloads)
    configs = [
        SystolicConfig(mapping, shape)
        for mapping in _common_mappings(workloads)
        for shape in enumerate_shapes(
            envelope, mapping, platform,
            min_dsp_utilization=dse.min_dsp_utilization,
            vector_choices=dse.vector_choices,
        )
    ]
    want = sample_points or (12 if fast else 60)
    step = max(1, len(configs) // want)
    sampled = configs[::step]

    result = ExperimentResult(
        name="Figure 7(a)",
        description=f"Pruned design space of AlexNet conv layers @ 280 MHz "
        f"({len(sampled)} of {len(configs)} configs sampled)",
        headers=["shape", "mapping", "DSP blocks", "BRAM blocks", "agg GFlops"],
    )
    from repro.analysis.design_check import check_design_point

    best = None
    raw_dsp: list[float] = []
    raw_bram: list[float] = []
    raw_gops: list[float] = []
    designs_validated = 0
    strict_violations = 0
    for config in sampled:
        outcome = _evaluate_config(workloads, config, platform, dse, None)
        if outcome is None:
            continue
        aggregate, _seconds, layers, max_bram, _ops = outcome
        # Strict self-audit: every per-layer design the sweep prices must
        # independently satisfy Eq. 2 and the Eq. 4-6 budgets.
        middle_of = {layer.name: layer.middle for layer in layers}
        for w in workloads:
            design = DesignPoint.create(
                w.nest, config.mapping, config.shape, middle_of[w.name]
            )
            designs_validated += 1
            if not check_design_point(design, platform).ok:
                strict_violations += 1
        dsp = config.shape.lanes * platform.dsp_per_mac
        result.add_row(
            str(config.shape),
            "/".join(config.mapping.inner_loops),
            int(dsp),
            max_bram,
            f"{aggregate:.1f}",
        )
        raw_dsp.append(dsp)
        raw_bram.append(float(max_bram))
        raw_gops.append(aggregate)
        record = (aggregate, dsp, max_bram)
        if best is None or record > best:
            best = record
    result.raw = {"dsp": raw_dsp, "bram": raw_bram, "gflops": raw_gops}
    assert best is not None
    agg, dsp, bram = best
    result.metrics["best_gflops"] = agg
    result.metrics["best_dsp_utilization"] = dsp / (
        platform.dsp_total * platform.dsp_per_mac
    )
    result.metrics["best_bram_utilization"] = bram / platform.bram_total
    result.metrics["points"] = float(len(result.rows))
    result.metrics["designs_validated"] = float(designs_validated)
    result.metrics["strict_violations"] = float(strict_violations)
    result.note(
        f"static design-point validator re-checked {designs_validated} "
        f"per-layer designs of the sweep: {strict_violations} violation(s)."
    )

    # Pareto structure: the paper's "moderate BRAM and DSPs" reading.
    from repro.dse.pareto import ParetoPoint, knee_point, pareto_frontier

    frontier = pareto_frontier(
        [
            ParetoPoint(f"p{i}", g, d, b)
            for i, (g, d, b) in enumerate(zip(raw_gops, raw_dsp, raw_bram))
        ]
    )
    knee = knee_point(frontier)
    result.metrics["pareto_points"] = float(len(frontier))
    result.metrics["knee_gflops"] = knee.throughput_gops
    result.metrics["knee_bram_utilization"] = knee.bram_blocks / platform.bram_total
    result.note(
        "the paper's reading — high-throughput options cost moderate BRAM and "
        f"DSPs — quantified: the Pareto knee delivers {knee.throughput_gops:.0f} "
        f"GFlops at {knee.bram_blocks / platform.bram_total:.0%} BRAM, far from "
        "the resource ceilings."
    )
    return result


def run_fig7b_model_accuracy(
    platform: Platform | None = None, *, fast: bool = False
) -> ExperimentResult:
    """Regenerate Fig. 7(b): estimated vs 'on-board' for the finalists."""
    platform = platform or Platform()
    result_ml, workloads = unified_design("alexnet", fast=fast)
    dse = paper_dse_config(fast=fast)

    from repro.dse.multi_layer import (
        _aggregate_upper_bound,
        _common_mappings,
        _envelope_nest,
    )

    envelope = _envelope_nest(workloads)
    configs = [
        SystolicConfig(mapping, shape)
        for mapping in _common_mappings(workloads)
        for shape in enumerate_shapes(
            envelope, mapping, platform,
            min_dsp_utilization=dse.min_dsp_utilization,
            vector_choices=dse.vector_choices,
        )
    ]
    ranked = sorted(
        configs,
        key=lambda c: _aggregate_upper_bound(workloads, c, platform),
        reverse=True,
    )[: dse.top_n]

    result = ExperimentResult(
        name="Figure 7(b)",
        description="Model accuracy for the finalist designs "
        "(estimated @280 MHz | realized clock | model@realized | simulated)",
        headers=["rank", "shape", "est GFlops", "clock MHz",
                 "model GFlops", "sim GFlops", "error %"],
    )
    errors = []
    estimates = []
    raw_model: list[float] = []
    raw_sim: list[float] = []
    raw_labels: list[str] = []
    for rank, config in enumerate(ranked, start=1):
        at_assumed = _evaluate_config(workloads, config, platform, dse, None)
        if at_assumed is None:
            continue
        estimated = at_assumed[0]
        dsp_util = (
            config.shape.lanes
            * platform.dsp_per_mac
            / (platform.dsp_total * platform.dsp_per_mac)
        )
        bram_util = at_assumed[3] / platform.bram_total
        freq = platform.frequency_model.realize(
            rows=config.shape.rows,
            cols=config.shape.cols,
            vector=config.shape.vector,
            dsp_utilization=dsp_util,
            bram_utilization=bram_util,
            signature=f"unified|{config}",
        )
        at_real = _evaluate_config(workloads, config, platform, dse, freq)
        assert at_real is not None
        model_gops = at_real[0]
        sim_gops = _aggregate_simulated(workloads, config, at_real[2], platform, freq)
        error = abs(model_gops - sim_gops) / sim_gops
        errors.append(error)
        estimates.append(round(estimated, 3))
        raw_model.append(model_gops)
        raw_sim.append(sim_gops)
        raw_labels.append(f"#{rank}")
        result.add_row(
            rank, str(config.shape), f"{estimated:.1f}", f"{freq:.1f}",
            f"{model_gops:.1f}", f"{sim_gops:.1f}", f"{error * 100:.2f}",
        )
    result.raw = {"labels": raw_labels, "model": raw_model, "simulated": raw_sim}
    mean_error = sum(errors) / len(errors)
    top_ties = estimates.count(max(estimates))
    result.metrics["mean_model_error"] = mean_error
    result.metrics["max_model_error"] = max(errors)
    result.metrics["top_estimate_ties"] = float(top_ties)
    result.note(
        f"paper: <2% average model error with the real clock; ours: "
        f"{mean_error * 100:.2f}% mean over {len(errors)} finalists."
    )
    result.note(
        f"paper: 6 designs share the top estimated throughput; ours: {top_ties} "
        "(ties broken by realized frequency, which is phase 2's purpose)."
    )
    return result


__all__ = ["run_fig7a_design_space", "run_fig7b_model_accuracy"]
