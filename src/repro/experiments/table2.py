"""Table 2 — end-to-end comparison with prior FPGA CNN accelerators.

The literature rows are published constants (they cannot be re-measured
here); the three "ours" rows are regenerated with this reproduction's
DSE + simulator:

* AlexNet float32, VGG float32, VGG fixed 8/16-bit;
* latency/image = conv latency (performance simulator, all groups,
  folded conv1) + FC latency (FC layers are weight-bound: weights stream
  once per batch, so FC time/image = weight bytes / (bandwidth x batch);
  the paper converts FC to conv and batches it per Caffeine — we use the
  same model with a batch of 8, see DESIGN.md);
* throughput = total effective ops / latency.

Reproduction targets are the *relationships*: ours-float beats every
non-Winograd float design; [17] (Winograd) and [26] (hand-tuned RTL)
remain faster, as the paper concedes; fixed beats float by ~2-2.5x;
AlexNet latency is an order of magnitude below VGG's.
"""

from __future__ import annotations

from repro.baselines.literature import LITERATURE_ROWS, PAPER_OURS_ROWS
from repro.model.design_point import DesignPoint
from repro.model.platform import Platform
from repro.hw.datatype import FIXED_8_16, FLOAT32
from repro.sim.perf import simulate_performance
from repro.experiments.common import ExperimentResult
from repro.experiments.networks import network_by_name, unified_design

FC_BATCH = 8
"""Images sharing one FC weight load (Caffeine-style batching)."""


def fc_latency_seconds(network_name: str, platform: Platform, *, batch: int = FC_BATCH) -> float:
    """Per-image latency of the FC layers: weight-transfer bound."""
    network = network_by_name(network_name)
    weight_bytes = sum(
        fc.in_features * fc.out_features * platform.datatype.weight_bytes
        for fc in network.fc_layers
    )
    return weight_bytes / platform.memory.total_bytes_per_second / batch


def _ours_row(network_name: str, *, fixed_point: bool, fast: bool):
    """(label, freq, dsp%, bram%, latency_ms, gops) for one ours-row."""
    datatype = FIXED_8_16 if fixed_point else FLOAT32
    platform = Platform(datatype=datatype)
    ml, workloads = unified_design(network_name, fixed_point=fixed_point, fast=fast)
    middle_of = {l.name: l.middle for l in ml.layers}
    conv_seconds = 0.0
    conv_ops = 0.0
    for w in workloads:
        design = DesignPoint.create(w.nest, ml.config.mapping, ml.config.shape, middle_of[w.name])
        measurement = simulate_performance(design, platform, frequency_mhz=ml.frequency_mhz)
        conv_seconds += w.multiplicity * measurement.seconds
        conv_ops += w.effective_ops
    fc_seconds = fc_latency_seconds(network_name, platform)
    network = network_by_name(network_name)
    fc_ops = sum(fc.flops for fc in network.fc_layers)
    latency = conv_seconds + fc_seconds
    throughput = (conv_ops + fc_ops) / latency / 1e9
    return ml, latency, throughput


def run_table2_comparison(*, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 2 with our measured rows next to the published ones."""
    result = ExperimentResult(
        name="Table 2",
        description="End-to-end comparison with prior FPGA CNN accelerators",
        headers=["design", "FPGA", "MHz", "CNN", "precision",
                 "DSP%", "BRAM%", "ms/image", "Gops", "source"],
    )
    for row in LITERATURE_ROWS:
        result.add_row(
            row.label, row.fpga, f"{row.frequency_mhz:.0f}", row.cnn, row.precision,
            f"{row.dsp_pct:.0%}" if row.dsp_pct else "-",
            f"{row.bram_pct:.0%}" if row.bram_pct else "-",
            f"{row.latency_ms:.2f}", f"{row.throughput_gops:.1f}", "literature",
        )
    for row in PAPER_OURS_ROWS:
        result.add_row(
            row.label, row.fpga, f"{row.frequency_mhz:.1f}", row.cnn, row.precision,
            f"{row.dsp_pct:.0%}", f"{row.bram_pct:.0%}",
            f"{row.latency_ms:.2f}", f"{row.throughput_gops:.1f}", "paper",
        )

    specs = [
        ("Ours AlexNet float", "alexnet", False),
        ("Ours VGG float", "vgg16", False),
        ("Ours VGG fixed", "vgg16", True),
    ]
    for label, network_name, fixed in specs:
        ml, latency, throughput = _ours_row(network_name, fixed_point=fixed, fast=fast)
        cnn = "AlexNet" if network_name == "alexnet" else "VGG"
        precision = "fixed 8-16b" if fixed else "float 32b"
        result.add_row(
            label, "Arria10 GT1150 (sim)", f"{ml.frequency_mhz:.1f}", cnn, precision,
            f"{ml.dsp_utilization:.0%}", f"{ml.bram_utilization:.0%}",
            f"{latency * 1e3:.2f}", f"{throughput:.1f}", "ours",
        )
        key = label.lower().replace(" ", "_")
        result.metrics[f"{key}_latency_ms"] = latency * 1e3
        result.metrics[f"{key}_gops"] = throughput
        result.metrics[f"{key}_freq"] = ml.frequency_mhz
    result.note(
        "ours rows use the frequency surrogate and the performance simulator "
        "(see DESIGN.md); targets are the cross-design relationships, not "
        "silicon-exact numbers."
    )
    result.note(
        "the paper's Table 2 'Throughput' column is not exactly ops/latency "
        "for its own rows (460.5 Gops x 54.12 ms != VGG's 30.7 GFlop); we "
        "report total effective ops / latency."
    )
    return result


__all__ = ["FC_BATCH", "fc_latency_seconds", "run_table2_comparison"]
