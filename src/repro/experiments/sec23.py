"""Section 2.3's data-reuse example — the tiling quality anchor.

The paper, on sys1 (11, 13, 8) at 280 MHz:

* proper tiling Tile(I,O,R,C,P,Q) = (4,4,13,1,3,3) achieves the
  ~621 GFlops peak within the 19 GB/s board bandwidth;
* naive tiling (2,2,2,2,2,2) "require[s] around 67 GB/s memory bandwidth
  to achieve the peak throughput" and "we only get 162 GFlops".

Our model reproduces all three numbers (the 162 GFlops appears as the
quantization-derated compute bound of the bad tiling; see EXPERIMENTS.md
for the interpretation).
"""

from __future__ import annotations

from repro.ir.loop import conv_loop_nest
from repro.ir.tiling import LoopTiling, TiledLoopNest
from repro.model.performance import estimate_performance
from repro.model.platform import Platform
from repro.experiments.common import ExperimentResult

GOOD_TILING = {"i": 4, "o": 4, "r": 13, "c": 1, "p": 3, "q": 3}
BAD_TILING = {"i": 2, "o": 2, "r": 2, "c": 2, "p": 2, "q": 2}
SYS1_INNER = {"o": 11, "c": 13, "i": 8}


def run_section23_tiling_example(platform: Platform | None = None) -> ExperimentResult:
    """Regenerate the Section 2.3 worked example."""
    platform = platform or Platform()
    nest = conv_loop_nest(128, 192, 13, 13, 3, 3, name="alexnet_conv5")
    result = ExperimentResult(
        name="Section 2.3",
        description="Data-reuse strategy example on sys1 (11,13,8) @ 280 MHz, 19.2 GB/s",
        headers=["tiling", "PT GFlops", "MT GFlops", "T GFlops",
                 "BW demand GB/s", "bound", "source"],
    )
    result.add_row("good (4,4,13,1,3,3)", "~621", "-", "~621", "<19", "compute", "paper")
    result.add_row("bad  (2,2,2,2,2,2)", "162", "-", "162 measured", "~67", "memory", "paper")

    for label, middle in (("good (4,4,13,1,3,3)", GOOD_TILING), ("bad  (2,2,2,2,2,2)", BAD_TILING)):
        tiled = TiledLoopNest(nest, LoopTiling.of(middle, SYS1_INNER))
        est = estimate_performance(tiled, platform)
        result.add_row(
            label, f"{est.pt_gops:.1f}", f"{est.mt_gops:.1f}",
            f"{est.throughput_gops:.1f}", f"{est.bandwidth_demand_gbs:.1f}",
            est.bound, "ours",
        )
        key = "good" if "good" in label else "bad"
        result.metrics[f"{key}_pt_gflops"] = est.pt_gops
        result.metrics[f"{key}_throughput_gflops"] = est.throughput_gops
        result.metrics[f"{key}_bw_demand_gbs"] = est.bandwidth_demand_gbs
    result.note(
        "the paper's 'we only get 162 GFlops' equals the bad tiling's "
        "quantization-derated compute bound PT to three digits; the closed-form "
        "memory bound is tighter still (~46 GFlops) — either way the design is "
        "4-14x below peak, which is the example's point."
    )
    return result


__all__ = ["BAD_TILING", "GOOD_TILING", "run_section23_tiling_example"]
