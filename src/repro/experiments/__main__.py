"""``python -m repro.experiments`` — regenerate every paper exhibit."""

import sys

from repro.experiments.report_all import main

sys.exit(main())
