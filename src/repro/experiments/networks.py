"""Shared (memoized) unified-design runs for the network-level exhibits.

Tables 2–5 and Fig. 7 all consume the same two expensive computations —
the unified AlexNet and VGG designs — so they are computed once per
(network, datatype, settings) key and cached for the process lifetime.
On top of the in-process memo, runs go through the pipeline's persistent
content-addressed stage cache (:mod:`repro.pipeline.cache`), so repeated
experiment and benchmark invocations across processes skip the DSE
entirely (set ``$REPRO_SYSTOLIC_CACHE_DIR`` to relocate it, or pass
``cache=None`` to opt out).
"""

from __future__ import annotations

from repro.hw.datatype import FIXED_8_16, FLOAT32
from repro.model.platform import Platform
from repro.nn.models import Network, alexnet, vgg16
from repro.dse.explore import DseConfig
from repro.dse.multi_layer import (
    LayerWorkload,
    MultiLayerResult,
    prepare_network_nests,
)

_CACHE: dict[tuple, tuple[MultiLayerResult, tuple[LayerWorkload, ...]]] = {}


def paper_dse_config(*, fast: bool = False) -> DseConfig:
    """The exploration settings of the paper's evaluation: c_s = 80%,
    SIMD vector 8 (both published designs use 8), top-14 finalists."""
    return DseConfig(
        min_dsp_utilization=0.8,
        vector_choices=(8,),
        top_n=4 if fast else 14,
    )


def network_by_name(name: str) -> Network:
    if name == "alexnet":
        return alexnet()
    if name == "vgg16":
        return vgg16()
    raise KeyError(f"unknown evaluation network {name!r}")


def unified_design(
    name: str,
    *,
    fixed_point: bool = False,
    fast: bool = False,
    platform: Platform | None = None,
    jobs: int = 1,
    cache: bool | str | None = True,
) -> tuple[MultiLayerResult, tuple[LayerWorkload, ...]]:
    """Memoized unified-design DSE for one evaluation network.

    Args:
        name: "alexnet" or "vgg16".
        fixed_point: use the 8/16-bit datatype instead of float32.
        fast: smaller finalist count (for tests).
        platform: override platform (bypasses the in-process memo).
        jobs: DSE worker processes (result is identical for any value).
        cache: persistent stage cache (default: the shared directory);
            ``None`` disables it.

    Returns:
        (DSE result, prepared workloads).
    """
    from repro.pipeline.unified import run_unified_dse

    key = (name, fixed_point, fast, platform is None)
    if platform is None and key in _CACHE:
        return _CACHE[key]
    datatype = FIXED_8_16 if fixed_point else FLOAT32
    plat = platform or Platform(datatype=datatype)
    network = network_by_name(name)
    workloads = prepare_network_nests(network)
    result = run_unified_dse(
        workloads, plat, paper_dse_config(fast=fast), jobs=jobs, cache=cache
    )
    if platform is None:
        _CACHE[key] = (result, workloads)
    return result, workloads


__all__ = ["network_by_name", "paper_dse_config", "unified_design"]
