"""Experiment drivers — one per table/figure of the paper's evaluation.

Each ``run_*`` function regenerates the data behind one exhibit and
returns an :class:`~repro.experiments.common.ExperimentResult` holding
paper-reported values next to this reproduction's measured values.  The
``benchmarks/`` tree wraps these in pytest-benchmark targets, and
EXPERIMENTS.md records the outcomes.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.fig3 import run_fig3_schedule
from repro.experiments.fig7 import run_fig7a_design_space, run_fig7b_model_accuracy
from repro.experiments.pruning import run_section4_pruning
from repro.experiments.sec23 import run_section23_tiling_example
from repro.experiments.table1 import run_table1_shape_impact
from repro.experiments.table2 import run_table2_comparison
from repro.experiments.table3 import run_table3_configs
from repro.experiments.tables45 import run_table4_alexnet, run_table5_vgg

__all__ = [
    "ExperimentResult",
    "run_fig3_schedule",
    "run_fig7a_design_space",
    "run_fig7b_model_accuracy",
    "run_section23_tiling_example",
    "run_section4_pruning",
    "run_table1_shape_impact",
    "run_table2_comparison",
    "run_table3_configs",
    "run_table4_alexnet",
    "run_table5_vgg",
]
