"""Shared experiment plumbing: results container and formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.flow.report import format_table


@dataclass
class ExperimentResult:
    """One regenerated exhibit.

    Attributes:
        name: exhibit id, e.g. ``"Table 1"``.
        description: what the exhibit shows.
        headers: column names of the rows.
        rows: data rows (mix of paper-reported and measured values; the
            convention is a leading column naming the row and a trailing
            ``source`` column of ``paper`` / ``ours``).
        notes: free-form commentary (deviations, calibration remarks).
        metrics: scalar summary values (e.g. mean model error) used by
            asserting benches.
        raw: raw numeric series behind the exhibit (consumed by
            :mod:`repro.viz.figures` to render the SVG version; the
            formatted rows double as the figure's table view).
    """

    name: str
    description: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)
    raw: dict[str, Any] = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        """Append one data row."""
        self.rows.append(cells)

    def note(self, text: str) -> None:
        """Append a commentary note."""
        self.notes.append(text)

    def format(self) -> str:
        """Render the exhibit as text (table + notes + metrics)."""
        parts = [f"=== {self.name}: {self.description} ==="]
        parts.append(format_table(self.headers, self.rows))
        if self.metrics:
            parts.append("")
            for key, value in sorted(self.metrics.items()):
                parts.append(f"  {key}: {value:.4g}")
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference|."""
    if reference == 0:
        raise ValueError("reference value is zero")
    return abs(measured - reference) / abs(reference)


__all__ = ["ExperimentResult", "relative_error"]
