"""Section 4's pruning claims.

Three quantitative claims:

1. the Eq. 12 DSP-utilization bound (c_s = 80%) cuts the mapping space
   substantially (paper: 160K -> 64K for one AlexNet conv layer);
2. power-of-two tiling pruning shrinks the data-reuse search
   exponentially (paper: 17.5x average search-time saving on AlexNet);
3. phase 1 completes "in less than 30 seconds" where the unpruned brute
   force takes "roughly 311 hours".

Absolute sizes depend on enumeration conventions (the paper never
defines its shape grid), so the *ratios* and the wall-clock structure
are the reproduction targets.  The brute-force hours are estimated by
measuring the per-candidate evaluation cost on a sample and multiplying
by the exact unpruned space size — walking it for real is precisely what
the paper says is impractical.
"""

from __future__ import annotations

import time

from repro.ir.loop import conv_loop_nest
from repro.model.platform import Platform
from repro.dse.brute import brute_force_space_size
from repro.dse.explore import DseConfig, phase1
from repro.dse.space import count_design_space, enumerate_configs
from repro.dse.tuner import MiddleTuner, tuning_space_size
from repro.experiments.common import ExperimentResult


def _alexnet_conv5():
    return conv_loop_nest(128, 192, 13, 13, 3, 3, name="alexnet_conv5")


def run_section4_pruning(
    platform: Platform | None = None, *, fast: bool = False
) -> ExperimentResult:
    """Regenerate the Section 4 pruning measurements on AlexNet conv5."""
    platform = platform or Platform()
    nest = _alexnet_conv5()
    result = ExperimentResult(
        name="Section 4",
        description="Design-space pruning (AlexNet conv5, Arria 10, float32)",
        headers=["quantity", "paper", "ours"],
    )

    # --- claim 1: Eq. 12 mapping-space reduction -------------------------
    full_configs = count_design_space(nest, platform)
    pruned_configs = count_design_space(nest, platform, min_dsp_utilization=0.8)
    result.add_row("mapping space (full)", "160K", f"{full_configs:,}")
    result.add_row("mapping space (c_s=80%)", "64K", f"{pruned_configs:,}")
    result.add_row(
        "Eq.12 reduction", f"{160/64:.1f}x", f"{full_configs / pruned_configs:.1f}x"
    )
    result.metrics["config_reduction"] = full_configs / pruned_configs

    # --- claim 2: power-of-two tiling pruning ----------------------------
    sample = list(
        enumerate_configs(nest, platform, min_dsp_utilization=0.8, vector_choices=(8,))
    )
    step = max(1, len(sample) // (8 if fast else 40))
    ratios = []
    for config in sample[::step]:
        tuner = MiddleTuner(nest, config.mapping, config.shape, platform)
        full = tuning_space_size(
            nest,
            {
                config.mapping.row: config.shape.rows,
                config.mapping.col: config.shape.cols,
                config.mapping.vector: config.shape.vector,
            },
        )
        ratios.append(full / tuner.pruned_space_size())
    tiling_ratio = sum(ratios) / len(ratios)
    result.add_row("tiling-space saving (avg)", "17.5x", f"{tiling_ratio:.1f}x")
    result.metrics["tiling_reduction"] = tiling_ratio

    # --- claim 3: phase-1 seconds vs brute-force hours -------------------
    p1 = phase1(nest, platform, DseConfig(top_n=4 if fast else 14))
    result.add_row("phase-1 time", "< 30 s", f"{p1.elapsed_seconds:.2f} s")
    result.metrics["phase1_seconds"] = p1.elapsed_seconds

    # per-candidate cost measured on a real tuner walk
    probe = MiddleTuner(nest, sample[0].mapping, sample[0].shape, platform)
    start = time.perf_counter()
    tuned = probe.tune()
    per_candidate = (time.perf_counter() - start) / tuned.candidates_evaluated
    full_space = brute_force_space_size(nest, platform)
    brute_hours = full_space * per_candidate / 3600
    result.add_row(
        "brute-force estimate",
        "~311 h (Xeon E5-2667)",
        f"~{brute_hours:,.0f} h ({full_space:,} candidates x {per_candidate * 1e6:.1f} us)",
    )
    result.add_row(
        "speedup", f"{311 * 3600 / 30:,.0f}x+",
        f"{brute_hours * 3600 / max(p1.elapsed_seconds, 1e-9):,.0f}x",
    )
    result.metrics["brute_force_hours"] = brute_hours
    result.metrics["speedup"] = brute_hours * 3600 / max(p1.elapsed_seconds, 1e-9)
    result.note(
        "absolute space sizes depend on enumeration conventions the paper "
        "does not specify; the reproduction targets are the reduction ratios "
        "and the seconds-vs-hundreds-of-hours structure."
    )
    return result


__all__ = ["run_section4_pruning"]
