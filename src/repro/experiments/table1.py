"""Table 1 — impact of systolic array shape on performance.

The paper compares two shapes for AlexNet conv5, both mapping
(L1, L3, L2) -> (row, col, vector) at 280 MHz against a 1600-DSP budget:

====  ==========  =========  ========  ===========
sys   shape       DSP util   DSP eff   peak thrpt
====  ==========  =========  ========  ===========
sys1  (11,13,8)   71.5%      96.97%    621 GFlops
sys2  (16,10,8)   80.0%      60.00%*   466 GFlops
====  ==========  =========  ========  ===========

(*) 60.00% is inconsistent with the printed 466 GFlops, which implies
65.00% = 13/20; we report the model's 65.00% and flag the discrepancy.
"""

from __future__ import annotations

from repro.ir.loop import conv_loop_nest
from repro.ir.tiling import LoopTiling, TiledLoopNest
from repro.model.platform import Platform
from repro.model.resources import dsp_usage
from repro.experiments.common import ExperimentResult

PAPER_ROWS = {
    "sys1": {"shape": (11, 13, 8), "dsp_util": 0.715, "dsp_eff": 0.9697, "peak": 621.0},
    "sys2": {"shape": (16, 10, 8), "dsp_util": 0.800, "dsp_eff": 0.6000, "peak": 466.0},
}


def run_table1_shape_impact(platform: Platform | None = None) -> ExperimentResult:
    """Regenerate Table 1 with the analytical model."""
    platform = platform or Platform(dsp_total_override=1600)
    nest = conv_loop_nest(128, 192, 13, 13, 3, 3, name="alexnet_conv5")
    result = ExperimentResult(
        name="Table 1",
        description="Impact of systolic array shape (AlexNet conv5, 280 MHz, 1600 DSPs)",
        headers=["config", "shape", "DSP util", "DSP eff", "peak GFlops", "source"],
    )
    for label, paper in PAPER_ROWS.items():
        rows, cols, vec = paper["shape"]
        tiled = TiledLoopNest(nest, LoopTiling.of(None, {"o": rows, "c": cols, "i": vec}))
        eff = tiled.efficiency
        util = dsp_usage(rows, cols, vec, platform) / platform.dsp_total
        peak = eff * 2 * rows * cols * vec * platform.assumed_clock_mhz * 1e6 / 1e9
        result.add_row(
            label, f"({rows},{cols},{vec})", f"{paper['dsp_util']:.1%}",
            f"{paper['dsp_eff']:.2%}", f"{paper['peak']:.0f}", "paper",
        )
        result.add_row(
            label, f"({rows},{cols},{vec})", f"{util:.1%}", f"{eff:.2%}",
            f"{peak:.1f}", "ours",
        )
        result.metrics[f"{label}_eff"] = eff
        result.metrics[f"{label}_peak_gflops"] = peak
        result.metrics[f"{label}_dsp_util"] = util
    result.note(
        "sys2: the paper prints DSP eff 60.00% but peak 466 GFlops implies "
        "65.00% (= 13/20); the model reproduces the throughput column exactly "
        "and we attribute the 60.00% to a typo."
    )
    return result


__all__ = ["PAPER_ROWS", "run_table1_shape_impact"]
