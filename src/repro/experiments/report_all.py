"""Regenerate every paper exhibit in one run.

Usage::

    python -m repro.experiments               # full scale (~10 min)
    python -m repro.experiments --fast        # reduced scale (~1 min)
    python -m repro.experiments -o report.txt

Runs all table/figure drivers in paper order and emits one combined
report.  The per-exhibit pytest-benchmark targets under ``benchmarks/``
additionally *assert* each exhibit's reproduction targets; this module is
the convenience front end for reading everything at once.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments.common import ExperimentResult
from repro.experiments.fig3 import run_fig3_schedule
from repro.experiments.fig7 import run_fig7a_design_space, run_fig7b_model_accuracy
from repro.experiments.pruning import run_section4_pruning
from repro.experiments.sec23 import run_section23_tiling_example
from repro.experiments.table1 import run_table1_shape_impact
from repro.experiments.table2 import run_table2_comparison
from repro.experiments.table3 import run_table3_configs
from repro.experiments.tables45 import run_table4_alexnet, run_table5_vgg


def all_drivers(*, fast: bool) -> list[tuple[str, Callable[[], ExperimentResult]]]:
    """(label, zero-arg driver) pairs in paper order."""
    return [
        ("Table 1", run_table1_shape_impact),
        ("Section 2.3", run_section23_tiling_example),
        ("Figure 3", run_fig3_schedule),
        ("Section 4", lambda: run_section4_pruning(fast=fast)),
        ("Figure 7(a)", lambda: run_fig7a_design_space(fast=fast)),
        ("Figure 7(b)", lambda: run_fig7b_model_accuracy(fast=fast)),
        ("Table 3", lambda: run_table3_configs(fast=fast)),
        ("Table 4", lambda: run_table4_alexnet(fast=fast)),
        ("Table 5", lambda: run_table5_vgg(fast=fast)),
        ("Table 2", lambda: run_table2_comparison(fast=fast)),
    ]


def generate_report(*, fast: bool = False, echo: bool = True) -> str:
    """Run every driver; return (and optionally stream) the combined text."""
    sections = []
    header = (
        "Reproduction report — Wei et al., 'Automated Systolic Array "
        "Architecture Synthesis for High Throughput CNN Inference on "
        f"FPGAs' (DAC 2017){' — FAST MODE' if fast else ''}"
    )
    sections.append(header)
    sections.append("=" * min(len(header), 78))
    for label, driver in all_drivers(fast=fast):
        start = time.perf_counter()
        result = driver()
        elapsed = time.perf_counter() - start
        block = result.format() + f"\n  [{label} regenerated in {elapsed:.1f} s]"
        sections.append(block)
        if echo:
            print(block, flush=True)
            print()
    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument("--fast", action="store_true", help="reduced search scale")
    parser.add_argument("-o", "--output", help="also write the report to a file")
    args = parser.parse_args(argv)
    report = generate_report(fast=args.fast)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = ["all_drivers", "generate_report", "main"]
