"""Tables 4 and 5 — per-layer throughput and DSP efficiency.

Under the unified design, the paper measures each conv layer on the
board.  The structural facts to reproduce:

* middle layers run near peak efficiency (AlexNet conv3-5: 81-90%;
  VGG conv3-13: ~97%);
* the first layers are far below peak — AlexNet conv1 (folded, 11x11
  kernel) at 18.5%, VGG conv1 (3 input channels) at 36.4% — because
  their shapes mismatch the unified array and, for AlexNet conv1, the
  chosen reuse strategy leaves it memory-bound;
* VGG's aggregate beats AlexNet's thanks to its regular shape.

Our numbers come from the performance simulator at the realized clock
(the "board" of this reproduction).  Paper throughput rows are as
printed (Table 4's throughput row is partly OCR-damaged in our source;
the values below are reconstructed from the intact efficiency row and
flagged).
"""

from __future__ import annotations

from repro.model.design_point import DesignPoint
from repro.model.platform import Platform
from repro.sim.perf import simulate_performance
from repro.experiments.common import ExperimentResult
from repro.experiments.networks import unified_design

PAPER_TABLE4 = {
    # layer: (throughput GFlops, DSP efficiency %)
    "conv1": (102.5, 18.51),
    "conv2": (225.0, 33.70),
    "conv3": (541.7, 81.03),
    "conv4": (541.6, 81.03),
    "conv5": (610.0, 90.00),
    "avg": (406.1, 40.32),
}

PAPER_TABLE5 = {
    "conv1": (223.86, 36.36),
    "conv2": (450.11, 72.73),
    "conv3": (600.27, 96.97),
    "conv4": (601.69, 96.97),
    "conv5": (601.57, 96.97),
    "conv6": (602.44, 96.97),
    "conv7": (602.44, 96.97),
    "conv8": (602.42, 96.97),
    "conv9": (602.83, 96.97),
    "conv10": (602.83, 96.97),
    "conv11": (602.49, 96.97),
    "conv12": (602.49, 96.97),
    "conv13": (602.49, 96.97),
    "avg": (561.38, None),
}


def _per_layer_rows(name: str, paper_rows, *, fast: bool) -> ExperimentResult:
    ml, workloads = unified_design(name, fast=fast)
    platform = Platform()
    result = ExperimentResult(
        name="Table 4" if name == "alexnet" else "Table 5",
        description=f"Per-layer throughput / DSP efficiency of the unified "
        f"{name} design ({ml.config.shape} @ {ml.frequency_mhz:.1f} MHz)",
        headers=["layer", "paper GFlops", "paper eff %", "ours GFlops", "ours eff %", "bound"],
    )
    middle_of = {l.name: l.middle for l in ml.layers}
    peak = 2.0 * ml.config.shape.lanes * ml.frequency_mhz * 1e6
    total_ops = 0.0
    total_seconds = 0.0
    for w in workloads:
        design = DesignPoint.create(
            w.nest, ml.config.mapping, ml.config.shape, middle_of[w.name]
        )
        measurement = simulate_performance(
            design, platform, frequency_mhz=ml.frequency_mhz, streaming=True
        )
        seconds = w.multiplicity * measurement.seconds
        gops = w.effective_ops / seconds / 1e9
        eff = (w.effective_ops / seconds) / peak
        paper_gops, paper_eff = paper_rows[w.name]
        result.add_row(
            w.name, f"{paper_gops:.1f}", f"{paper_eff:.2f}",
            f"{gops:.1f}", f"{eff * 100:.2f}", measurement.bound,
        )
        result.metrics[f"{w.name}_gops"] = gops
        result.metrics[f"{w.name}_eff"] = eff
        total_ops += w.effective_ops
        total_seconds += seconds
    aggregate = total_ops / total_seconds / 1e9
    paper_avg, paper_avg_eff = paper_rows["avg"]
    result.add_row(
        "avg", f"{paper_avg:.1f}",
        f"{paper_avg_eff:.2f}" if paper_avg_eff else "-",
        f"{aggregate:.1f}",
        f"{(total_ops / total_seconds) / peak * 100:.2f}",
        "-",
    )
    result.metrics["aggregate_gops"] = aggregate
    return result


def run_table4_alexnet(*, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 4 (AlexNet conv1-5)."""
    result = _per_layer_rows("alexnet", PAPER_TABLE4, fast=fast)
    result.note(
        "paper throughput row reconstructed from the efficiency row (OCR "
        "damage in our source); conv1 runs folded (11x11 stride 4 -> 48ch "
        "3x3), whose ~19% zero-weight MACs depress its efficiency here as "
        "in the paper."
    )
    result.note(
        "ours is more uniform across conv3-5 than the paper because our "
        "runtime reuse strategy adapts per layer within the fixed buffers; "
        "the paper's single shared strategy penalizes conv1 harder (its "
        "conv1 is also memory-bound)."
    )
    return result


def run_table5_vgg(*, fast: bool = False) -> ExperimentResult:
    """Regenerate Table 5 (VGG16 conv1-13)."""
    result = _per_layer_rows("vgg16", PAPER_TABLE5, fast=fast)
    result.note(
        "structural targets: conv1 far below the rest (3 input channels "
        "vs a vector of 8 -> <=37.5% efficiency ceiling), deep layers "
        "near-uniform and near-peak, aggregate above AlexNet's."
    )
    return result


__all__ = ["PAPER_TABLE4", "PAPER_TABLE5", "run_table4_alexnet", "run_table5_vgg"]
