"""Differential conformance: every estimate of the array must agree.

The paper validates its claims with three independent views of the same
computation — the analytical performance model, a cycle-level simulation
and on-board measurement.  This package is the reproduction's equivalent
court of appeal: :func:`cross_check` runs a design point through every
oracle the repository has and demands that they agree,

* **fast vs. engine** — the vectorized wavefront simulator
  (:mod:`repro.sim.fast`) must reproduce the cycle-accurate engine's
  :class:`~repro.sim.engine.EngineResult` *bit-for-bit* (small problems
  only; the engine is exponential by construction);
* **fast vs. golden** — the simulated output tensor must match an
  independent NumPy evaluation of the loop nest (and, for conv layers,
  the golden convolution) within a documented floating-point tolerance;
* **cycles vs. model** — the simulator's emergent cycle counters must
  equal the closed-form analytical counts (Eq. 5 block domain under
  clipped middles) exactly, fill/drain overhead included.

Disagreements are reported as structured ``SA4xx`` diagnostics in the
:mod:`repro.analysis` format, so the ``systolic-synth verify`` CLI and
the pipeline's differential ``--sim-backend both`` mode fail loudly and
machine-readably.  See ``docs/simulation.md`` for the conformance matrix
and tolerance policy.
"""

from repro.verify.conformance import (
    DEFAULT_ENGINE_ITERATION_LIMIT,
    DEFAULT_REL_TOL,
    ConformanceReport,
    LegResult,
    cross_check,
    golden_nest_output,
    synthetic_arrays,
)

__all__ = [
    "ConformanceReport",
    "DEFAULT_ENGINE_ITERATION_LIMIT",
    "DEFAULT_REL_TOL",
    "LegResult",
    "cross_check",
    "golden_nest_output",
    "synthetic_arrays",
]
