"""The differential-conformance harness behind :func:`cross_check`.

Each *leg* of the conformance matrix compares two independent estimates
of the same quantity and yields a :class:`LegResult`; disagreements also
emit an ``SA4xx`` diagnostic into an :class:`repro.analysis.AnalysisReport`
so callers get both a human summary and a machine-readable verdict.

Tolerance policy (documented in ``docs/simulation.md``):

* fast vs. engine — **bit-exact**: equal output bytes, equal counters.
  Both simulators perform the identical sequence of IEEE double
  operations, so any difference is a bug, not rounding.
* output vs. golden — relative tolerance ``rel_tol`` (default 1e-9).
  The golden evaluations sum in a different order (einsum / flat index
  chunks), so last-ulp drift is legitimate; the observed gap on real
  layers is ~1e-11.  Golden references are computed in float64 even for
  float32 tensors — the simulators accumulate in double precision, and
  comparing against a float32 accumulation would measure the *oracle's*
  rounding, not the simulator's.
* cycles vs. model — **exact**: under clipped-middle semantics the
  closed form ``waves = prod ceil(N_l / t_l)``,
  ``compute = waves + blocks * (R + C - 2)`` is not an approximation,
  and the pipeline fill/drain term is the only allowed gap between the
  simulator's count and the Eq. 5 ideal ``executed / lanes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.diagnostics import (
    RTL_CYCLE_DIVERGENCE,
    RTL_OUTPUT_MISMATCH,
    RTL_TOOLCHAIN_MISSING,
    RTL_UNSUPPORTED_DESIGN,
    VERIFY_CYCLE_MODEL_MISMATCH,
    VERIFY_ENGINE_MISMATCH,
    VERIFY_GOLDEN_MISMATCH,
    VERIFY_LEG_SKIPPED,
    AnalysisReport,
    DiagnosticError,
    Severity,
)
from repro.ir.loop import LoopNest
from repro.model.design_point import DesignPoint
from repro.sim.engine import EngineResult, SystolicArrayEngine
from repro.sim.fast import FastWavefrontSimulator, cycle_statistics
from repro.sim.rtl import DEFAULT_RTL_ITERATION_LIMIT

#: Cycle-accurate engine legs are skipped above this many iterations —
#: the engine is exponential in problem size by construction.
DEFAULT_ENGINE_ITERATION_LIMIT = 200_000

#: Relative tolerance for output-vs-golden legs (different but valid
#: floating-point summation orders).
DEFAULT_REL_TOL = 1e-9


def synthetic_arrays(
    nest: LoopNest, *, seed: int = 0, dtype: Any = np.float64
) -> dict[str, np.ndarray]:
    """Deterministic operand tensors sized from the nest's access ranges.

    Args:
        nest: the loop nest to feed.
        seed: RNG seed (same seed, same tensors — reports are replayable).
        dtype: element type of the generated tensors.
    """
    rng = np.random.default_rng(seed)
    arrays: dict[str, np.ndarray] = {}
    for access in nest.reads:
        shape = tuple(
            expr.value_range(nest.bounds)[1] + 1 for expr in access.indices
        )
        arrays[access.array] = rng.standard_normal(shape).astype(dtype)
    return arrays


def golden_nest_output(
    nest: LoopNest, arrays: dict[str, np.ndarray], *, chunk: int = 1 << 18
) -> np.ndarray:
    """Independent NumPy evaluation of the nest (no tiling, no schedule).

    Walks the original iteration space in flat chunks, gathers both read
    operands through their affine access functions and scatter-adds the
    products into the output — sharing *nothing* with the simulators
    except the nest itself, which is what makes it an oracle.
    """
    iterators = nest.iterators
    bounds = nest.bounds
    out_access = nest.output
    out_shape = tuple(expr.value_range(bounds)[1] + 1 for expr in out_access.indices)
    output = np.zeros(out_shape)

    strides: dict[str, int] = {}
    stride = 1
    for it in reversed(iterators):
        strides[it] = stride
        stride *= bounds[it]
    total = stride

    read_a, read_b = nest.reads

    def gather(access: Any, vals: dict[str, np.ndarray]) -> np.ndarray:
        dims = []
        for expr in access.indices:
            dim = np.full(len(next(iter(vals.values()))), expr.const, dtype=np.int64)
            for name, coeff in expr.terms:
                dim = dim + coeff * vals[name]
            dims.append(dim)
        return np.asarray(arrays[access.array][tuple(dims)], dtype=np.float64)

    for start in range(0, total, chunk):
        flat = np.arange(start, min(start + chunk, total), dtype=np.int64)
        vals = {it: (flat // strides[it]) % bounds[it] for it in iterators}
        products = gather(read_a, vals) * gather(read_b, vals)
        keys = []
        for expr in out_access.indices:
            key = np.full(len(flat), expr.const, dtype=np.int64)
            for name, coeff in expr.terms:
                key = key + coeff * vals[name]
            keys.append(key)
        np.add.at(output, tuple(keys), products)
    return output


@dataclass(frozen=True)
class LegResult:
    """Outcome of one conformance leg.

    Attributes:
        name: leg identifier, e.g. ``"fast-vs-engine"``.
        status: ``"ok"``, ``"mismatch"`` or ``"skipped"``.
        detail: one-line human explanation.
        metrics: (name, value) measurement pairs backing the verdict.
    """

    name: str
    status: str
    detail: str
    metrics: tuple[tuple[str, float], ...] = ()

    @property
    def ok(self) -> bool:
        return self.status != "mismatch"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "metrics": dict(self.metrics),
        }


@dataclass(frozen=True)
class ConformanceReport:
    """Everything :func:`cross_check` established about one design.

    Attributes:
        design_signature: the checked design's signature string.
        legs: per-leg verdicts, in execution order.
        report: ``SA4xx`` diagnostics (errors on mismatch, notes on
            skipped legs) in the shared :mod:`repro.analysis` format.
        result: the fast simulator's :class:`EngineResult` (the artifact
            every leg was checked against).
    """

    design_signature: str
    legs: tuple[LegResult, ...]
    report: AnalysisReport = field(compare=False)
    result: EngineResult = field(compare=False)

    @property
    def ok(self) -> bool:
        """True when every executed leg agreed (skipped legs allowed)."""
        return self.report.ok

    @property
    def exit_code(self) -> int:
        """Process exit convention: 0 all legs agree, 1 any mismatch."""
        return self.report.exit_code

    def leg(self, name: str) -> LegResult:
        """The leg with a given name (KeyError if the leg did not run)."""
        for leg in self.legs:
            if leg.name == name:
                return leg
        raise KeyError(f"no conformance leg named {name!r}")

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable summary (JSON-serializable)."""
        return {
            "design": self.design_signature,
            "ok": self.ok,
            "legs": [leg.to_dict() for leg in self.legs],
            "diagnostics": self.report.to_dict(),
        }

    def render(self) -> str:
        """Terminal rendering: the matrix, then any diagnostics."""
        lines = [f"conformance check: {self.design_signature}"]
        for leg in self.legs:
            lines.append(f"  {leg.name:<22} {leg.status:<9} {leg.detail}")
        if len(self.report):
            lines.append(self.report.render())
        else:
            lines.append("all conformance legs agree")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def cross_check(
    design: DesignPoint,
    layer: Any = None,
    *,
    arrays: dict[str, np.ndarray] | None = None,
    seed: int = 0,
    rel_tol: float = DEFAULT_REL_TOL,
    engine_iteration_limit: int = DEFAULT_ENGINE_ITERATION_LIMIT,
    rtl: bool = False,
    rtl_iteration_limit: int = DEFAULT_RTL_ITERATION_LIMIT,
    iverilog: str = "auto",
) -> ConformanceReport:
    """Run the full conformance matrix over one design point.

    Args:
        design: the design to check.
        layer: optional :class:`~repro.nn.layers.ConvLayer` whose
            per-group nest the design targets; adds a layer-level leg
            against the golden convolution (padding and groups included).
        arrays: operand tensors for the nest-level legs (synthetic,
            seeded tensors by default).
        seed: seed for the synthetic tensors.
        rel_tol: relative tolerance of the golden-output legs.
        engine_iteration_limit: skip the cycle-accurate engine leg above
            this iteration count (with an ``SA404`` note).
        rtl: additionally run the generated RTL through the netlist
            interpreter and hold it bit-identical to the fast simulator
            (``SA151``) and cycle-identical to the analytical model
            (``SA152``); when iverilog is on PATH the emitted Verilog is
            also executed natively and diffed against the interpreter.
        rtl_iteration_limit: skip the RTL legs above this iteration
            count (with an ``SA404`` note).
        iverilog: ``"auto"`` uses iverilog when available (an ``SA153``
            note records its absence), ``"require"`` turns absence into
            a mismatch, ``"off"`` skips the native leg.

    Returns:
        a :class:`ConformanceReport`; never raises on disagreement —
        call ``.report.raise_if_errors()`` for exception semantics.
    """
    nest = design.nest
    report = AnalysisReport()
    legs: list[LegResult] = []
    if arrays is None:
        arrays = synthetic_arrays(nest, seed=seed)

    fast_result = FastWavefrontSimulator(design).run(arrays)

    legs.append(_engine_leg(design, arrays, fast_result, engine_iteration_limit, report))
    legs.append(_golden_leg(nest, arrays, fast_result, rel_tol, report))
    legs.append(_cycle_model_leg(design, fast_result, report))
    if layer is not None:
        legs.append(_layer_leg(design, layer, seed, rel_tol, report))
    if rtl:
        legs.extend(
            _rtl_legs(design, arrays, fast_result, rtl_iteration_limit, iverilog, report)
        )

    return ConformanceReport(
        design_signature=design.signature,
        legs=tuple(legs),
        report=report,
        result=fast_result,
    )


# ----------------------------------------------------------------- legs


def _engine_leg(
    design: DesignPoint,
    arrays: dict[str, np.ndarray],
    fast_result: EngineResult,
    limit: int,
    report: AnalysisReport,
) -> LegResult:
    """Bit-exact differential identity against the cycle-accurate engine."""
    name = "fast-vs-engine"
    total = design.nest.total_iterations
    if total > limit:
        report.add(
            VERIFY_LEG_SKIPPED,
            Severity.NOTE,
            f"cycle-accurate engine leg skipped: {total} iterations exceed "
            f"the {limit}-iteration engine budget",
        )
        return LegResult(
            name, "skipped", f"{total} iterations > engine budget {limit}"
        )
    engine_result = SystolicArrayEngine(design).run(arrays)
    mismatches = []
    for counter in (
        "compute_cycles", "blocks", "waves", "pe_active_cycles", "first_all_active_cycle",
    ):
        got, want = getattr(fast_result, counter), getattr(engine_result, counter)
        if got != want:
            mismatches.append(f"{counter}: fast={got} engine={want}")
    bit_equal = (
        fast_result.output.shape == engine_result.output.shape
        and fast_result.output.tobytes() == engine_result.output.tobytes()
    )
    if not bit_equal:
        diff = int(np.sum(fast_result.output != engine_result.output))
        mismatches.append(f"output differs in {diff} element(s)")
    if mismatches:
        report.add(
            VERIFY_ENGINE_MISMATCH,
            Severity.ERROR,
            f"fast simulator disagrees with the engine on "
            f"{design.signature}: " + "; ".join(mismatches),
        )
        return LegResult(name, "mismatch", "; ".join(mismatches))
    return LegResult(
        name,
        "ok",
        f"bit-identical over {total} iterations",
        metrics=(("iterations", float(total)),),
    )


def _golden_leg(
    nest: LoopNest,
    arrays: dict[str, np.ndarray],
    fast_result: EngineResult,
    rel_tol: float,
    report: AnalysisReport,
) -> LegResult:
    """Simulated output vs. an independent NumPy evaluation of the nest."""
    name = "fast-vs-golden"
    golden = golden_nest_output(nest, arrays)
    sim = fast_result.output[tuple(slice(0, n) for n in golden.shape)]
    scale = max(1.0, float(np.max(np.abs(golden))))
    max_abs = float(np.max(np.abs(sim - golden))) if golden.size else 0.0
    max_rel = max_abs / scale
    metrics = (("max_abs_error", max_abs), ("max_rel_error", max_rel))
    if not np.allclose(sim, golden, rtol=rel_tol, atol=rel_tol * scale):
        report.add(
            VERIFY_GOLDEN_MISMATCH,
            Severity.ERROR,
            f"simulated output of {nest.name!r} deviates from the golden "
            f"model by {max_rel:.3e} (relative; tolerance {rel_tol:.1e})",
        )
        return LegResult(
            name, "mismatch", f"max relative error {max_rel:.3e}", metrics
        )
    return LegResult(name, "ok", f"max relative error {max_rel:.3e}", metrics)


def _cycle_model_leg(
    design: DesignPoint, fast_result: EngineResult, report: AnalysisReport
) -> LegResult:
    """Emergent cycle counters vs. the closed-form analytical model."""
    name = "cycles-vs-model"
    stats = cycle_statistics(design)
    mismatches = []
    for counter in (
        "blocks", "waves", "compute_cycles", "pe_active_cycles", "first_all_active_cycle",
    ):
        got, want = getattr(fast_result, counter), getattr(stats, counter)
        if got != want:
            mismatches.append(f"{counter}: simulated={got} model={want}")
    # Eq. 5 ideal: executed iterations / lanes; the fill/drain term is
    # the only legitimate gap between ideal and simulated cycles.
    ideal = design.tiled.executed_iterations_clipped // design.shape.lanes
    fill = stats.blocks * (design.shape.rows + design.shape.cols - 2)
    if fast_result.compute_cycles - ideal != fill:
        mismatches.append(
            f"fill overhead: simulated-ideal={fast_result.compute_cycles - ideal} "
            f"expected={fill}"
        )
    metrics = (
        ("ideal_cycles", float(ideal)),
        ("fill_overhead_cycles", float(fill)),
        ("fill_overhead_fraction", fill / ideal if ideal else 0.0),
    )
    if mismatches:
        report.add(
            VERIFY_CYCLE_MODEL_MISMATCH,
            Severity.ERROR,
            f"cycle counters of {design.signature} deviate from the "
            f"analytical model: " + "; ".join(mismatches),
        )
        return LegResult(name, "mismatch", "; ".join(mismatches), metrics)
    return LegResult(
        name, "ok", f"exact (+{fill} fill/drain cycles over Eq. 5 ideal)", metrics
    )


def _layer_leg(
    design: DesignPoint,
    layer: Any,
    seed: int,
    rel_tol: float,
    report: AnalysisReport,
) -> LegResult:
    """Full layer (padding + groups) vs. the golden convolution."""
    from repro.nn.golden import conv2d_layer, random_layer_tensors
    from repro.sim.functional import simulate_layer

    name = "layer-vs-conv-golden"
    inputs, weights = random_layer_tensors(layer, seed=seed)
    sim = simulate_layer(design, layer, inputs, weights, backend="fast")
    golden = conv2d_layer(
        layer, inputs.astype(np.float64), weights.astype(np.float64)
    )
    scale = max(1.0, float(np.max(np.abs(golden))))
    max_abs = float(np.max(np.abs(sim - golden)))
    max_rel = max_abs / scale
    metrics = (("max_abs_error", max_abs), ("max_rel_error", max_rel))
    if not np.allclose(sim, golden, rtol=rel_tol, atol=rel_tol * scale):
        report.add(
            VERIFY_GOLDEN_MISMATCH,
            Severity.ERROR,
            f"layer {layer.name!r} simulated under {design.signature} "
            f"deviates from the golden convolution by {max_rel:.3e} "
            f"(relative; tolerance {rel_tol:.1e})",
        )
        return LegResult(
            name, "mismatch", f"max relative error {max_rel:.3e}", metrics
        )
    return LegResult(name, "ok", f"max relative error {max_rel:.3e}", metrics)


def _rtl_legs(
    design: DesignPoint,
    arrays: dict[str, np.ndarray],
    fast_result: EngineResult,
    limit: int,
    iverilog: str,
    report: AnalysisReport,
) -> list[LegResult]:
    """The RTL conformance legs: interpreter identity + native cross-check.

    Degradation ladder (mirroring the testbench SA5xx policy): a design
    the RTL backend cannot lower skips all legs with an ``SA150`` note;
    an oversized design skips with an ``SA404`` note; a missing iverilog
    skips only the native leg with an ``SA153`` note (or fails it when
    ``iverilog="require"``).
    """
    from repro.sim.rtl import (
        RtlSimulator,
        RtlToolchainUnavailable,
        iverilog_available,
        run_iverilog_check,
    )

    names = ("rtl-vs-fast", "rtl-cycles-vs-model", "rtl-vs-iverilog")
    total = design.nest.total_iterations
    if total > limit:
        report.add(
            VERIFY_LEG_SKIPPED,
            Severity.NOTE,
            f"RTL legs skipped: {total} iterations exceed the "
            f"{limit}-iteration RTL interpreter budget",
        )
        detail = f"{total} iterations > RTL budget {limit}"
        return [LegResult(name, "skipped", detail) for name in names]

    try:
        sim = RtlSimulator(design)
    except DiagnosticError as exc:
        first = exc.diagnostics[0]
        report.add(
            RTL_UNSUPPORTED_DESIGN,
            Severity.NOTE,
            f"RTL legs skipped: {first.message}",
        )
        return [LegResult(name, "skipped", first.message) for name in names]

    legs: list[LegResult] = []
    rtl_run = sim.run(arrays)
    rtl_result = rtl_run.result

    # Leg: RTL interpreter vs. fast simulator — bit-exact.
    mismatches = []
    bit_equal = (
        fast_result.output.shape == rtl_result.output.shape
        and fast_result.output.tobytes() == rtl_result.output.tobytes()
    )
    if not bit_equal:
        diff = int(np.sum(fast_result.output != rtl_result.output))
        mismatches.append(f"output differs in {diff} element(s)")
    if fast_result.pe_active_cycles != rtl_result.pe_active_cycles:
        mismatches.append(
            f"pe_active_cycles: fast={fast_result.pe_active_cycles} "
            f"rtl={rtl_result.pe_active_cycles}"
        )
    if mismatches:
        report.add(
            RTL_OUTPUT_MISMATCH,
            Severity.ERROR,
            f"RTL simulation of {design.signature} diverges from the fast "
            f"simulator: " + "; ".join(mismatches),
        )
        legs.append(LegResult(names[0], "mismatch", "; ".join(mismatches)))
    else:
        legs.append(
            LegResult(
                names[0],
                "ok",
                f"bit-identical over {total} iterations",
                metrics=(("iterations", float(total)),),
            )
        )

    # Leg: RTL emergent cycle counters vs. the analytical model.
    stats = cycle_statistics(design)
    mismatches = []
    for counter in (
        "blocks", "waves", "compute_cycles", "pe_active_cycles", "first_all_active_cycle",
    ):
        got, want = getattr(rtl_result, counter), getattr(stats, counter)
        if got != want:
            mismatches.append(f"{counter}: rtl={got} model={want}")
    if mismatches:
        report.add(
            RTL_CYCLE_DIVERGENCE,
            Severity.ERROR,
            f"RTL cycle counters of {design.signature} deviate from the "
            f"analytical model: " + "; ".join(mismatches),
        )
        legs.append(LegResult(names[1], "mismatch", "; ".join(mismatches)))
    else:
        legs.append(
            LegResult(
                names[1],
                "ok",
                f"exact ({rtl_result.compute_cycles} cycles, "
                f"{rtl_result.blocks} blocks)",
                metrics=(("rtl_cycles", float(rtl_result.compute_cycles)),),
            )
        )

    # Leg: native iverilog execution vs. the interpreter.
    if iverilog == "off":
        legs.append(LegResult(names[2], "skipped", "native leg disabled"))
        return legs
    if iverilog == "auto" and not iverilog_available():
        report.add(
            RTL_TOOLCHAIN_MISSING,
            Severity.NOTE,
            "iverilog not found on PATH; RTL checked by the Python "
            "interpreter only",
            hint="apt-get install iverilog to enable the native leg",
        )
        legs.append(LegResult(names[2], "skipped", "iverilog not on PATH"))
        return legs
    try:
        check = run_iverilog_check(design, arrays)
    except RtlToolchainUnavailable as exc:
        diag = exc.diagnostic
        if iverilog == "require":
            report.add(
                diag.code, Severity.ERROR, diag.message, hint=diag.hint
            )
            legs.append(LegResult(names[2], "mismatch", diag.message))
        else:
            report.add(diag.code, Severity.NOTE, diag.message, hint=diag.hint)
            legs.append(LegResult(names[2], "skipped", diag.message))
        return legs
    if not check.ok:
        report.add(
            RTL_OUTPUT_MISMATCH,
            Severity.ERROR,
            f"iverilog execution of {design.signature} diverges from the "
            f"RTL interpreter: {check.detail}",
        )
        legs.append(LegResult(names[2], "mismatch", check.detail))
    else:
        legs.append(
            LegResult(
                names[2],
                "ok",
                check.detail,
                metrics=(("words_compared", float(check.words)),),
            )
        )
    return legs


__all__ = [
    "ConformanceReport",
    "DEFAULT_ENGINE_ITERATION_LIMIT",
    "DEFAULT_REL_TOL",
    "DEFAULT_RTL_ITERATION_LIMIT",
    "LegResult",
    "cross_check",
    "golden_nest_output",
    "synthetic_arrays",
]
