"""Self-contained C testbench generation and execution.

With no OpenCL toolchain available, functional validation of a generated
design happens here: :func:`generate_testbench` emits a single C file
containing

* the design's parameter header (bounds, tiling, buffer extents),
* a ``systolic_blocked`` function that executes the design's exact
  block / buffer-load / wave / drain structure — the same address
  generation the OpenCL kernel uses,
* a naive ``reference`` transcription of the original nest,
* a ``main`` that fills the arrays with deterministic pseudo-random data,
  runs both, and compares.

:func:`compile_and_run_testbench` builds it with the system C compiler
and runs it, turning "the generated design is functionally correct" into
an executable check (the RTL-simulation stand-in of this reproduction).

The compiler and the binary are treated as unreliable external services:
every ``subprocess.run`` carries a hard ``timeout`` (a hung gcc can no
longer wedge a synthesis run forever), transient failures are retried
under a :mod:`repro.resilience` policy, the ``testbench.compile`` /
``testbench.run`` fault points let the chaos suite rehearse each path,
and a missing or persistently hung toolchain surfaces as
:class:`TestbenchUnavailable` carrying a structured ``SA504``/``SA505``
diagnostic — not a traceback — so the simulate stage can degrade
gracefully.
"""

from __future__ import annotations

import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.diagnostics import (
    RESILIENCE_TESTBENCH_DEGRADED,
    RESILIENCE_TOOL_TIMEOUT,
    Diagnostic,
    Severity,
)
from repro.ir.access import ArrayAccess
from repro.model.design_point import DesignPoint
from repro.model.platform import Platform
from repro.codegen.emitter import CodeWriter
from repro.resilience.faults import InjectedFault, corrupt_text, maybe_inject
from repro.resilience.retry import OnRetry, RetryPolicy, call_with_retry

#: Hard per-attempt budgets for the external tool invocations.
DEFAULT_COMPILE_TIMEOUT = 120.0
DEFAULT_RUN_TIMEOUT = 600.0


def _check_identifier(name: str) -> str:
    if not name.isidentifier():
        raise ValueError(f"array name {name!r} is not a valid C identifier")
    return name


def _ctypes(platform: Platform) -> dict[str, str]:
    """C types for (weight, input, output/accumulator) at this precision."""
    if platform.datatype.is_floating_point:
        return {"w": "float", "in": "float", "out": "float", "acc": "double"}
    return {"w": "signed char", "in": "short", "out": "long long", "acc": "long long"}


def _global_dim(access: ArrayAccess, bounds: dict[str, int], dim: int) -> int:
    """Allocated extent of one global array dimension (full range)."""
    lo, hi = access.indices[dim].value_range(bounds)
    if lo < 0:
        raise ValueError(f"negative subscript range on {access.array} dim {dim}")
    return hi + 1


def _local_dim(access: ArrayAccess, block_extent: dict[str, int], dim: int) -> int:
    """Extent of one on-chip buffer dimension (range over a block)."""
    span = 1
    for name, coeff in access.indices[dim].terms:
        span += coeff * (block_extent[name] - 1)
    return span


def _subscript(access: ArrayAccess, dim: int, value_of) -> str:
    """Render subscript ``dim`` as a C expression via a per-iterator hook."""
    expr = access.indices[dim]
    parts = []
    for name, coeff in expr.terms:
        term = value_of(name)
        parts.append(term if coeff == 1 else f"{coeff}*{term}")
    if expr.const:
        parts.append(str(expr.const))
    return " + ".join(parts) if parts else "0"


def generate_testbench(design: DesignPoint, platform: Platform) -> str:
    """Emit the complete C testbench for one design point."""
    nest = design.nest
    bounds = nest.bounds
    tiling = design.tiling
    iterators = nest.iterators
    out = nest.output
    reads = nest.reads
    ctypes = _ctypes(platform)
    is_float = platform.datatype.is_floating_point

    # Identify the weight (rank-4 / horizontal by default) vs input tensor
    # only for type assignment; the schedule itself is array-agnostic.
    type_of = {out.array: ctypes["out"]}
    for access in reads:
        role = "w" if access is max(reads, key=lambda a: a.rank) else "in"
        type_of[access.array] = ctypes[role]

    block_extent = {it: tiling.block_extent(it) for it in iterators}
    inner_of = {
        design.mapping.row: "x",
        design.mapping.col: "y",
        design.mapping.vector: "v",
    }

    w = CodeWriter()
    w.comment(f"Auto-generated testbench for design: {design.signature}")
    w.comment("Structure: block loops -> buffer loads -> wave loops -> PE array -> drain.")
    w.lines("#include <stdio.h>", "#include <stdlib.h>", "#include <math.h>", "#include <string.h>")
    w.line()

    w.comment("Original loop bounds.")
    for it in iterators:
        w.line(f"#define N_{it} {bounds[it]}")
    w.comment("Tiling: T = inner (PE array) bound, S = middle bound, B = S*T.")
    for it in iterators:
        w.line(f"#define T_{it} {tiling.t(it)}")
        w.line(f"#define S_{it} {tiling.s(it)}")
        w.line(f"#define B_{it} {block_extent[it]}")
    w.line(f"#define ROWS T_{design.mapping.row}")
    w.line(f"#define COLS T_{design.mapping.col}")
    w.line(f"#define VEC  T_{design.mapping.vector}")
    w.line()

    w.comment("Global arrays (full access ranges).")
    for access in nest.accesses:
        _check_identifier(access.array)
        dims = "".join(f"[{_global_dim(access, bounds, d)}]" for d in range(access.rank))
        w.line(f"static {type_of[access.array]} {access.array}{dims};")
    out_dims = "".join(f"[{_global_dim(out, bounds, d)}]" for d in range(out.rank))
    ref_type = "double" if is_float else type_of[out.array]
    w.line(f"static {ref_type} {out.array}_ref{out_dims};")
    w.line()

    w.comment("On-chip reuse buffers (one block's footprint).")
    for access in nest.accesses:
        dims = "".join(
            f"[{_local_dim(access, block_extent, d)}]" for d in range(access.rank)
        )
        w.line(f"static {type_of[access.array]} buf_{access.array}{dims};")
    w.line()

    _emit_reference(w, design, type_of)
    w.line()
    _emit_systolic(w, design, type_of, inner_of)
    w.line()
    _emit_main(w, design, type_of, is_float)
    return w.render()


def _emit_reference(w: CodeWriter, design: DesignPoint, type_of) -> None:
    nest = design.nest
    out = nest.output
    reads = nest.reads
    with w.block("static void reference(void)"):
        depth = 0
        for it in nest.iterators:
            w.line(
                f"{'for (int ' + it + ' = 0; ' + it + ' < N_' + it + '; ' + it + '++)'}"
            )
            depth += 1
        sub = lambda a: "".join(
            f"[{_subscript(a, d, lambda n: n)}]" for d in range(a.rank)
        )
        with w.indented():
            w.line(
                f"{out.array}_ref{sub(out)} += {reads[0].array}{sub(reads[0])}"
                f" * {reads[1].array}{sub(reads[1])};"
            )
        del depth


def _emit_systolic(w: CodeWriter, design: DesignPoint, type_of, inner_of) -> None:
    nest = design.nest
    iterators = nest.iterators
    out = nest.output
    reads = nest.reads

    with w.block("static void systolic_blocked(void)"):
        w.comment("Outer loops: one iteration per data block.")
        for it in iterators:
            w.line(f"for (int blk_{it} = 0; blk_{it} < N_{it}; blk_{it} += B_{it})")
        with w.block(""):
            w.comment("--- load phase: fill the double buffers (zero-pad the ragged edge) ---")
            for access in nest.accesses:
                is_out = access.is_write
                w.comment(f"{'output accumulator' if is_out else 'reuse buffer'} for {access.array}")
                # iterate buffer coordinates u0..u{rank-1}
                for d in range(access.rank):
                    dim = f"u{d}"
                    w.line(
                        f"for (int {dim} = 0; {dim} < "
                        f"{_local_dim(access, {i: design.tiling.block_extent(i) for i in iterators}, d)}; {dim}++)"
                    )
                local_idx = "".join(f"[u{d}]" for d in range(access.rank))
                with w.indented():
                    if is_out:
                        w.line(f"buf_{access.array}{local_idx} = 0;")
                    else:
                        base = lambda a, d: _subscript(a, d, lambda n: f"blk_{n}")
                        conds = []
                        globals_ = []
                        for d in range(access.rank):
                            g = f"({base(access, d)} + u{d})"
                            globals_.append(g)
                            lo, hi = access.indices[d].value_range(nest.bounds)
                            conds.append(f"{g} <= {hi}")
                        cond = " && ".join(conds)
                        gsub = "".join(f"[{g}]" for g in globals_)
                        w.line(
                            f"buf_{access.array}{local_idx} = ({cond}) ? "
                            f"{access.array}{gsub} : 0;"
                        )
            w.line()
            w.comment("--- compute phase: middle loops feed waves into the PE array ---")
            for it in iterators:
                w.line(f"for (int m_{it} = 0; m_{it} < S_{it}; m_{it}++)")
            with w.block(""):
                w.comment("The fully unrolled PE array (rows x cols), SIMD inside.")
                w.line("for (int x = 0; x < ROWS; x++)")
                w.line("for (int y = 0; y < COLS; y++)")
                with w.block(""):
                    acc_type = "double" if type_of[out.array] == "float" else "long long"
                    w.line(f"{acc_type} sum = 0;")
                    with w.block("for (int v = 0; v < VEC; v++)"):
                        w.comment("local (in-block) iteration indexes")
                        for it in iterators:
                            inner = inner_of.get(it, "0")
                            w.line(f"int l_{it} = m_{it} * T_{it} + {inner};")
                        local = lambda a: "".join(
                            f"[{_subscript(a, d, lambda n: f'l_{n}')}]"
                            for d in range(a.rank)
                        )
                        w.line(
                            f"sum += ({acc_type})buf_{reads[0].array}{local(reads[0])}"
                            f" * ({acc_type})buf_{reads[1].array}{local(reads[1])};"
                        )
                    w.comment("accumulate into the output buffer slot")
                    out_locals = {}
                    for it in iterators:
                        if out.depends_on(it):
                            inner = inner_of.get(it, "0")
                            out_locals[it] = f"(m_{it} * T_{it} + {inner})"
                    out_sub = "".join(
                        f"[{_subscript(out, d, lambda n: out_locals[n])}]"
                        for d in range(out.rank)
                    )
                    w.line(f"buf_{out.array}{out_sub} += sum;")
            w.line()
            w.comment("--- drain phase: write the output buffer back (guarded) ---")
            out_iters = [it for it in iterators if out.depends_on(it)]
            for it in out_iters:
                w.line(f"for (int l_{it} = 0; l_{it} < B_{it}; l_{it}++)")
            with w.block(""):
                conds = " && ".join(f"blk_{it} + l_{it} < N_{it}" for it in out_iters)
                local_sub = "".join(
                    f"[{_subscript(out, d, lambda n: f'l_{n}')}]" for d in range(out.rank)
                )
                global_sub = "".join(
                    f"[{_subscript(out, d, lambda n: f'(blk_{n} + l_{n})')}]"
                    for d in range(out.rank)
                )
                w.line(f"if ({conds}) {out.array}{global_sub} += buf_{out.array}{local_sub};")


def _emit_main(w: CodeWriter, design: DesignPoint, type_of, is_float: bool) -> None:
    nest = design.nest
    out = nest.output
    w.line("static unsigned lcg_state = 12345u;")
    w.line()
    with w.block("static double lcg(void)"):
        w.line("lcg_state = lcg_state * 1664525u + 1013904223u;")
        w.line("return ((double)(lcg_state >> 8) / (double)(1u << 24)) * 2.0 - 1.0;")
    w.line()
    with w.block("int main(void)"):
        w.comment("deterministic pseudo-random fill")
        for access in nest.reads:
            flat = 1
            for d in range(access.rank):
                flat *= _global_dim(access, nest.bounds, d)
            cast = "" if is_float else "(int)(100.0 * "
            close = "" if is_float else ")"
            w.line(
                f"for (long k = 0; k < {flat}L; k++) "
                f"(({type_of[access.array]}*){access.array})[k] = "
                f"{cast}{'lcg()' if is_float else 'lcg()'}{close};"
            )
        w.line("reference();")
        w.line("systolic_blocked();")
        flat_out = 1
        for d in range(out.rank):
            flat_out *= _global_dim(out, nest.bounds, d)
        ref_type = "double" if is_float else type_of[out.array]
        w.line(f"{type_of[out.array]} *a = ({type_of[out.array]}*){out.array};")
        w.line(f"{ref_type} *b = ({ref_type}*){out.array}_ref;")
        if is_float:
            w.comment(
                "Globally normalized error: float32 accumulation order differs "
                "between the systolic schedule and the reference (the paper's "
                "'precision error of reordering' note), so compare against the "
                "output scale, not element-wise relative."
            )
            w.line("double worst = 0.0, scale = 0.0;")
            w.line(
                f"for (long k = 0; k < {flat_out}L; k++) "
                "if (fabs(b[k]) > scale) scale = fabs(b[k]);"
            )
            with w.block(f"for (long k = 0; k < {flat_out}L; k++)"):
                w.line("double err = fabs((double)a[k] - b[k]);")
                w.line("if (err > worst) worst = err;")
            with w.block("if (worst > 2e-3 * (scale + 1e-9))"):
                w.line('printf("TESTBENCH FAIL worst=%g scale=%g\\n", worst, scale);')
                w.line("return 1;")
            w.line('printf("TESTBENCH PASS worst=%g scale=%g\\n", worst, scale);')
        else:
            with w.block(f"for (long k = 0; k < {flat_out}L; k++)"):
                w.line("if (a[k] != b[k]) { printf(\"TESTBENCH FAIL at %ld\\n\", k); return 1; }")
            w.line('printf("TESTBENCH PASS exact\\n");')
        w.line("return 0;")


class TestbenchUnavailable(RuntimeError):
    """The C toolchain cannot deliver a verdict (missing or hung tool).

    Distinct from a *failing* testbench: unavailability means nothing
    was checked, so callers (the simulate stage) can degrade to another
    backend instead of reporting a functional failure.

    Attributes:
        diagnostic: structured ``SA504``/``SA505`` description.
    """

    __test__ = False  # keep pytest from collecting this as a test class

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.message)
        self.diagnostic = diagnostic


@dataclass(frozen=True)
class TestbenchRun:
    """Outcome of one compile-and-execute testbench check.

    Attributes:
        passed: exit 0 plus the PASS marker.
        output: combined stdout/stderr of the failing or passing step.
    """

    __test__ = False  # keep pytest from collecting this as a test class

    passed: bool
    output: str


def run_testbench(
    source: str,
    *,
    workdir: Path | None = None,
    compiler: str = "gcc",
    policy: RetryPolicy | None = None,
    compile_timeout: float = DEFAULT_COMPILE_TIMEOUT,
    run_timeout: float = DEFAULT_RUN_TIMEOUT,
    on_retry: OnRetry | None = None,
) -> TestbenchRun:
    """Compile the testbench and execute it, with timeouts and retries.

    Both subprocess invocations carry a hard ``timeout`` and are retried
    under ``policy`` on transient failures (OS errors, timeouts,
    injected ``testbench.compile`` / ``testbench.run`` faults).

    Args:
        source: C source from :func:`generate_testbench`.
        workdir: directory for artifacts (a temp dir by default).
        compiler: C compiler executable.
        policy: retry budget (the process default if None).
        compile_timeout / run_timeout: per-attempt budgets in seconds
            (``policy.timeout``, when set, overrides both).
        on_retry: hook fired per retry (event emission).

    Raises:
        TestbenchUnavailable: the compiler is missing (SA504) or a tool
            exceeded its budget on every attempt (SA505) — the verdict
            is "unknown", not "failed".
    """
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="systolic_tb_") as tmp:
            return run_testbench(
                source,
                workdir=Path(tmp),
                compiler=compiler,
                policy=policy,
                compile_timeout=compile_timeout,
                run_timeout=run_timeout,
                on_retry=on_retry,
            )
    if policy is not None and policy.timeout is not None:
        compile_timeout = run_timeout = policy.timeout
    workdir.mkdir(parents=True, exist_ok=True)
    src = workdir / "testbench.c"
    binary = workdir / "testbench"
    src.write_text(source)
    transient = (OSError, subprocess.TimeoutExpired, InjectedFault)

    def compile_step() -> subprocess.CompletedProcess:
        path = src
        if maybe_inject("testbench.compile") == "corrupt":
            path = workdir / "testbench_corrupt.c"
            path.write_text(corrupt_text(source))
        return subprocess.run(
            [compiler, "-O2", "-std=c99", "-o", str(binary), str(path), "-lm"],
            capture_output=True,
            text=True,
            timeout=compile_timeout,
        )

    def run_step() -> subprocess.CompletedProcess:
        maybe_inject("testbench.run")
        return subprocess.run(
            [str(binary)], capture_output=True, text=True, timeout=run_timeout
        )

    try:
        build = call_with_retry(
            compile_step, policy=policy, retry_on=transient, on_retry=on_retry
        )
    except FileNotFoundError as exc:
        raise TestbenchUnavailable(
            Diagnostic(
                RESILIENCE_TESTBENCH_DEGRADED,
                Severity.WARNING,
                f"C compiler {compiler!r} is not available: {exc}",
                hint="install gcc, or pass compiler=... / --sim-backend fast",
            )
        ) from exc
    except subprocess.TimeoutExpired as exc:
        raise TestbenchUnavailable(
            Diagnostic(
                RESILIENCE_TOOL_TIMEOUT,
                Severity.WARNING,
                f"{compiler} exceeded its {compile_timeout:.0f}s compile budget",
                hint="raise the timeout, or use --sim-backend fast",
            )
        ) from exc
    except (OSError, InjectedFault) as exc:
        raise TestbenchUnavailable(
            Diagnostic(
                RESILIENCE_TESTBENCH_DEGRADED,
                Severity.WARNING,
                f"could not invoke {compiler!r}: {exc}",
            )
        ) from exc
    if build.returncode != 0:
        return TestbenchRun(False, f"COMPILE ERROR:\n{build.stderr}")
    try:
        run = call_with_retry(
            run_step, policy=policy, retry_on=transient, on_retry=on_retry
        )
    except subprocess.TimeoutExpired as exc:
        raise TestbenchUnavailable(
            Diagnostic(
                RESILIENCE_TOOL_TIMEOUT,
                Severity.WARNING,
                f"testbench binary exceeded its {run_timeout:.0f}s run budget",
                hint="raise the timeout, or use --sim-backend fast",
            )
        ) from exc
    except (OSError, InjectedFault) as exc:
        raise TestbenchUnavailable(
            Diagnostic(
                RESILIENCE_TESTBENCH_DEGRADED,
                Severity.WARNING,
                f"could not execute the testbench binary: {exc}",
            )
        ) from exc
    output = run.stdout + run.stderr
    return TestbenchRun(run.returncode == 0 and "TESTBENCH PASS" in output, output)


def compile_and_run_testbench(
    source: str, *, workdir: Path | None = None, compiler: str = "gcc"
) -> tuple[bool, str]:
    """Compile the testbench with the system C compiler and execute it.

    Back-compatible wrapper over :func:`run_testbench`: an unavailable
    toolchain comes back as a failed check whose output is the rendered
    diagnostic — never a traceback.

    Returns:
        (passed, combined output).  ``passed`` requires exit code 0 and
        the PASS marker.
    """
    try:
        outcome = run_testbench(source, workdir=workdir, compiler=compiler)
    except TestbenchUnavailable as exc:
        return False, f"TOOLCHAIN UNAVAILABLE:\n{exc.diagnostic.render()}"
    return outcome.passed, outcome.output


__all__ = [
    "DEFAULT_COMPILE_TIMEOUT",
    "DEFAULT_RUN_TIMEOUT",
    "TestbenchRun",
    "TestbenchUnavailable",
    "compile_and_run_testbench",
    "generate_testbench",
    "run_testbench",
]
