"""Structural Verilog-2001 backend for the systolic PE array.

Unlike :mod:`repro.codegen.opencl` (behavioral, text-template style),
this backend first builds a small *module-graph IR* — registers, memories,
combinational wires, sequential assignments and module instances — and
then renders Verilog-2001 text from it.  The same IR is what
:mod:`repro.sim.rtl` elaborates and interprets with two-phase
eval/commit semantics, so the text the tests lint and the circuit the
Python RTL simulator executes cannot disagree: both are projections of
one structure.

Architecture emitted (paper Figs. 1–3):

* a ``pe`` module per design — registered weight/input shift stages
  (the horizontal/vertical chains), a lane-ordered SIMD dot product in
  IEEE double (``real``) arithmetic, a wave-tag equality check feeding
  an ``err`` output, and a *ping-pong* pair of accumulator memories
  addressed by the wave's base offset plus a per-instance ``PE_OFF``
  parameter;
* a ``systolic_top`` module instantiating the R x C array, wiring row
  chains left-to-right and column chains top-to-bottom, with a single
  ``bank`` selector register toggled by ``flip`` and a ``clear`` input
  that zeroes the just-drained bank.

Data is IEEE binary64 carried as ``[63:0]`` vectors; rendered Verilog
converts at the boundary with ``$bitstoreal`` / ``$realtobits`` so an
event-driven simulator (iverilog) computes with native doubles — the
same arithmetic the Python interpreter and the other simulators use.
Designs the structural form cannot express raise ``SA150``.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.analysis.diagnostics import (
    RTL_UNSUPPORTED_DESIGN,
    AnalysisReport,
    DiagnosticError,
    Severity,
)
from repro.codegen.emitter import CodeWriter
from repro.model.design_point import DesignPoint
from repro.sim.schedule import BlockSpec

#: Largest per-PE accumulator footprint (in words, per bank) the backend
#: will emit.  Bigger designs are rejected with SA150 — a local buffer
#: this size would not fit in BRAM either.
RTL_MAX_BOX = 1 << 20

# --------------------------------------------------------------------------
# Expression IR: small nested tuples, one constructor per node kind.
# Integer/bit ops work on Python ints; f64 ops on Python floats (exactly
# IEEE binary64, the arithmetic the rendered Verilog performs in `real`).

Expr = tuple


def const(value: int) -> Expr:
    return ("const", int(value))


def rconst(value: float) -> Expr:
    return ("rconst", float(value))


def sig(name: str) -> Expr:
    return ("sig", name)


def param(name: str) -> Expr:
    return ("param", name)


def iadd(a: Expr, b: Expr) -> Expr:
    return ("iadd", a, b)


def band(a: Expr, b: Expr) -> Expr:
    return ("and", a, b)


def bor(a: Expr, b: Expr) -> Expr:
    return ("or", a, b)


def bnot(a: Expr) -> Expr:
    return ("not", a)


def ne(a: Expr, b: Expr) -> Expr:
    return ("ne", a, b)


def mux(cond: Expr, then: Expr, other: Expr) -> Expr:
    return ("mux", cond, then, other)


def fadd(a: Expr, b: Expr) -> Expr:
    return ("fadd", a, b)


def fmul(a: Expr, b: Expr) -> Expr:
    return ("fmul", a, b)


def memread(mem: str, addr: Expr) -> Expr:
    return ("memread", mem, addr)


def expr_signals(expr: Expr) -> set[str]:
    """Every signal name an expression reads (memories excluded)."""
    kind = expr[0]
    if kind == "sig":
        return {expr[1]}
    if kind in ("const", "rconst", "param"):
        return set()
    if kind == "memread":
        return expr_signals(expr[2])
    names: set[str] = set()
    for operand in expr[1:]:
        if isinstance(operand, tuple):
            names |= expr_signals(operand)
    return names


# --------------------------------------------------------------------------
# Structural IR nodes.

#: Signal kinds -> rendered Verilog widths.  ``f64`` is IEEE binary64
#: carried as a 64-bit vector; ``int`` covers tags, offsets, addresses.
KIND_WIDTH = {"bit": 1, "int": 32, "f64": 64}


@dataclass(frozen=True)
class Port:
    name: str
    direction: str  # "in" | "out"
    kind: str


@dataclass(frozen=True)
class Reg:
    name: str
    kind: str
    init: Any = 0


@dataclass(frozen=True)
class Mem:
    name: str
    kind: str
    depth: int


@dataclass(frozen=True)
class Wire:
    name: str
    kind: str
    expr: Expr


@dataclass(frozen=True)
class RegSet:
    """Nonblocking ``reg <= expr`` at every clock edge."""

    reg: str
    expr: Expr


@dataclass(frozen=True)
class MemWrite:
    """Guarded read-modify-write of one memory word at the clock edge."""

    mem: str
    addr: Expr
    data: Expr
    enable: Expr


@dataclass(frozen=True)
class MemClear:
    """Guarded whole-memory zeroing at the clock edge (ping-pong reset)."""

    mem: str
    enable: Expr


@dataclass(frozen=True)
class Instance:
    """A child module instantiation inside the top module.

    Attributes:
        name: instance name (``pe_0_0`` — also the hierarchical prefix).
        module: child module name.
        params: parameter overrides.
        inputs: child input port -> parent-scope expression.
        outputs: child output port -> parent-scope wire name to declare.
            Unlisted outputs are left unconnected.
    """

    name: str
    module: str
    params: dict[str, int] = field(default_factory=dict)
    inputs: dict[str, Expr] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class ModuleDef:
    name: str
    ports: tuple[Port, ...]
    params: tuple[tuple[str, int], ...] = ()
    regs: tuple[Reg, ...] = ()
    mems: tuple[Mem, ...] = ()
    wires: tuple[Wire, ...] = ()
    seq: tuple[Any, ...] = ()  # RegSet | MemClear | MemWrite, in commit order
    instances: tuple[Instance, ...] = ()


# --------------------------------------------------------------------------
# Planning: geometry and legality of the structural lowering.


@dataclass(frozen=True)
class RtlPlan:
    """Constants the structural array needs, derived from one design.

    The per-PE accumulator is a dense row-major *box* covering the local
    output footprint of one block: dimension ``d`` spans
    ``1 + sum_it coeff_d,it * (s_it * t_it - 1)`` words, and the flat
    address of an output element is ``base_offset(wave) + PE_OFF(x, y)``
    where the first term is wave-dependent (streamed in with the weight
    packet) and the second is a per-instance elaboration constant.
    """

    design: DesignPoint
    box_dims: tuple[int, ...]
    strides: tuple[int, ...]

    @property
    def box(self) -> int:
        total = 1
        for dim in self.box_dims:
            total *= dim
        return total

    def pe_offset(self, x: int, y: int) -> int:
        """The ``PE_OFF`` parameter of instance (x, y)."""
        out = self.design.nest.output
        mapping = self.design.mapping
        total = 0
        for stride, expr in zip(self.strides, out.indices):
            total += stride * (
                expr.coefficient(mapping.row) * x + expr.coefficient(mapping.col) * y
            )
        return total

    def base_offset(self, wave: dict[str, int]) -> int:
        """Wave-dependent part of the accumulator address (all PEs)."""
        out = self.design.nest.output
        t = self.design.tiling.t
        total = 0
        for stride, expr in zip(self.strides, out.indices):
            local = sum(coeff * wave[it] * t(it) for it, coeff in expr.terms)
            total += stride * local
        return total

    def block_base_key(self, block: BlockSpec) -> tuple[int, ...]:
        """Global output coordinates of the block's local origin."""
        out = self.design.nest.output
        bases = block.base_map
        return tuple(
            expr.const + sum(coeff * bases[it] for it, coeff in expr.terms)
            for expr in out.indices
        )


def plan_rtl(design: DesignPoint) -> RtlPlan:
    """Validate a design for structural lowering and compute its plan.

    Raises:
        DiagnosticError: with ``SA150`` when the design cannot be
            expressed as the fixed PE-array structure.
    """
    report = AnalysisReport()
    nest = design.nest
    mapping = design.mapping
    out = nest.output

    if out.depends_on(mapping.vector):
        report.add(
            RTL_UNSUPPORTED_DESIGN,
            Severity.ERROR,
            f"output access of {nest.name!r} depends on the vector "
            f"iterator {mapping.vector!r}; a PE accumulates one whole "
            f"SIMD dot product per output element",
        )
    for expr in out.indices:
        for it, coeff in expr.terms:
            if coeff < 0:
                report.add(
                    RTL_UNSUPPORTED_DESIGN,
                    Severity.ERROR,
                    f"output subscript coefficient {coeff} of iterator "
                    f"{it!r} is negative; RTL address generation requires "
                    f"non-negative offsets",
                )
        if expr.const < 0:
            report.add(
                RTL_UNSUPPORTED_DESIGN,
                Severity.ERROR,
                f"output subscript constant {expr.const} is negative",
            )
    report.raise_if_errors()

    tiling = design.tiling
    dims = []
    for expr in out.indices:
        extent = 1
        for it, coeff in expr.terms:
            block_extent = tiling.s(it) * tiling.t(it)
            extent += coeff * (block_extent - 1)
        dims.append(extent)
    strides = []
    stride = 1
    for dim in reversed(dims):
        strides.append(stride)
        stride *= dim
    strides.reverse()
    box = stride

    if box > RTL_MAX_BOX:
        report.add(
            RTL_UNSUPPORTED_DESIGN,
            Severity.ERROR,
            f"per-PE accumulator box of {box} words exceeds the RTL "
            f"local-buffer budget ({RTL_MAX_BOX})",
        )
    report.raise_if_errors()

    return RtlPlan(design=design, box_dims=tuple(dims), strides=tuple(strides))


# --------------------------------------------------------------------------
# IR construction.


def _lane_ports(prefix: str, vector: int) -> list[str]:
    return [f"{prefix}{v}" for v in range(vector)]


def build_pe_module(plan: RtlPlan) -> ModuleDef:
    """The per-design ``pe`` module (shift stages + MAC + ping-pong acc)."""
    vector = plan.design.shape.vector
    ports: list[Port] = []
    regs: list[Reg] = []
    seq: list[Any] = []

    def stage(in_name: str, out_name: str, kind: str) -> None:
        ports.append(Port(in_name, "in", kind))
        ports.append(Port(out_name, "out", kind))
        regs.append(Reg(out_name, kind, 0.0 if kind == "f64" else 0))
        seq.append(RegSet(out_name, sig(in_name)))

    # Weight chain (shifts right along the row) with its sideband fields.
    stage("w_valid_in", "w_valid_out", "bit")
    stage("w_tag_in", "w_tag_out", "int")
    stage("w_boff_in", "w_boff_out", "int")
    stage("w_rowok_in", "w_rowok_out", "bit")
    for v in range(vector):
        stage(f"w_val_{v}_in", f"w_val_{v}_out", "f64")
    # Input chain (shifts down the column).
    stage("i_valid_in", "i_valid_out", "bit")
    stage("i_tag_in", "i_tag_out", "int")
    stage("i_colok_in", "i_colok_out", "bit")
    for v in range(vector):
        stage(f"i_val_{v}_in", f"i_val_{v}_out", "f64")

    ports.append(Port("bank", "in", "bit"))
    ports.append(Port("clear", "in", "bit"))
    ports.append(Port("err", "out", "bit"))

    # Combinational: pairing, tag check, write enable, address, dot.
    both = band(sig("w_valid_out"), sig("i_valid_out"))
    wires = [
        Wire("both", "bit", both),
        Wire("err", "bit", band(sig("both"), ne(sig("w_tag_out"), sig("i_tag_out")))),
        Wire(
            "wen",
            "bit",
            band(band(sig("both"), sig("w_rowok_out")), sig("i_colok_out")),
        ),
        Wire("addr", "int", iadd(sig("w_boff_out"), param("PE_OFF"))),
    ]
    # Lane-ordered running sum from +0.0: the simd_dot contract.
    dot: Expr = rconst(0.0)
    for v in range(vector):
        dot = fadd(dot, fmul(sig(f"w_val_{v}_out"), sig(f"i_val_{v}_out")))
    wires.append(Wire("dot", "f64", dot))

    mems = (
        Mem("acc0", "f64", plan.box),
        Mem("acc1", "f64", plan.box),
    )
    # Clear the just-drained (pre-flip active) bank; write the active one.
    # Clears precede writes in commit order.
    seq.append(MemClear("acc0", band(sig("clear"), bnot(sig("bank")))))
    seq.append(MemClear("acc1", band(sig("clear"), sig("bank"))))
    seq.append(
        MemWrite(
            "acc0",
            sig("addr"),
            fadd(memread("acc0", sig("addr")), sig("dot")),
            band(sig("wen"), bnot(sig("bank"))),
        )
    )
    seq.append(
        MemWrite(
            "acc1",
            sig("addr"),
            fadd(memread("acc1", sig("addr")), sig("dot")),
            band(sig("wen"), sig("bank")),
        )
    )

    return ModuleDef(
        name="pe",
        ports=tuple(ports),
        params=(("PE_OFF", 0),),
        regs=tuple(regs),
        mems=mems,
        wires=tuple(wires),
        seq=tuple(seq),
    )


#: Per-direction packet fields (name suffixes) carried by the chains.
W_FIELDS = ("valid", "tag", "boff", "rowok")
I_FIELDS = ("valid", "tag", "colok")

W_FIELD_KINDS = {"valid": "bit", "tag": "int", "boff": "int", "rowok": "bit"}
I_FIELD_KINDS = {"valid": "bit", "tag": "int", "colok": "bit"}


def _w_port_names(vector: int) -> list[tuple[str, str]]:
    """(field, kind) pairs of the weight-side packet, lanes included."""
    names = [(f, W_FIELD_KINDS[f]) for f in W_FIELDS]
    names += [(f"val_{v}", "f64") for v in range(vector)]
    return names


def _i_port_names(vector: int) -> list[tuple[str, str]]:
    names = [(f, I_FIELD_KINDS[f]) for f in I_FIELDS]
    names += [(f"val_{v}", "f64") for v in range(vector)]
    return names


def build_top_module(plan: RtlPlan) -> ModuleDef:
    """The ``systolic_top`` module: the R x C instance grid and bank reg."""
    shape = plan.design.shape
    rows, cols, vector = shape.rows, shape.cols, shape.vector
    ports: list[Port] = []
    for x in range(rows):
        for fld, kind in _w_port_names(vector):
            ports.append(Port(f"w_{fld}_{x}", "in", kind))
    for y in range(cols):
        for fld, kind in _i_port_names(vector):
            ports.append(Port(f"i_{fld}_{y}", "in", kind))
    ports.append(Port("flip", "in", "bit"))
    ports.append(Port("clear", "in", "bit"))
    ports.append(Port("err", "out", "bit"))

    instances: list[Instance] = []
    for x in range(rows):
        for y in range(cols):
            inputs: dict[str, Expr] = {"bank": sig("bank"), "clear": sig("clear")}
            for fld, _ in _w_port_names(vector):
                if y == 0:
                    inputs[f"w_{fld}_in"] = sig(f"w_{fld}_{x}")
                else:
                    inputs[f"w_{fld}_in"] = sig(f"pe_{x}_{y - 1}_w_{fld}")
            for fld, _ in _i_port_names(vector):
                if x == 0:
                    inputs[f"i_{fld}_in"] = sig(f"i_{fld}_{y}")
                else:
                    inputs[f"i_{fld}_in"] = sig(f"pe_{x - 1}_{y}_i_{fld}")
            outputs: dict[str, str] = {"err": f"pe_{x}_{y}_err"}
            if y + 1 < cols:
                for fld, _ in _w_port_names(vector):
                    outputs[f"w_{fld}_out"] = f"pe_{x}_{y}_w_{fld}"
            if x + 1 < rows:
                for fld, _ in _i_port_names(vector):
                    outputs[f"i_{fld}_out"] = f"pe_{x}_{y}_i_{fld}"
            instances.append(
                Instance(
                    name=f"pe_{x}_{y}",
                    module="pe",
                    params={"PE_OFF": plan.pe_offset(x, y)},
                    inputs=inputs,
                    outputs=outputs,
                )
            )

    err: Expr = sig("pe_0_0_err")
    for inst in instances[1:]:
        err = bor(err, sig(f"{inst.name}_err"))

    return ModuleDef(
        name="systolic_top",
        ports=tuple(ports),
        regs=(Reg("bank", "bit", 0),),
        wires=(Wire("err", "bit", err),),
        seq=(RegSet("bank", mux(sig("flip"), bnot(sig("bank")), sig("bank"))),),
        instances=tuple(instances),
    )


def build_rtl_modules(design: DesignPoint) -> tuple[ModuleDef, ModuleDef, RtlPlan]:
    """(top, pe, plan) for one design — the single source both the
    renderer and the interpreter project from."""
    plan = plan_rtl(design)
    return build_top_module(plan), build_pe_module(plan), plan


# --------------------------------------------------------------------------
# Verilog-2001 rendering.


def _width_decl(kind: str) -> str:
    width = KIND_WIDTH[kind]
    return "" if width == 1 else f"[{width - 1}:0] "


def _render_int_expr(expr: Expr) -> str:
    kind = expr[0]
    if kind == "const":
        return str(expr[1])
    if kind == "sig":
        return expr[1]
    if kind == "param":
        return expr[1]
    if kind == "iadd":
        return f"({_render_int_expr(expr[1])} + {_render_int_expr(expr[2])})"
    if kind == "and":
        return f"({_render_int_expr(expr[1])} & {_render_int_expr(expr[2])})"
    if kind == "or":
        return f"({_render_int_expr(expr[1])} | {_render_int_expr(expr[2])})"
    if kind == "not":
        return f"(!{_render_int_expr(expr[1])})"
    if kind == "ne":
        return f"({_render_int_expr(expr[1])} != {_render_int_expr(expr[2])})"
    if kind == "mux":
        return (
            f"({_render_int_expr(expr[1])} ? {_render_int_expr(expr[2])}"
            f" : {_render_int_expr(expr[3])})"
        )
    raise ValueError(f"not an integer/bit expression: {expr[0]!r}")


def _render_real_expr(expr: Expr) -> str:
    """An f64 expression as Verilog ``real`` arithmetic."""
    kind = expr[0]
    if kind == "rconst":
        value = expr[1]
        return "0.0" if value == 0.0 else repr(value)
    if kind == "sig":
        return f"$bitstoreal({expr[1]})"
    if kind == "memread":
        return f"$bitstoreal({expr[1]}[{_render_int_expr(expr[2])}])"
    if kind == "fadd":
        return f"({_render_real_expr(expr[1])} + {_render_real_expr(expr[2])})"
    if kind == "fmul":
        return f"({_render_real_expr(expr[1])} * {_render_real_expr(expr[2])})"
    raise ValueError(f"not an f64 expression: {expr[0]!r}")


def _render_module(w: CodeWriter, module: ModuleDef) -> None:
    reg_names = {r.name for r in module.regs}
    port_list = ["clk"] + [p.name for p in module.ports]
    w.line(f"module {module.name} (")
    with w.indented():
        for index, name in enumerate(port_list):
            comma = "," if index + 1 < len(port_list) else ""
            w.line(f"{name}{comma}")
    w.line(");")
    with w.indented():
        for name, default in module.params:
            w.line(f"parameter {name} = {default};")
        w.line("input clk;")
        for port in module.ports:
            if port.direction == "in":
                w.line(f"input {_width_decl(port.kind)}{port.name};")
            elif port.name in reg_names:
                w.line(f"output reg {_width_decl(port.kind)}{port.name};")
            else:
                w.line(f"output {_width_decl(port.kind)}{port.name};")
        port_names = {p.name for p in module.ports}
        for reg in module.regs:
            if reg.name not in port_names:
                w.line(f"reg {_width_decl(reg.kind)}{reg.name};")
        for mem in module.mems:
            w.line(
                f"reg {_width_decl(mem.kind)}{mem.name} [0:{mem.depth - 1}];"
            )
        needs_index = any(isinstance(op, MemClear) for op in module.seq) or bool(
            module.mems
        )
        if needs_index:
            w.line("integer mi;")
        w.line()

        # Power-on state: zero registers and memories (FPGA-style init).
        if module.regs or module.mems:
            with vblock(w, "initial begin"):
                for reg in module.regs:
                    w.line(f"{reg.name} = 0;")
                for mem in module.mems:
                    w.line(f"for (mi = 0; mi < {mem.depth}; mi = mi + 1)")
                    with w.indented():
                        w.line(f"{mem.name}[mi] = 0;")
            w.line()

        # Combinational wires: bit/int as assigns, f64 as always @* blocks.
        declared_wires = []
        for wire in module.wires:
            if wire.name in port_names:
                declared_wires.append(wire)
                continue
            if wire.kind == "f64":
                w.line(f"reg {_width_decl(wire.kind)}{wire.name};")
            else:
                w.line(f"wire {_width_decl(wire.kind)}{wire.name};")
        for wire in module.wires:
            if wire.kind == "f64":
                w.line(
                    f"always @* {wire.name} = "
                    f"$realtobits({_render_real_expr(wire.expr)});"
                )
            else:
                w.line(f"assign {wire.name} = {_render_int_expr(wire.expr)};")
        if module.wires:
            w.line()

        # Instances.
        for inst in module.instances:
            for port_name, wire_name in sorted(inst.outputs.items()):
                kind = _instance_port_kind(port_name)
                w.line(f"wire {_width_decl(kind)}{wire_name};")
        for inst in module.instances:
            params = ", ".join(
                f".{name}({value})" for name, value in sorted(inst.params.items())
            )
            override = f" #({params})" if params else ""
            w.line(f"{inst.module}{override} {inst.name} (")
            with w.indented():
                conns = [".clk(clk)"]
                for port_name, expr in sorted(inst.inputs.items()):
                    conns.append(f".{port_name}({_render_int_expr(expr)})")
                for port_name, wire_name in sorted(inst.outputs.items()):
                    conns.append(f".{port_name}({wire_name})")
                for index, conn in enumerate(conns):
                    comma = "," if index + 1 < len(conns) else ""
                    w.line(f"{conn}{comma}")
            w.line(");")
        if module.instances:
            w.line()

        # The single sequential process: registers, clears, then writes.
        if module.seq:
            with vblock(w, "always @(posedge clk) begin"):
                for op in module.seq:
                    if isinstance(op, RegSet):
                        w.line(f"{op.reg} <= {_render_int_expr(op.expr)};")
                for op in module.seq:
                    if isinstance(op, MemClear):
                        with vblock(
                            w, f"if ({_render_int_expr(op.enable)}) begin"
                        ):
                            w.line(
                                f"for (mi = 0; mi < "
                                f"{_mem_depth(module, op.mem)}; mi = mi + 1)"
                            )
                            with w.indented():
                                w.line(f"{op.mem}[mi] <= 0;")
                for op in module.seq:
                    if isinstance(op, MemWrite):
                        with vblock(
                            w, f"if ({_render_int_expr(op.enable)}) begin"
                        ):
                            w.line(
                                f"{op.mem}[{_render_int_expr(op.addr)}] <= "
                                f"$realtobits({_render_real_expr(op.data)});"
                            )
    w.line("endmodule")


@contextmanager
def vblock(w: CodeWriter, header: str) -> Iterator[None]:
    """``header`` ... ``end`` around the context (Verilog has no braces,
    so :meth:`CodeWriter.block`'s C-style ``{`` would corrupt the text)."""
    w.line(header)
    with w.indented():
        yield
    w.line("end")


def _mem_depth(module: ModuleDef, name: str) -> int:
    for mem in module.mems:
        if mem.name == name:
            return mem.depth
    raise KeyError(name)


_FIELD_KINDS = {
    "valid": "bit",
    "rowok": "bit",
    "colok": "bit",
    "tag": "int",
    "boff": "int",
    "val": "f64",
}


def _instance_port_kind(port_name: str) -> str:
    """Kind of a ``pe`` output port, recovered from its field name."""
    if port_name == "err":
        return "bit"
    parts = port_name.split("_")  # w_valid_out / w_val_0_out
    if len(parts) >= 3 and parts[1] in _FIELD_KINDS:
        return _FIELD_KINDS[parts[1]]
    raise ValueError(f"unknown pe port {port_name!r}")


def render_verilog(top: ModuleDef, pe: ModuleDef, plan: RtlPlan) -> str:
    """Verilog-2001 text for the two modules (pe first)."""
    design = plan.design
    shape = design.shape
    w = CodeWriter()
    w.comment(f"Systolic array RTL for design {design.signature}")
    w.comment(
        f"{shape.rows}x{shape.cols} PEs, {shape.vector} SIMD lanes, "
        f"per-PE acc box {plan.box} words "
        f"({'x'.join(str(d) for d in plan.box_dims)})"
    )
    w.comment("Data is IEEE binary64 carried as [63:0]; arithmetic in `real`.")
    w.line()
    _render_module(w, pe)
    w.line()
    _render_module(w, top)
    return w.render()


def generate_rtl(design: DesignPoint, platform: Any = None) -> str:
    """The complete Verilog source for one design point.

    Args:
        design: the design to lower.
        platform: accepted for backend-signature uniformity; the RTL
            structure depends only on the design.

    Raises:
        DiagnosticError: ``SA150`` when the design is not lowerable.
    """
    top, pe, plan = build_rtl_modules(design)
    return render_verilog(top, pe, plan)


def rtl_module_hash(source: str) -> str:
    """Stable content hash of emitted Verilog (for golden fixtures)."""
    return hashlib.sha256(source.encode()).hexdigest()


__all__ = [
    "Instance",
    "Mem",
    "MemClear",
    "MemWrite",
    "ModuleDef",
    "Port",
    "Reg",
    "RegSet",
    "RTL_MAX_BOX",
    "RtlPlan",
    "Wire",
    "build_pe_module",
    "build_rtl_modules",
    "build_top_module",
    "expr_signals",
    "generate_rtl",
    "plan_rtl",
    "render_verilog",
    "rtl_module_hash",
]
