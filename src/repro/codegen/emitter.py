"""A small indentation-aware code writer used by all generators."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class CodeWriter:
    """Accumulates source lines with managed indentation.

    Usage::

        w = CodeWriter()
        w.line("int main(void) {")
        with w.indented():
            w.line("return 0;")
        w.line("}")
        text = w.render()
    """

    def __init__(self, indent_unit: str = "    ") -> None:
        self._lines: list[str] = []
        self._depth = 0
        self._unit = indent_unit

    def line(self, text: str = "") -> None:
        """Emit one line at the current indentation (blank stays blank)."""
        if text:
            self._lines.append(self._unit * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, *texts: str) -> None:
        """Emit several lines."""
        for text in texts:
            self.line(text)

    def comment(self, text: str) -> None:
        """Emit a // comment."""
        self.line(f"// {text}")

    @contextmanager
    def indented(self) -> Iterator[None]:
        """Indent one level inside the context."""
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1

    @contextmanager
    def block(self, header: str, footer: str = "}") -> Iterator[None]:
        """Emit ``header {`` ... ``footer`` around the context."""
        self.line(header + " {")
        with self.indented():
            yield
        self.line(footer)

    def render(self) -> str:
        """The accumulated source text (trailing newline included)."""
        return "\n".join(self._lines) + "\n"


__all__ = ["CodeWriter"]
