"""Runtime-parameterized (unified) kernel generation.

The unified deployment of Section 5.3 runs *every* conv layer of a
network on one hardware design.  The PE-array shape is frozen into the
bitstream, but loop bounds and data-reuse (middle) bounds are ordinary
loop limits — runtime arguments of the kernel — as long as every layer's
block footprint fits the synthesized buffers.  This module emits that
kernel:

* buffer capacities are compile-time constants derived from the
  *envelope* (per-loop maxima over the network's layers, with the
  selected middle bounds);
* original loop bounds ``N_*`` and middle bounds ``S_*`` are function
  parameters; array extents and row-major strides are computed from them
  at runtime;
* a guard rejects invocations whose block footprint would overflow the
  buffers (the contract the DSE maintains).

:func:`generate_unified_testbench` emits a ``main`` that runs several
layer shapes through the *same* kernel instance and checks each against
a naive reference — executing, in C, exactly the deployment model the
multi-layer DSE assumes.  Compiled and run by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.access import ArrayAccess
from repro.ir.loop import LoopNest
from repro.model.mapping import Mapping
from repro.model.design_point import ArrayShape
from repro.model.platform import Platform
from repro.codegen.emitter import CodeWriter
from repro.codegen.testbench import _check_identifier, _ctypes, _subscript


@dataclass(frozen=True)
class UnifiedLayerSpec:
    """One layer invocation of the unified kernel.

    Attributes:
        name: label.
        bounds: iterator -> original trip count N_l.
        middle: iterator -> middle bound S_l for this layer.
    """

    name: str
    bounds: dict[str, int]
    middle: dict[str, int]


def _buffer_dim_expr(access: ArrayAccess, dim: int, prefix: str) -> str:
    """C expression for one array dimension's extent from runtime bounds."""
    expr = access.indices[dim]
    parts = []
    for name, coeff in expr.terms:
        term = f"({prefix}{name} - 1)"
        parts.append(term if coeff == 1 else f"{coeff} * {term}")
    parts.append("1")
    return " + ".join(parts)


def _envelope_extents(
    template: LoopNest, specs: tuple[UnifiedLayerSpec, ...], shape_of: dict[str, int]
) -> dict[str, int]:
    """Per-loop maximum block extent b_l = S_l * t_l over all specs."""
    extents: dict[str, int] = {}
    for it in template.iterators:
        extents[it] = max(
            spec.middle.get(it, 1) * shape_of.get(it, 1) for spec in specs
        )
    return extents


def generate_unified_kernel(
    template: LoopNest,
    mapping: Mapping,
    shape: ArrayShape,
    specs: tuple[UnifiedLayerSpec, ...],
    platform: Platform,
    *,
    name: str = "systolic_conv_rt",
) -> str:
    """Emit the runtime-parameterized kernel.

    Args:
        template: a nest giving the loop order and access functions (any
            layer's nest works — bounds are ignored).
        mapping: the frozen loop-to-architecture assignment.
        shape: the frozen PE-array shape.
        specs: the layers the kernel must accommodate (buffer sizing).
        platform: datatype for C types.
        name: kernel function name.
    """
    iterators = template.iterators
    out = template.output
    reads = template.reads
    ctypes = _ctypes(platform)
    weight = max(reads, key=lambda a: a.rank)
    feature = next(a for a in reads if a is not weight)
    type_of = {out.array: ctypes["out"], weight.array: ctypes["w"], feature.array: ctypes["in"]}
    for access in template.accesses:
        _check_identifier(access.array)
    shape_of = {mapping.row: shape.rows, mapping.col: shape.cols, mapping.vector: shape.vector}
    inner_of = {mapping.row: "x", mapping.col: "y", mapping.vector: "v"}
    envelope = _envelope_extents(template, specs, shape_of)

    w = CodeWriter()
    w.comment(f"Unified runtime-parameterized systolic kernel ({shape} frozen,")
    w.comment("loop and reuse bounds as arguments; buffers sized for the envelope).")
    w.line()
    for it in iterators:
        w.line(f"#define T_{it} {shape_of.get(it, 1)}")
        w.line(f"#define BMAX_{it} {envelope[it]}")
    w.line(f"#define ROWS T_{mapping.row}")
    w.line(f"#define COLS T_{mapping.col}")
    w.line(f"#define VEC  T_{mapping.vector}")
    w.line()

    bound_args = ", ".join(f"int N_{it}" for it in iterators)
    middle_args = ", ".join(f"int S_{it}" for it in iterators)
    tensor_args = ", ".join(
        f"__global {type_of[a.array]} *{'' if a.is_write else ' const'} restrict g_{a.array}"
        for a in template.accesses
    )
    w.comment("Returns 0 on success, 1 if a block would overflow the buffers;")
    w.comment("wrapped by a thin __kernel void entry in the OpenCL build.")
    with w.block(f"int {name}({tensor_args}, {bound_args}, {middle_args})"):
        w.comment("Runtime block extents and buffer-capacity guard.")
        for it in iterators:
            w.line(f"int B_{it} = S_{it} * T_{it};")
            w.line(f"if (B_{it} > BMAX_{it}) return 1;  /* buffers too small */")
        w.comment("Runtime array extents (row-major) from the loop bounds.")
        for access in template.accesses:
            for d in range(access.rank):
                w.line(
                    f"int dim_{access.array}_{d} = {_buffer_dim_expr(access, d, 'N_')};"
                )
            # row-major strides
            for d in range(access.rank - 1, -1, -1):
                if d == access.rank - 1:
                    w.line(f"long str_{access.array}_{d} = 1;")
                else:
                    w.line(
                        f"long str_{access.array}_{d} = "
                        f"str_{access.array}_{d + 1} * dim_{access.array}_{d + 1};"
                    )
        w.comment("On-chip buffers at envelope capacity (double-buffered).")
        for access in template.accesses:
            # buffer dims must be compile-time: use the envelope constants
            comp_dims = "".join(
                "[" + _buffer_dim_expr(access, d, "BMAX_") + "]"
                for d in range(access.rank)
            )
            w.line(f"__local {type_of[access.array]} buf_{access.array}[2]{comp_dims};")
        w.line("int pp = 0;")
        w.line()
        for it in iterators:
            w.line(f"for (int blk_{it} = 0; blk_{it} < N_{it}; blk_{it} += B_{it})")
        with w.block(""):
            w.comment("Load phase (runtime extents, zero-padded edges).")
            for access in reads:
                for d in range(access.rank):
                    w.line(
                        f"for (int u{d} = 0; u{d} < "
                        f"({_buffer_dim_expr(access, d, 'B_')}); u{d}++)"
                    )
                local_idx = "".join(f"[u{d}]" for d in range(access.rank))
                conds = []
                flat_parts = []
                for d in range(access.rank):
                    base = _subscript(access, d, lambda n: f"blk_{n}")
                    conds.append(f"({base} + u{d}) < dim_{access.array}_{d}")
                    flat_parts.append(
                        f"(long)({base} + u{d}) * str_{access.array}_{d}"
                    )
                with w.indented():
                    w.line(
                        f"buf_{access.array}[pp]{local_idx} = "
                        f"({' && '.join(conds)}) ? "
                        f"g_{access.array}[{' + '.join(flat_parts)}] : 0;"
                    )
            w.comment("Zero the output accumulator buffer.")
            for d in range(out.rank):
                w.line(
                    f"for (int u{d} = 0; u{d} < ({_buffer_dim_expr(out, d, 'B_')}); u{d}++)"
                )
            with w.indented():
                w.line(
                    f"buf_{out.array}[pp]"
                    + "".join(f"[u{d}]" for d in range(out.rank))
                    + " = 0;"
                )
            w.line()
            w.comment("Compute phase.")
            for it in iterators:
                w.line(f"for (int m_{it} = 0; m_{it} < S_{it}; m_{it}++)")
            with w.block(""):
                w.line("#pragma unroll")
                w.line("for (int x = 0; x < ROWS; x++)")
                w.line("#pragma unroll")
                w.line("for (int y = 0; y < COLS; y++)")
                with w.block(""):
                    acc_type = "double" if type_of[out.array] == "float" else "long long"
                    w.line(f"{acc_type} sum = 0;")
                    w.line("#pragma unroll")
                    with w.block("for (int v = 0; v < VEC; v++)"):
                        for it in iterators:
                            w.line(f"int l_{it} = m_{it} * T_{it} + {inner_of.get(it, '0')};")
                        local = lambda a: "".join(
                            f"[{_subscript(a, d, lambda n: f'l_{n}')}]"
                            for d in range(a.rank)
                        )
                        w.line(
                            f"sum += ({acc_type})buf_{weight.array}[pp]{local(weight)}"
                            f" * ({acc_type})buf_{feature.array}[pp]{local(feature)};"
                        )
                    out_locals = {
                        it: f"(m_{it} * T_{it} + {inner_of.get(it, '0')})"
                        for it in iterators
                        if out.depends_on(it)
                    }
                    out_sub = "".join(
                        f"[{_subscript(out, d, lambda n: out_locals[n])}]"
                        for d in range(out.rank)
                    )
                    w.line(f"buf_{out.array}[pp]{out_sub} += ({type_of[out.array]})sum;")
            w.line()
            w.comment("Drain phase (guarded, accumulating partial sums).")
            out_iters = [it for it in iterators if out.depends_on(it)]
            for it in out_iters:
                w.line(f"for (int l_{it} = 0; l_{it} < B_{it}; l_{it}++)")
            with w.block(""):
                conds = " && ".join(f"blk_{it} + l_{it} < N_{it}" for it in out_iters)
                flat_parts = [
                    f"(long)({_subscript(out, d, lambda n: f'(blk_{n} + l_{n})')}) "
                    f"* str_{out.array}_{d}"
                    for d in range(out.rank)
                ]
                local_sub = "".join(
                    f"[{_subscript(out, d, lambda n: f'l_{n}')}]" for d in range(out.rank)
                )
                w.line(
                    f"if ({conds}) g_{out.array}[{' + '.join(flat_parts)}] += "
                    f"buf_{out.array}[pp]{local_sub};"
                )
            w.line("pp = 1 - pp;")
        w.line("return 0;")
    return w.render()


def generate_unified_testbench(
    template: LoopNest,
    mapping: Mapping,
    shape: ArrayShape,
    specs: tuple[UnifiedLayerSpec, ...],
    platform: Platform,
    *,
    kernel_file: str = "unified_kernel.cl",
) -> str:
    """A driver running every layer spec through one kernel instance."""
    iterators = template.iterators
    out = template.output
    reads = template.reads
    ctypes = _ctypes(platform)
    weight = max(reads, key=lambda a: a.rank)
    feature = next(a for a in reads if a is not weight)
    type_of = {out.array: ctypes["out"], weight.array: ctypes["w"], feature.array: ctypes["in"]}
    is_float = platform.datatype.is_floating_point

    def max_flat(access: ArrayAccess) -> int:
        worst = 0
        for spec in specs:
            total = 1
            for d in range(access.rank):
                lo, hi = access.indices[d].value_range(spec.bounds)
                total *= hi + 1
            worst = max(worst, total)
        return worst

    w = CodeWriter()
    w.comment(f"Unified-deployment driver: {len(specs)} layer shapes, one kernel.")
    w.lines("#include <stdio.h>", "#include <stdlib.h>", "#include <math.h>", "#include <string.h>")
    w.line('#include "opencl_shim.h"')
    w.line(f'#include "{kernel_file}"')
    w.line()
    for access in template.accesses:
        w.line(f"static {type_of[access.array]} A_{access.array}[{max_flat(access)}];")
    ref_type = "double" if is_float else type_of[out.array]
    w.line(f"static {ref_type} A_ref[{max_flat(out)}];")
    w.line()
    w.line("static unsigned lcg_state;")
    with w.block("static double lcg(void)"):
        w.line("lcg_state = lcg_state * 1664525u + 1013904223u;")
        w.line("return ((double)(lcg_state >> 8) / (double)(1u << 24)) * 2.0 - 1.0;")
    w.line()

    # Reference with runtime bounds via parameters.
    bound_params = ", ".join(f"int N_{it}" for it in iterators)
    with w.block(f"static void reference({bound_params})"):
        for access in template.accesses:
            for d in range(access.rank):
                w.line(f"int dim_{access.array}_{d} = {_buffer_dim_expr(access, d, 'N_')};")
            for d in range(access.rank - 1, -1, -1):
                if d == access.rank - 1:
                    w.line(f"long str_{access.array}_{d} = 1;")
                else:
                    w.line(
                        f"long str_{access.array}_{d} = "
                        f"str_{access.array}_{d + 1} * dim_{access.array}_{d + 1};"
                    )
        for it in iterators:
            w.line(f"for (int {it} = 0; {it} < N_{it}; {it}++)")
        flat = lambda a: " + ".join(
            f"(long)({_subscript(a, d, lambda n: n)}) * str_{a.array}_{d}"
            for d in range(a.rank)
        )
        with w.indented():
            w.line(
                f"A_ref[{flat(out)}] += "
                f"A_{weight.array}[{flat(weight)}] * A_{feature.array}[{flat(feature)}];"
            )
    w.line()
    with w.block("int main(void)"):
        w.line("int failures = 0;")
        for index, spec in enumerate(specs):
            w.comment(f"--- layer {spec.name}: bounds {spec.bounds}, middle {spec.middle} ---")
            with w.block("", footer="}"):
                w.line(f"lcg_state = {1000 + index}u;")
                for access in reads:
                    total = 1
                    for d in range(access.rank):
                        _lo, hi = access.indices[d].value_range(spec.bounds)
                        total *= hi + 1
                    fill = "lcg()" if is_float else "(int)(100.0 * lcg())"
                    w.line(
                        f"for (long k = 0; k < {total}L; k++) "
                        f"A_{access.array}[k] = ({type_of[access.array]}){fill};"
                    )
                out_total = 1
                for d in range(out.rank):
                    lo, hi = out.indices[d].value_range(spec.bounds)
                    out_total *= hi + 1
                w.line(f"memset(A_{out.array}, 0, sizeof(A_{out.array}[0]) * {out_total}L);")
                w.line(f"memset(A_ref, 0, sizeof(A_ref[0]) * {out_total}L);")
                bounds_vals = ", ".join(str(spec.bounds[it]) for it in iterators)
                middle_vals = ", ".join(str(spec.middle.get(it, 1)) for it in iterators)
                w.line(f"reference({bounds_vals});")
                tensor_vals = ", ".join(f"A_{a.array}" for a in template.accesses)
                w.line(
                    f"int rc = systolic_conv_rt({tensor_vals}, {bounds_vals}, {middle_vals});"
                )
                w.line(
                    f'if (rc) {{ printf("UNIFIED FAIL {spec.name}: buffer overflow\\n"); '
                    "return 1; }"
                )
                if is_float:
                    w.line("double worst = 0.0, scale = 0.0;")
                    w.line(
                        f"for (long k = 0; k < {out_total}L; k++) "
                        "if (fabs(A_ref[k]) > scale) scale = fabs(A_ref[k]);"
                    )
                    w.line(
                        f"for (long k = 0; k < {out_total}L; k++) {{ "
                        f"double e = fabs((double)A_{out.array}[k] - A_ref[k]); "
                        "if (e > worst) worst = e; }"
                    )
                    w.line(
                        'if (worst > 2e-3 * (scale + 1e-9)) { '
                        f'printf("UNIFIED FAIL {spec.name} worst=%g\\n", worst); failures++; }} '
                        f'else printf("UNIFIED OK {spec.name} worst=%g\\n", worst);'
                    )
                else:
                    w.line(
                        f"for (long k = 0; k < {out_total}L; k++) "
                        f"if (A_{out.array}[k] != A_ref[k]) {{ "
                        f'printf("UNIFIED FAIL {spec.name} at %ld\\n", k); return 1; }}'
                    )
                    w.line(f'printf("UNIFIED OK {spec.name} exact\\n");')
        w.line('if (!failures) printf("UNIFIED PASS all layers\\n");')
        w.line("return failures ? 1 : 0;")
    return w.render()


__all__ = [
    "UnifiedLayerSpec",
    "generate_unified_kernel",
    "generate_unified_testbench",
]
