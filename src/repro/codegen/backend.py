"""The multi-backend codegen layer.

Historically this package emitted one fixed artifact set (OpenCL kernel,
host, C testbench).  With the RTL backend the package is a *layer*: a
shared emitter core (:mod:`repro.codegen.emitter`) plus per-target
backends behind one protocol.  A backend maps a design point to named
source artifacts; callers iterate backends rather than hard-coding
emitter functions, so adding a target means registering one object.

Backends may refuse a design (e.g. the RTL backend raises ``SA150`` for
designs it cannot lower); callers decide whether refusal is an error or
a degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.codegen.host import generate_host
from repro.codegen.opencl import generate_kernel, generate_kernel_driver
from repro.codegen.rtl import generate_rtl
from repro.codegen.testbench import generate_testbench
from repro.model.design_point import DesignPoint
from repro.model.platform import Platform


@runtime_checkable
class CodegenBackend(Protocol):
    """One code-generation target.

    Attributes:
        name: registry key (e.g. ``"opencl"``, ``"rtl"``).
        language: the emitted language, for reports/UIs.
        artifacts: the artifact names :meth:`emit` returns, in order.
    """

    name: str
    language: str
    artifacts: tuple[str, ...]

    def emit(self, design: DesignPoint, platform: Platform) -> dict[str, str]:
        """Map a design point to ``{artifact name: source text}``.

        Raises:
            DiagnosticError: when the design cannot be lowered to this
                target (diagnostic codes are backend-specific).
        """
        ...


@dataclass(frozen=True)
class _FunctionBackend:
    """A backend assembled from per-artifact emitter functions."""

    name: str
    language: str
    emitters: tuple[tuple[str, Callable[[DesignPoint, Platform], str]], ...]

    @property
    def artifacts(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.emitters)

    def emit(self, design: DesignPoint, platform: Platform) -> dict[str, str]:
        return {name: fn(design, platform) for name, fn in self.emitters}


OPENCL_BACKEND: CodegenBackend = _FunctionBackend(
    name="opencl",
    language="OpenCL C",
    emitters=(
        ("kernel", generate_kernel),
        ("driver", generate_kernel_driver),
        ("host", generate_host),
    ),
)

TESTBENCH_BACKEND: CodegenBackend = _FunctionBackend(
    name="testbench",
    language="C",
    emitters=(("testbench", generate_testbench),),
)

RTL_BACKEND: CodegenBackend = _FunctionBackend(
    name="rtl",
    language="Verilog-2001",
    emitters=(("rtl", generate_rtl),),
)

BACKENDS: dict[str, CodegenBackend] = {
    backend.name: backend
    for backend in (OPENCL_BACKEND, TESTBENCH_BACKEND, RTL_BACKEND)
}


def get_backend(name: str) -> CodegenBackend:
    """The registered backend, or a ``KeyError`` naming the options."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise KeyError(f"unknown codegen backend {name!r} (known: {known})") from None


__all__ = [
    "BACKENDS",
    "CodegenBackend",
    "OPENCL_BACKEND",
    "RTL_BACKEND",
    "TESTBENCH_BACKEND",
    "get_backend",
]
