"""C++ host program emission (the right-hand output of Fig. 6).

The host allocates device buffers, pads/reorders tensors, enqueues the
systolic kernel once per data block schedule invocation (grouped layers
run once per group), and reads results back.  It targets the standard
OpenCL 1.2 host API as used by the Intel FPGA SDK for OpenCL runtime;
with no OpenCL runtime available here it is emitted and content-checked
but not compiled.
"""

from __future__ import annotations

from repro.model.design_point import DesignPoint
from repro.model.platform import Platform
from repro.codegen.emitter import CodeWriter
from repro.codegen.testbench import _ctypes, _global_dim


def generate_host(
    design: DesignPoint,
    platform: Platform,
    *,
    kernel_name: str = "systolic_conv",
    binary_name: str = "systolic.aocx",
) -> str:
    """Emit the C++ host source for one design point."""
    nest = design.nest
    bounds = nest.bounds
    ctypes = _ctypes(platform)
    out = nest.output
    reads = nest.reads
    weight = max(reads, key=lambda a: a.rank)
    type_of = {out.array: ctypes["out"]}
    for access in reads:
        type_of[access.array] = ctypes["w"] if access is weight else ctypes["in"]

    sizes = {
        a.array: " * ".join(str(_global_dim(a, bounds, d)) for d in range(a.rank))
        for a in nest.accesses
    }

    w = CodeWriter()
    w.comment(f"Auto-generated OpenCL host program for {design.signature}")
    w.comment(f"Kernel binary: {binary_name} (Intel FPGA SDK for OpenCL)")
    w.lines(
        "#include <CL/cl.h>",
        "#include <cstdio>",
        "#include <cstdlib>",
        "#include <cstring>",
        "#include <vector>",
        "#include <fstream>",
    )
    w.line()
    for access in nest.accesses:
        w.line(f"static const size_t SIZE_{access.array} = {sizes[access.array]};")
    w.line()
    w.lines(
        "#define CL_CHECK(status)                                                \\",
        "    do {                                                                \\",
        "        if ((status) != CL_SUCCESS) {                                   \\",
        '            std::fprintf(stderr, "OpenCL error %d at %s:%d\\n",          \\',
        "                         (status), __FILE__, __LINE__);                 \\",
        "            std::exit(1);                                               \\",
        "        }                                                               \\",
        "    } while (0)",
    )
    w.line()
    with w.block("static std::vector<unsigned char> load_binary(const char *path)"):
        w.line("std::ifstream f(path, std::ios::binary | std::ios::ate);")
        w.line('if (!f) { std::fprintf(stderr, "cannot open %s\\n", path); std::exit(1); }')
        w.line("std::streamsize n = f.tellg();")
        w.line("f.seekg(0);")
        w.line("std::vector<unsigned char> blob(static_cast<size_t>(n));")
        w.line("f.read(reinterpret_cast<char *>(blob.data()), n);")
        w.line("return blob;")
    w.line()
    with w.block("int main(int argc, char **argv)"):
        w.line(f'const char *binary_path = argc > 1 ? argv[1] : "{binary_name}";')
        w.line("cl_int status;")
        w.comment("Platform / device / context / queue.")
        w.lines(
            "cl_platform_id platform_id;",
            "CL_CHECK(clGetPlatformIDs(1, &platform_id, nullptr));",
            "cl_device_id device;",
            "CL_CHECK(clGetDeviceIDs(platform_id, CL_DEVICE_TYPE_ACCELERATOR, 1, &device, nullptr));",
            "cl_context context = clCreateContext(nullptr, 1, &device, nullptr, nullptr, &status);",
            "CL_CHECK(status);",
            "cl_command_queue queue = clCreateCommandQueue(context, device, "
            "CL_QUEUE_PROFILING_ENABLE, &status);",
            "CL_CHECK(status);",
        )
        w.comment("Program from the precompiled FPGA bitstream.")
        w.lines(
            "std::vector<unsigned char> blob = load_binary(binary_path);",
            "const unsigned char *blob_ptr = blob.data();",
            "size_t blob_size = blob.size();",
            "cl_program program = clCreateProgramWithBinary(context, 1, &device, "
            "&blob_size, &blob_ptr, nullptr, &status);",
            "CL_CHECK(status);",
            "CL_CHECK(clBuildProgram(program, 1, &device, \"\", nullptr, nullptr));",
            f'cl_kernel kernel = clCreateKernel(program, "{kernel_name}", &status);',
            "CL_CHECK(status);",
        )
        w.comment("Host tensors (caller fills these from the CNN model).")
        for access in nest.accesses:
            w.line(
                f"std::vector<{type_of[access.array]}> h_{access.array}(SIZE_{access.array});"
            )
        w.comment("Device buffers.")
        for access in nest.accesses:
            flags = "CL_MEM_WRITE_ONLY" if access.is_write else "CL_MEM_READ_ONLY"
            w.line(
                f"cl_mem d_{access.array} = clCreateBuffer(context, {flags}, "
                f"SIZE_{access.array} * sizeof({type_of[access.array]}), nullptr, &status);"
            )
            w.line("CL_CHECK(status);")
        for access in reads:
            w.line(
                f"CL_CHECK(clEnqueueWriteBuffer(queue, d_{access.array}, CL_TRUE, 0, "
                f"SIZE_{access.array} * sizeof({type_of[access.array]}), "
                f"h_{access.array}.data(), 0, nullptr, nullptr));"
            )
        w.comment("Kernel arguments follow the access order of the nest.")
        for position, access in enumerate(nest.accesses):
            w.line(
                f"CL_CHECK(clSetKernelArg(kernel, {position}, sizeof(cl_mem), &d_{access.array}));"
            )
        w.comment("Launch (single work-item kernel) and time it.")
        w.lines(
            "cl_event done;",
            "CL_CHECK(clEnqueueTask(queue, kernel, 0, nullptr, &done));",
            "CL_CHECK(clWaitForEvents(1, &done));",
            "cl_ulong t0 = 0, t1 = 0;",
            "CL_CHECK(clGetEventProfilingInfo(done, CL_PROFILING_COMMAND_START, "
            "sizeof(t0), &t0, nullptr));",
            "CL_CHECK(clGetEventProfilingInfo(done, CL_PROFILING_COMMAND_END, "
            "sizeof(t1), &t1, nullptr));",
        )
        w.line(
            f"CL_CHECK(clEnqueueReadBuffer(queue, d_{out.array}, CL_TRUE, 0, "
            f"SIZE_{out.array} * sizeof({type_of[out.array]}), h_{out.array}.data(), "
            "0, nullptr, nullptr));"
        )
        effective_ops = nest.total_operations
        w.line(f"double gops = {effective_ops}.0 / (double)(t1 - t0);")
        w.line('std::printf("kernel time %.3f ms, %.1f Gops\\n", (t1 - t0) / 1e6, gops);')
        w.comment("Cleanup.")
        for access in nest.accesses:
            w.line(f"clReleaseMemObject(d_{access.array});")
        w.lines(
            "clReleaseKernel(kernel);",
            "clReleaseProgram(program);",
            "clReleaseCommandQueue(queue);",
            "clReleaseContext(context);",
            "return 0;",
        )
    return w.render()


__all__ = ["generate_host"]
