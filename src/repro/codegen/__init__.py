"""Code generation (the right half of the paper's Fig. 6).

The design options chosen by the DSE "are parameterized to instantiate
template files, including OpenCL systolic array implementation (kernel),
as well as the C/C++ software program (host)".  This package emits:

* :mod:`repro.codegen.opencl` — the Intel-style single-work-item OpenCL
  kernel: parameter header, double-buffered IB/WB chains, the PE array as
  fully unrolled shift registers, OB drain;
* :mod:`repro.codegen.host` — the C++ host program;
* :mod:`repro.codegen.testbench` — a self-contained plain-C testbench
  implementing the *same* block/buffer/schedule semantics, plus a naive
  reference and a comparison ``main``; with a C compiler available the
  testbench is compiled and executed, giving true end-to-end functional
  validation of the generated design;
* :mod:`repro.codegen.rtl` — a structural Verilog-2001 emitter for the
  PE array (shift-register chains, ping-pong accumulators), interpreted
  by :mod:`repro.sim.rtl` and cross-checked under iverilog.

Targets sit behind the :class:`repro.codegen.backend.CodegenBackend`
protocol; :data:`repro.codegen.backend.BACKENDS` is the registry.
"""

from repro.codegen.backend import BACKENDS, CodegenBackend, get_backend
from repro.codegen.emitter import CodeWriter
from repro.codegen.host import generate_host
from repro.codegen.opencl import OPENCL_SHIM, generate_kernel, generate_kernel_driver
from repro.codegen.rtl import generate_rtl, rtl_module_hash
from repro.codegen.testbench import (
    compile_and_run_testbench,
    generate_testbench,
)
from repro.codegen.unified import (
    UnifiedLayerSpec,
    generate_unified_kernel,
    generate_unified_testbench,
)

__all__ = [
    "BACKENDS",
    "CodeWriter",
    "CodegenBackend",
    "OPENCL_SHIM",
    "UnifiedLayerSpec",
    "compile_and_run_testbench",
    "generate_host",
    "generate_kernel",
    "generate_kernel_driver",
    "generate_rtl",
    "generate_testbench",
    "generate_unified_kernel",
    "generate_unified_testbench",
    "get_backend",
    "rtl_module_hash",
]
