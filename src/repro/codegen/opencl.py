"""OpenCL systolic kernel emission.

Emits an Intel-FPGA-style single-work-item kernel realizing the design:
``#define`` parameter header, double-buffered on-chip reuse buffers
(IB/WB/OB), and the PE array as fully unrolled shift registers with
boundary refill — weights propagating right along rows, inputs down
columns, per-PE SIMD accumulation (Figs. 1–3).  In the sequential
single-work-item formulation the register chains are combinational within
one wave (exactly how the Intel systolic reference expresses them; the
HLS compiler retimes them into the skewed pipeline), so the kernel is
*functionally* executable as plain C99.

With no OpenCL toolchain in this environment, the kernel is validated by
compiling it with the host C compiler against :data:`OPENCL_SHIM`
(``__kernel``/``__global`` erased, ``__local`` lowered to ``static``)
together with a generated driver (:func:`generate_kernel_driver`) that
runs it against a naive reference — the same check the plain-C testbench
performs, applied to the shipped artifact itself.
"""

from __future__ import annotations

from repro.model.design_point import DesignPoint
from repro.model.platform import Platform
from repro.codegen.emitter import CodeWriter
from repro.codegen.testbench import _ctypes, _global_dim, _local_dim, _subscript


OPENCL_SHIM = """\
/* Shim so a host C compiler can compile OpenCL C kernels as C99.      */
/* __local on-chip buffers become statics (they are per-kernel state). */
#ifndef OPENCL_SHIM_H
#define OPENCL_SHIM_H
#define __kernel
#define __global
#define __local static
#define __constant const
#define __private
#endif
"""


def _kernel_types(design: DesignPoint, platform: Platform) -> dict[str, str]:
    """C type per array name for this design/precision."""
    ctypes = _ctypes(platform)
    nest = design.nest
    type_of = {nest.output.array: ctypes["out"]}
    reads = nest.reads
    weight = max(reads, key=lambda a: a.rank)
    for access in reads:
        type_of[access.array] = ctypes["w"] if access is weight else ctypes["in"]
    return type_of


def _flat_index(access, bounds, term) -> str:
    """Row-major flattened global index expression."""
    strides = []
    total = 1
    for d in reversed(range(access.rank)):
        strides.insert(0, total)
        total *= _global_dim(access, bounds, d)
    parts = []
    for d in range(access.rank):
        sub = _subscript(access, d, term(d))
        parts.append(f"({sub}) * {strides[d]}" if strides[d] != 1 else f"({sub})")
    return " + ".join(parts)


def generate_kernel(
    design: DesignPoint, platform: Platform, *, name: str = "systolic_conv"
) -> str:
    """Emit the OpenCL kernel source for one design point."""
    nest = design.nest
    iterators = nest.iterators
    bounds = nest.bounds
    tiling = design.tiling
    out = nest.output
    reads = nest.reads
    block_extent = {it: tiling.block_extent(it) for it in iterators}
    inner_of = {
        design.mapping.row: "x",
        design.mapping.col: "y",
        design.mapping.vector: "v",
    }
    type_of = _kernel_types(design, platform)
    weight = max(reads, key=lambda a: a.rank)
    feature = next(a for a in reads if a is not weight)

    w = CodeWriter()
    w.comment(f"Auto-generated systolic array kernel: {design.signature}")
    w.comment(f"Target: {platform.device.name}, {platform.datatype.name}")
    w.comment(
        f"PE array {design.shape.rows} x {design.shape.cols}, SIMD {design.shape.vector}"
    )
    w.line()
    for it in iterators:
        w.line(f"#define N_{it} {bounds[it]}")
        w.line(f"#define T_{it} {tiling.t(it)}")
        w.line(f"#define S_{it} {tiling.s(it)}")
        w.line(f"#define B_{it} {block_extent[it]}")
    w.line(f"#define ROWS T_{design.mapping.row}")
    w.line(f"#define COLS T_{design.mapping.col}")
    w.line(f"#define VEC  T_{design.mapping.vector}")
    w.line()

    args = ", ".join(
        f"__global {type_of[a.array]} *{'' if a.is_write else ' const'} restrict g_{a.array}"
        for a in nest.accesses
    )
    with w.block(f"__kernel void {name}({args})"):
        w.comment("Double-buffered on-chip reuse buffers (ping-pong on `pp`).")
        for access in nest.accesses:
            dims = "".join(
                f"[{_local_dim(access, block_extent, d)}]" for d in range(access.rank)
            )
            w.line(f"__local {type_of[access.array]} buf_{access.array}[2]{dims};")
        w.comment("PE-array shift registers: weights move right, inputs move down.")
        w.line(f"{type_of[weight.array]} w_reg[ROWS][COLS][VEC];")
        w.line(f"{type_of[feature.array]} in_reg[ROWS][COLS][VEC];")
        w.line("int pp = 0;")
        w.line()
        w.comment("Outer loops: one iteration per data block.")
        for it in iterators:
            w.line(f"for (int blk_{it} = 0; blk_{it} < N_{it}; blk_{it} += B_{it})")
        with w.block(""):
            w.comment("Load phase (overlaps the previous block's compute in HW).")
            for access in reads:
                for d in range(access.rank):
                    w.line(
                        f"for (int u{d} = 0; u{d} < "
                        f"{_local_dim(access, block_extent, d)}; u{d}++)"
                    )
                local_idx = "".join(f"[u{d}]" for d in range(access.rank))
                conds = []
                for d in range(access.rank):
                    base = _subscript(access, d, lambda n: f"blk_{n}")
                    hi = _global_dim(access, bounds, d) - 1
                    conds.append(f"({base} + u{d}) <= {hi}")
                cond = " && ".join(conds)
                # global index = base terms + u{d} per dimension
                flat_parts = []
                strides = []
                total = 1
                for d in reversed(range(access.rank)):
                    strides.insert(0, total)
                    total *= _global_dim(access, bounds, d)
                for d in range(access.rank):
                    base = _subscript(access, d, lambda n: f"blk_{n}")
                    term = f"({base} + u{d})"
                    flat_parts.append(
                        f"{term} * {strides[d]}" if strides[d] != 1 else term
                    )
                flat = " + ".join(flat_parts)
                with w.indented():
                    w.line(
                        f"buf_{access.array}[pp]{local_idx} = "
                        f"({cond}) ? g_{access.array}[{flat}] : 0;"
                    )
            w.comment("Zero the output accumulator buffer.")
            for d in range(out.rank):
                w.line(
                    f"for (int u{d} = 0; u{d} < "
                    f"{_local_dim(out, block_extent, d)}; u{d}++)"
                )
            with w.indented():
                w.line(
                    f"buf_{out.array}[pp]"
                    + "".join(f"[u{d}]" for d in range(out.rank))
                    + " = 0;"
                )
            w.line()
            w.comment("Compute phase: waves stream through the PE array.")
            for it in iterators:
                w.line(f"for (int m_{it} = 0; m_{it} < S_{it}; m_{it}++)")
            with w.block(""):
                w.line("#pragma unroll")
                w.line("for (int x = 0; x < ROWS; x++)")
                w.line("#pragma unroll")
                w.line("for (int y = 0; y < COLS; y++)")
                with w.block(""):
                    acc_type = (
                        "double" if type_of[out.array] == "float" else "long long"
                    )
                    w.line(f"{acc_type} sum = 0;")
                    w.line("#pragma unroll")
                    with w.block("for (int v = 0; v < VEC; v++)"):
                        for it in iterators:
                            inner = inner_of.get(it, "0")
                            w.line(f"int l_{it} = m_{it} * T_{it} + {inner};")
                        local = lambda a: "".join(
                            f"[{_subscript(a, d, lambda n: f'l_{n}')}]"
                            for d in range(a.rank)
                        )
                        w.comment("boundary refill, then the shift chains")
                        w.line(
                            f"w_reg[x][y][v] = (y == 0) ? "
                            f"buf_{weight.array}[pp]{local(weight)} : w_reg[x][y-1][v];"
                        )
                        w.line(
                            f"in_reg[x][y][v] = (x == 0) ? "
                            f"buf_{feature.array}[pp]{local(feature)} : in_reg[x-1][y][v];"
                        )
                        w.line(f"sum += ({acc_type})w_reg[x][y][v] * ({acc_type})in_reg[x][y][v];")
                    out_locals = {
                        it: f"(m_{it} * T_{it} + {inner_of.get(it, '0')})"
                        for it in iterators
                        if out.depends_on(it)
                    }
                    out_sub = "".join(
                        f"[{_subscript(out, d, lambda n: out_locals[n])}]"
                        for d in range(out.rank)
                    )
                    w.line(f"buf_{out.array}[pp]{out_sub} += ({type_of[out.array]})sum;")
            w.line()
            w.comment("Drain phase: write the output block back (guarded).")
            out_iters = [it for it in iterators if out.depends_on(it)]
            for it in out_iters:
                w.line(f"for (int l_{it} = 0; l_{it} < B_{it}; l_{it}++)")
            with w.block(""):
                flat = _flat_index(
                    out, bounds, lambda d: (lambda n: f"(blk_{n} + l_{n})")
                )
                local_sub = "".join(
                    f"[{_subscript(out, d, lambda n: f'l_{n}')}]" for d in range(out.rank)
                )
                conds = " && ".join(f"blk_{it} + l_{it} < N_{it}" for it in out_iters)
                w.line(f"if ({conds}) g_{out.array}[{flat}] += buf_{out.array}[pp]{local_sub};")
            w.line("pp = 1 - pp;")
    return w.render()


def generate_kernel_driver(
    design: DesignPoint, platform: Platform, *, kernel_file: str = "kernel.cl"
) -> str:
    """A C driver that includes the kernel (through the shim), runs it on
    pseudo-random data and checks against a naive reference.

    Compile as: ``gcc -O2 driver.c -lm`` (the kernel is #included).
    """
    nest = design.nest
    bounds = nest.bounds
    out = nest.output
    type_of = _kernel_types(design, platform)
    is_float = platform.datatype.is_floating_point

    w = CodeWriter()
    w.comment(f"Driver for generated kernel {kernel_file} ({design.signature}).")
    w.lines("#include <stdio.h>", "#include <stdlib.h>", "#include <math.h>")
    w.line('#include "opencl_shim.h"')
    w.line(f'#include "{kernel_file}"')
    w.line()
    for access in nest.accesses:
        flat = 1
        for d in range(access.rank):
            flat *= _global_dim(access, bounds, d)
        w.line(f"static {type_of[access.array]} A_{access.array}[{flat}];")
    flat_out = 1
    for d in range(out.rank):
        flat_out *= _global_dim(out, bounds, d)
    ref_type = "double" if is_float else type_of[out.array]
    w.line(f"static {ref_type} A_ref[{flat_out}];")
    w.line()
    w.line("static unsigned lcg_state = 99u;")
    with w.block("static double lcg(void)"):
        w.line("lcg_state = lcg_state * 1664525u + 1013904223u;")
        w.line("return ((double)(lcg_state >> 8) / (double)(1u << 24)) * 2.0 - 1.0;")
    w.line()
    with w.block("static void reference(void)"):
        for it in nest.iterators:
            w.line(f"for (int {it} = 0; {it} < N_{it}; {it}++)")
        reads = nest.reads
        with w.indented():
            ref_idx = lambda a: _flat_index(a, bounds, lambda d: (lambda n: n))
            w.line(
                f"A_ref[{ref_idx(out)}] += "
                f"A_{reads[0].array}[{ref_idx(reads[0])}] * "
                f"A_{reads[1].array}[{ref_idx(reads[1])}];"
            )
    w.line()
    with w.block("int main(void)"):
        for access in nest.reads:
            flat = 1
            for d in range(access.rank):
                flat *= _global_dim(access, bounds, d)
            fill = "lcg()" if is_float else "(int)(100.0 * lcg())"
            w.line(
                f"for (long k = 0; k < {flat}L; k++) "
                f"A_{access.array}[k] = ({type_of[access.array]}){fill};"
            )
        w.line("reference();")
        args = ", ".join(f"A_{a.array}" for a in nest.accesses)
        w.line(f"systolic_conv({args});")
        w.comment("Globally normalized error (float accumulation-order noise).")
        w.line("double worst = 0.0, scale = 0.0;")
        w.line(
            f"for (long k = 0; k < {flat_out}L; k++) "
            "if (fabs((double)A_ref[k]) > scale) scale = fabs((double)A_ref[k]);"
        )
        with w.block(f"for (long k = 0; k < {flat_out}L; k++)"):
            w.line(f"double err = fabs((double)A_{out.array}[k] - (double)A_ref[k]);")
            w.line("if (err > worst) worst = err;")
        tolerance = "2e-3" if is_float else "1e-12"
        with w.block(f"if (worst > {tolerance} * (scale + 1e-9))"):
            w.line('printf("KERNEL FAIL worst=%g scale=%g\\n", worst, scale);')
            w.line("return 1;")
        w.line('printf("KERNEL PASS worst=%g scale=%g\\n", worst, scale);')
        w.line("return 0;")
    return w.render()


__all__ = ["OPENCL_SHIM", "generate_kernel", "generate_kernel_driver"]
