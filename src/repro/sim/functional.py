"""Functional validation helpers.

Two facilities:

* :func:`simulate_layer` — run a design point on a layer's tensors through
  the cycle-accurate engine and return the output feature maps, directly
  comparable to the NumPy golden convolution.  The design may target the
  layer's per-group nest; grouped layers are handled by slicing.
* :func:`audit_tiling_coverage` — a pure index-math check that the
  block/middle/inner decomposition visits every original iteration exactly
  once (and padding positions never), for any design on a small nest.
  This is the invariant all simulators and the code generator rely on.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.model.design_point import DesignPoint
from repro.nn.layers import ConvLayer
from repro.nn.golden import pad_input
from repro.sim.engine import SystolicArrayEngine
from repro.sim.schedule import enumerate_blocks, enumerate_waves


def simulate_layer(
    design: DesignPoint,
    layer: ConvLayer,
    inputs: np.ndarray,
    weights: np.ndarray,
    *,
    backend: str = "rtl",
) -> np.ndarray:
    """Execute a conv layer under a design on a simulator backend.

    Args:
        design: a design whose nest is the layer's per-group nest.
        layer: the layer descriptor (for padding/group handling).
        inputs: (I, H, W) tensor.
        weights: (O, I/groups, K, K) tensor.
        backend: ``"rtl"`` for the cycle-accurate engine (exponential;
            small shapes only) or ``"fast"`` for the vectorized wavefront
            simulator — bit-identical outputs, Table-2 scale.

    Returns:
        (O, R, C) output tensor.
    """
    padded = pad_input(inputs, layer.pad)
    groups = layer.groups
    per_group = layer.group_view()
    out = np.zeros(
        (layer.out_channels, layer.out_height, layer.out_width), dtype=np.float64
    )
    in_per_group = layer.in_channels // groups
    out_per_group = layer.out_channels // groups
    if per_group.to_loop_nest().bounds != design.nest.bounds:
        raise ValueError(
            f"design nest bounds {design.nest.bounds} do not match layer "
            f"{layer.name}'s per-group nest {per_group.to_loop_nest().bounds}"
        )
    if backend == "rtl":
        simulator_class = SystolicArrayEngine
    elif backend == "fast":
        from repro.sim.fast import FastWavefrontSimulator

        simulator_class = FastWavefrontSimulator
    else:
        raise ValueError(f"unknown simulator backend {backend!r} (rtl | fast)")
    for g in range(groups):
        engine = simulator_class(design)
        # The engine addresses tensors by array name; the weight tensor is
        # the rank-4 read (o,i,p,q), the feature map the rank-3 read.
        name_arrays = {}
        for access in design.nest.reads:
            if access.rank == 4:
                name_arrays[access.array] = weights[
                    g * out_per_group : (g + 1) * out_per_group
                ]
            else:
                name_arrays[access.array] = padded[
                    g * in_per_group : (g + 1) * in_per_group
                ]
        result = engine.run(name_arrays)
        out[g * out_per_group : (g + 1) * out_per_group] = result.output[
            :out_per_group, : layer.out_height, : layer.out_width
        ]
    return out


def audit_tiling_coverage(design: DesignPoint) -> None:
    """Assert the decomposition covers the iteration space exactly once.

    Walks every (block, wave, PE row, PE column, SIMD lane) of the design
    and reconstructs the original iteration vector; every point of the
    nest's iteration domain must be produced exactly once, and no
    out-of-domain point may be produced except as recognizable padding
    (index >= bound).

    Raises:
        AssertionError: on multiple or missing coverage.
    """
    nest = design.nest
    tiling = design.tiling
    iterators = nest.iterators
    bounds = nest.bounds
    inner_roles = {
        design.mapping.row: design.shape.rows,
        design.mapping.col: design.shape.cols,
        design.mapping.vector: design.shape.vector,
    }
    seen: Counter[tuple[int, ...]] = Counter()
    for block in enumerate_blocks(design.tiled, clip=True):
        bases = block.base_map
        for wave in enumerate_waves(block, iterators):
            inner_ranges = [range(inner_roles.get(it, 1)) for it in iterators]
            import itertools

            for inner in itertools.product(*inner_ranges):
                idx = tuple(
                    bases[it] + wave[it] * tiling.t(it) + k
                    for it, k in zip(iterators, inner)
                )
                if all(v < bounds[it] for it, v in zip(iterators, idx)):
                    seen[idx] += 1
    expected = nest.total_iterations
    assert len(seen) == expected, (
        f"coverage holes: visited {len(seen)} of {expected} iterations"
    )
    duplicates = {k: v for k, v in seen.items() if v != 1}
    assert not duplicates, f"{len(duplicates)} iterations visited more than once"


__all__ = ["audit_tiling_coverage", "simulate_layer"]
