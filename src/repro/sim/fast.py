"""Fast vectorized wavefront simulator.

The cycle-accurate engine (:mod:`repro.sim.engine`) interprets the array
one PE and one cycle at a time and is exponential in problem size by
construction.  This module simulates the *same architecture* — the same
block/wave decomposition, the same skewed injection schedule, the same
per-PE SIMD accumulation — as NumPy batch operations over whole waves:

* **skewed injection as index arithmetic** — wave ``m`` meets PE
  ``(x, y)`` at cycle ``m + x + y``, so the set of (wave, PE) pairings is
  known in closed form and never needs shift registers;
* **vectorized operand gathers** — every affine subscript decomposes as
  ``A[m] + c_row * x + c_vec * v`` (and symmetrically for columns), so a
  whole chunk of waves is fetched with one fancy-indexing expression per
  array dimension;
* **SIMD accumulation in engine order** — per-PE dot products are
  evaluated lane-by-lane (``D += W_lane * I_lane``), the exact
  :func:`repro.sim.engine.simd_dot` operation sequence, and folded into
  per-PE accumulators with ``np.add.at`` (unbuffered, applied in array
  order) laid out wave-major, so every accumulator sees the same IEEE
  additions in the same order as the engine's;
* **closed-form cycle accounting** — a block of M waves takes
  ``M + R + C - 2`` cycles and keeps every PE busy for exactly
  ``M * R * C`` PE-cycles, so the counters need no cycle loop at all.

The result is **bit-identical** to :class:`SystolicArrayEngine` — the
output tensor equal with ``==``, every counter equal — while full
Table-2 layer shapes complete in seconds (see
``benchmarks/bench_sim_fast.py`` and ``docs/simulation.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ir.access import ArrayAccess
from repro.model.design_point import DesignPoint
from repro.resilience.faults import maybe_inject
from repro.sim.engine import EngineResult
from repro.sim.schedule import (
    BlockSpec,
    enumerate_blocks,
    first_all_active_cycle,
    wave_schedule_cycles,
)


@dataclass(frozen=True)
class CycleStatistics:
    """Closed-form cycle accounting for a design (no simulation run).

    These are the analytical counterparts of the engine counters, derived
    from the tiling alone: under clipped-middle semantics loop ``l``
    contributes ``ceil(N_l / t_l)`` middle steps in total, so

    * ``waves  = prod_l ceil(N_l / t_l)``,
    * ``compute_cycles = waves + blocks * (R + C - 2)`` (every block pays
      one pipeline fill/drain of ``R + C - 2`` cycles),
    * ``pe_active_cycles = waves * R * C`` (each wave sweeps the array).

    The conformance harness (:mod:`repro.verify`) checks the simulators'
    emergent counters against these formulas exactly.
    """

    blocks: int
    waves: int
    compute_cycles: int
    pe_active_cycles: int
    first_all_active_cycle: int


def cycle_statistics(design: DesignPoint) -> CycleStatistics:
    """Closed-form :class:`CycleStatistics` of a design (clipped middles)."""
    nest = design.nest
    tiling = design.tiling
    waves = 1
    for it in nest.iterators:
        waves *= math.ceil(nest.bounds[it] / tiling.t(it))
    blocks = design.tiled.total_blocks
    rows, cols = design.shape.rows, design.shape.cols
    return CycleStatistics(
        blocks=blocks,
        waves=waves,
        compute_cycles=waves + blocks * (rows + cols - 2),
        pe_active_cycles=waves * rows * cols,
        first_all_active_cycle=first_all_active_cycle(rows, cols),
    )


class FastWavefrontSimulator:
    """Vectorized execution of one design point; engine-bit-identical.

    Drop-in for :class:`~repro.sim.engine.SystolicArrayEngine`: same
    constructor, same :meth:`run` contract, same :class:`EngineResult`.

    Args:
        design: the design point to execute.
        chunk_entries: soft cap on the number of (wave, PE) entries
            materialized at once (memory/latency knob; any value gives
            the same bits because chunks preserve wave order).
    """

    #: Refuse accumulation buffers above this many float64 slots (1 GiB).
    MAX_ACC_ENTRIES = 1 << 27

    def __init__(self, design: DesignPoint, *, chunk_entries: int = 1 << 21) -> None:
        self.design = design
        self.nest = design.nest
        self.mapping = design.mapping
        self.rows = design.shape.rows
        self.cols = design.shape.cols
        self.vector = design.shape.vector
        self._chunk_entries = max(1, chunk_entries)
        self._iterators = self.nest.iterators
        self._bounds = self.nest.bounds
        self._out_access = self.nest.output
        reads = {a.array: a for a in self.nest.reads}
        self._w_access = reads[self.mapping.horizontal_array]
        self._in_access = reads[self.mapping.vertical_array]
        for access in (self._out_access, self._w_access, self._in_access):
            for expr in access.indices:
                if expr.const < 0 or any(c < 0 for _, c in expr.terms):
                    raise ValueError(
                        f"fast simulator requires non-negative subscripts; "
                        f"{access} is outside the systolizable subset "
                        f"(use SystolicArrayEngine)"
                    )

    # ------------------------------------------------------------ execution

    def run(self, arrays: dict[str, np.ndarray]) -> EngineResult:
        """Execute all blocks; same contract as ``SystolicArrayEngine.run``.

        Args:
            arrays: name -> tensor for both read arrays, with shapes large
                enough for the access ranges (the layer's natural shapes).
        """
        out_shape = tuple(
            expr.value_range(self._bounds)[1] + 1 for expr in self._out_access.indices
        )
        output = np.zeros(out_shape)

        total_cycles = 0
        total_waves = 0
        active_cycles = 0
        blocks = 0
        for block in enumerate_blocks(self.design.tiled, clip=True):
            maybe_inject("sim.step")  # chaos hook; simulator state is pure
            blocks += 1
            waves = block.waves
            total_waves += waves
            total_cycles += wave_schedule_cycles(waves, self.rows, self.cols)
            # The engine counts a PE active whenever a wave reaches it,
            # padding positions included: M waves x R x C PEs per block.
            active_cycles += waves * self.rows * self.cols
            self._run_block(block, arrays, output)

        return EngineResult(
            output=output,
            compute_cycles=total_cycles,
            blocks=blocks,
            waves=total_waves,
            pe_active_cycles=active_cycles,
            first_all_active_cycle=first_all_active_cycle(self.rows, self.cols),
        )

    # ------------------------------------------------------------ one block

    def _run_block(
        self, block: BlockSpec, arrays: dict[str, np.ndarray], output: np.ndarray
    ) -> None:
        rows, cols, vector = self.rows, self.cols, self.vector
        iterators = self._iterators
        counts = block.middle_map
        bases = block.base_map
        t = self.design.tiling.t

        # Mixed-radix wave index -> middle vector, outermost loop slowest
        # (the enumerate_waves order the engine consumes).
        strides: dict[str, int] = {}
        stride = 1
        for it in reversed(iterators):
            strides[it] = stride
            stride *= counts[it]
        total_waves = stride

        # Per-PE accumulators, engine-equivalent: one slot per (PE, output
        # element the block can touch).  The block's output footprint is a
        # box in index space because every subscript is affine with
        # non-negative coefficients (checked in __init__).
        box_lo, box_hi = self._output_box(block, output.shape)
        box_shape = tuple(hi - lo + 1 for lo, hi in zip(box_lo, box_hi))
        box_size = int(np.prod(box_shape, dtype=np.int64)) if box_shape else 1
        if rows * cols * box_size > self.MAX_ACC_ENTRIES:
            raise ValueError(
                f"block output footprint {box_shape} x {rows * cols} PEs exceeds "
                f"the fast simulator's accumulator budget"
            )
        acc = np.zeros(rows * cols * box_size)
        pe_slot_base = (
            np.arange(rows, dtype=np.int64)[:, None] * cols
            + np.arange(cols, dtype=np.int64)[None, :]
        ) * box_size

        row_it, col_it, vec_it = self.mapping.row, self.mapping.col, self.mapping.vector
        x_idx = np.arange(rows, dtype=np.int64)
        y_idx = np.arange(cols, dtype=np.int64)
        v_idx = np.arange(vector, dtype=np.int64)

        per_entry = max(rows * cols, rows * vector, cols * vector)
        chunk = max(1, self._chunk_entries // per_entry)
        for m0 in range(0, total_waves, chunk):
            m_idx = np.arange(m0, min(m0 + chunk, total_waves), dtype=np.int64)
            # i_l = base_l + mid_l * t_l at lane 0 for every iterator.
            vals = {
                it: bases[it] + (m_idx // strides[it]) % counts[it] * t(it)
                for it in iterators
            }
            ok0 = {it: vals[it] < self._bounds[it] for it in iterators}
            mask_row = vals[row_it][:, None] + x_idx[None, :] < self._bounds[row_it]
            mask_col = vals[col_it][:, None] + y_idx[None, :] < self._bounds[col_it]
            mask_vec = vals[vec_it][:, None] + v_idx[None, :] < self._bounds[vec_it]

            # Operand gathers: the weight vector entering row x, the input
            # vector entering column y (the engine's _w_vector/_in_vector).
            base_ok_w = self._and_all(ok0, exclude=(row_it, vec_it), n=len(m_idx))
            w_vals = self._gather(
                self._w_access, arrays, vals,
                base_ok_w[:, None, None] & mask_row[:, :, None] & mask_vec[:, None, :],
                row_it, x_idx, vec_it, v_idx,
            )
            base_ok_i = self._and_all(ok0, exclude=(col_it, vec_it), n=len(m_idx))
            in_vals = self._gather(
                self._in_access, arrays, vals,
                base_ok_i[:, None, None] & mask_col[:, :, None] & mask_vec[:, None, :],
                col_it, y_idx, vec_it, v_idx,
            )

            # Per-PE SIMD dot, lane order = simd_dot order.
            dots = np.zeros((len(m_idx), rows, cols))
            for v in range(vector):
                dots += w_vals[:, :, v][:, :, None] * in_vals[:, :, v][:, None, :]

            # A PE position is real (non-padding) when every non-vector
            # iterator stays inside its original bound at lane 0.
            base_ok_c = self._and_all(ok0, exclude=(row_it, col_it, vec_it), n=len(m_idx))
            compute_mask = (
                base_ok_c[:, None, None] & mask_row[:, :, None] & mask_col[:, None, :]
            )

            # Output element per (wave, PE), as an offset into the box.
            box_off = np.zeros((len(m_idx), 1, 1), dtype=np.int64)
            box_stride = 1
            for dim in range(len(box_shape) - 1, -1, -1):
                expr = self._out_access.indices[dim]
                key = np.full(len(m_idx), expr.const, dtype=np.int64)
                for name, coeff in expr.terms:
                    key = key + coeff * vals[name]
                dim_key = (
                    key[:, None, None]
                    + expr.coefficient(row_it) * x_idx[None, :, None]
                    + expr.coefficient(col_it) * y_idx[None, None, :]
                )
                box_off = box_off + (dim_key - box_lo[dim]) * box_stride
                box_stride *= box_shape[dim]

            slot = pe_slot_base[None, :, :] + box_off
            keep = compute_mask.ravel()
            # np.add.at is unbuffered: entries land in array order, which is
            # wave-major here — the engine's per-accumulator add order.
            np.add.at(acc, slot.ravel()[keep], dots.ravel()[keep])

        # Drain in the engine's order: PEs row-major, one add per touched
        # element.  Untouched box slots add +0.0, which cannot change any
        # bit: accumulators and outputs are sums seeded with +0.0 and can
        # never hold -0.0.
        region = output[tuple(slice(lo, hi + 1) for lo, hi in zip(box_lo, box_hi))]
        for pe in range(rows * cols):
            region += acc[pe * box_size : (pe + 1) * box_size].reshape(box_shape)

    # -------------------------------------------------------------- helpers

    def _output_box(
        self, block: BlockSpec, out_shape: tuple[int, ...]
    ) -> tuple[list[int], list[int]]:
        """Inclusive per-dimension bounds of the block's output footprint.

        The lower corner is attained by the always-valid first wave at
        PE (0, 0); the upper corner is clamped to the tensor so padding
        waves (masked out anyway) cannot inflate the box.
        """
        counts = block.middle_map
        bases = block.base_map
        t = self.design.tiling.t
        inner_extent = {
            self.mapping.row: self.rows - 1,
            self.mapping.col: self.cols - 1,
        }
        lo: list[int] = []
        hi: list[int] = []
        for dim, expr in enumerate(self._out_access.indices):
            low = high = expr.const
            for name, coeff in expr.terms:
                low += coeff * bases[name]
                high += coeff * (bases[name] + (counts[name] - 1) * t(name))
                high += coeff * inner_extent.get(name, 0)
            lo.append(low)
            hi.append(min(high, out_shape[dim] - 1))
        return lo, hi

    @staticmethod
    def _and_all(
        ok0: dict[str, np.ndarray], *, exclude: tuple[str, ...], n: int
    ) -> np.ndarray:
        """AND of the lane-0 in-bounds masks over all iterators not excluded."""
        result = np.ones(n, dtype=bool)
        for it, mask in ok0.items():
            if it not in exclude:
                result &= mask
        return result

    def _gather(
        self,
        access: ArrayAccess,
        arrays: dict[str, np.ndarray],
        vals: dict[str, np.ndarray],
        mask: np.ndarray,
        it1: str,
        k1: np.ndarray,
        it2: str,
        k2: np.ndarray,
    ) -> np.ndarray:
        """Masked vectorized gather: (waves, |it1|, |it2|) float64 values.

        Matches the engine's ``_gather``: any iterator past its original
        bound makes the value 0.0 (quantization padding contributes
        nothing); in-bounds values are fetched and widened to float64.
        """
        source = arrays[access.array]
        dims = []
        for expr in access.indices:
            base = np.full(len(next(iter(vals.values()))), expr.const, dtype=np.int64)
            for name, coeff in expr.terms:
                base = base + coeff * vals[name]
            dim = (
                base[:, None, None]
                + expr.coefficient(it1) * k1[None, :, None]
                + expr.coefficient(it2) * k2[None, None, :]
            )
            # Padding indices may exceed the tensor; point them at 0 and
            # let the mask zero the fetched value.
            dims.append(np.where(mask, dim, 0))
        gathered = np.asarray(source[tuple(dims)], dtype=np.float64)
        return np.where(mask, gathered, 0.0)


__all__ = ["CycleStatistics", "FastWavefrontSimulator", "cycle_statistics"]
