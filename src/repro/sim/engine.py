"""Cycle-accurate systolic array engine.

A register-transfer-level model of the architecture in Figs. 1–3: explicit
weight registers shifting right along PE rows, input registers shifting
down PE columns, per-PE SIMD accumulation, and wave tags carried alongside
the data so the engine *asserts* (rather than assumes) that the skewed
injection schedule delivers matching operands to every PE at every cycle.

It executes a complete :class:`~repro.model.design_point.DesignPoint` —
all blocks, all waves — on real tensors and returns the output array plus
cycle statistics.  Exponential in problem size by construction; it exists
to prove the architecture's functional correctness and the Fig. 3 timing
facts on small problems, which the tests do against the NumPy golden
model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.design_point import DesignPoint
from repro.sim.feed import WaveFeeder
from repro.sim.schedule import (
    BlockSpec,
    enumerate_blocks,
    enumerate_waves,
    first_all_active_cycle,
    wave_schedule_cycles,
)


@dataclass
class _Packet:
    """A datum moving through the array: values + the wave it belongs to."""

    wave: int
    values: np.ndarray


def simd_dot(weights: np.ndarray, inputs: np.ndarray) -> float:
    """One PE's SIMD accumulation: lane products added in lane order.

    Every simulator must use this exact operation order (a running sum
    starting from +0.0, one fused nothing — plain IEEE multiply then add
    per lane) so their outputs agree bit-for-bit.  ``np.dot`` delegates
    to BLAS, which is free to reassociate and can differ in the last ulp.
    """
    total = 0.0
    for w, value in zip(weights.tolist(), inputs.tolist()):
        total += w * value
    return total


@dataclass(frozen=True)
class EngineResult:
    """Outcome of a cycle-accurate run.

    Attributes:
        output: dense output array (shape from the written access ranges).
        compute_cycles: total cycles spent in block pipelines.
        blocks: number of blocks executed.
        waves: total waves (middle iterations) executed.
        pe_active_cycles: total PE-cycle activity (for utilization).
        first_all_active_cycle: cycle (within a block) when the whole
            array first computes — Fig. 3's "after five cycles" fact.
    """

    output: np.ndarray
    compute_cycles: int
    blocks: int
    waves: int
    pe_active_cycles: int
    first_all_active_cycle: int


class SystolicArrayEngine:
    """Executes one design point cycle-by-cycle on real tensors."""

    def __init__(self, design: DesignPoint) -> None:
        self.design = design
        self.nest = design.nest
        self.mapping = design.mapping
        self.rows = design.shape.rows
        self.cols = design.shape.cols
        self.vector = design.shape.vector
        self._iterators = self.nest.iterators
        self._bounds = self.nest.bounds
        self._out_access = self.nest.output
        self._feeder = WaveFeeder(design)

    # ------------------------------------------------------------- indexing
    # Boundary gathering is shared with the RTL harness (repro.sim.feed)
    # so the two cycle-accurate backends cannot drift apart.

    def _indices(
        self, block: BlockSpec, wave: dict[str, int], x: int, y: int, lane: int
    ) -> dict[str, int]:
        """Original iteration vector for (block, wave, PE, SIMD lane)."""
        return self._feeder.indices(block, wave, x, y, lane)

    def _w_vector(self, block, wave, x, arrays) -> np.ndarray:
        """The weight vector entering row x for one wave (column-free)."""
        return self._feeder.w_vector(block, wave, x, arrays)

    def _in_vector(self, block, wave, y, arrays) -> np.ndarray:
        """The input vector entering column y for one wave (row-free)."""
        return self._feeder.in_vector(block, wave, y, arrays)

    # ------------------------------------------------------------ execution

    def run(self, arrays: dict[str, np.ndarray]) -> EngineResult:
        """Execute all blocks; returns output + cycle statistics.

        Args:
            arrays: name -> tensor for both read arrays, with shapes large
                enough for the access ranges (the layer's natural shapes).
        """
        out_shape = tuple(
            expr.value_range(self._bounds)[1] + 1 for expr in self._out_access.indices
        )
        output = np.zeros(out_shape)

        clip = True  # the hardware never replays padding waves it can skip;
        # padded-vs-clipped only changes *timing* accounting, and the
        # engine's gather returns 0 on padding anyway.
        total_cycles = 0
        total_waves = 0
        active_cycles = 0
        blocks = 0

        for block in enumerate_blocks(self.design.tiled, clip=clip):
            blocks += 1
            waves = list(enumerate_waves(block, self._iterators))
            total_waves += len(waves)
            cycles = self._run_block(block, waves, arrays, output)
            total_cycles += cycles[0]
            active_cycles += cycles[1]

        return EngineResult(
            output=output,
            compute_cycles=total_cycles,
            blocks=blocks,
            waves=total_waves,
            pe_active_cycles=active_cycles,
            first_all_active_cycle=first_all_active_cycle(self.rows, self.cols),
        )

    def _run_block(
        self,
        block: BlockSpec,
        waves: list[dict[str, int]],
        arrays: dict[str, np.ndarray],
        output: np.ndarray,
    ) -> tuple[int, int]:
        """Cycle-accurate pipeline of one block; accumulates into output.

        Returns (cycles, PE-active cycles).
        """
        rows, cols = self.rows, self.cols
        n_waves = len(waves)
        # Shift registers: one packet (or None) per PE, per direction.
        w_reg: list[list[_Packet | None]] = [[None] * cols for _ in range(rows)]
        in_reg: list[list[_Packet | None]] = [[None] * cols for _ in range(rows)]
        # Per-PE accumulators keyed by output element.
        acc: list[list[dict[tuple[int, ...], float]]] = [
            [dict() for _ in range(cols)] for _ in range(rows)
        ]

        cycles = wave_schedule_cycles(n_waves, rows, cols)
        active = 0
        for cycle in range(cycles):
            # Shift right-to-left / bottom-to-top so sources are pre-shift.
            for x in range(rows - 1, -1, -1):
                for y in range(cols - 1, -1, -1):
                    w_reg[x][y] = w_reg[x][y - 1] if y > 0 else None
                    in_reg[x][y] = in_reg[x - 1][y] if x > 0 else None
            # Boundary injection with the skewed schedule: row x receives
            # wave (cycle - x), column y receives wave (cycle - y).
            for x in range(rows):
                m = cycle - x
                if 0 <= m < n_waves:
                    w_reg[x][0] = _Packet(m, self._w_vector(block, waves[m], x, arrays))
            for y in range(cols):
                m = cycle - y
                if 0 <= m < n_waves:
                    in_reg[0][y] = _Packet(m, self._in_vector(block, waves[m], y, arrays))
            # Compute.
            for x in range(rows):
                for y in range(cols):
                    w_pkt, in_pkt = w_reg[x][y], in_reg[x][y]
                    if w_pkt is None or in_pkt is None:
                        continue
                    if w_pkt.wave != in_pkt.wave:
                        raise AssertionError(
                            f"schedule violation at PE({x},{y}) cycle {cycle}: "
                            f"weight wave {w_pkt.wave} vs input wave {in_pkt.wave}"
                        )
                    active += 1
                    wave = waves[w_pkt.wave]
                    idx = self._indices(block, wave, x, y, 0)
                    if any(idx[it] >= self._bounds[it] for it in self._iterators if it != self.mapping.vector):
                        continue  # padding PE position: no real output element
                    key = self._out_access.evaluate(idx)
                    acc[x][y][key] = acc[x][y].get(key, 0.0) + simd_dot(
                        w_pkt.values, in_pkt.values
                    )
        # Drain: fold per-PE accumulators into the global output.
        for x in range(rows):
            for y in range(cols):
                for key, value in acc[x][y].items():
                    output[key] += value
        return cycles, active


__all__ = ["EngineResult", "SystolicArrayEngine", "simd_dot"]
