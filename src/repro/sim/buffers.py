"""On-chip buffer structures of Fig. 2(b): daisy chains + double buffers.

The architecture feeds the PE array through chained buffers: "All the
input feature map data are shifted across the IB chain as a pipeline
while each IB selectively stores the data that belongs to the
corresponding column of PEs", with double buffering "enabled for the
pipelining".  The WB chain along rows and the OB drain chain are the same
structure.

This module gives those structures an explicit, testable model:

* :class:`DoubleBuffer` — two banks with a load side and a use side;
  asserts the no-conflict discipline (never read the bank being filled);
* :class:`BufferChain` — cycle-level daisy chain: items tagged with a
  destination index shift one hop per cycle and are captured by their
  buffer; the closed-form fill latency (:func:`chain_fill_cycles`) is
  validated against the cycle simulation in the tests;
* the fill-latency model is what justifies the performance simulator's
  assumption that a block's load pipeline is bandwidth-limited rather
  than chain-limited (the chain accepts one word per cycle — exactly the
  DRAM-side rate or better).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


class BufferConflictError(RuntimeError):
    """Raised when the double-buffer discipline is violated."""


class DoubleBuffer:
    """A ping-pong buffer pair.

    One bank is the *load* side (being filled for the next block), the
    other the *use* side (feeding the PE array for the current block);
    :meth:`swap` flips them at a block boundary.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._banks: list[dict[Any, Any]] = [{}, {}]
        self._load_side = 0

    @property
    def load_bank(self) -> int:
        """Index of the bank currently being filled."""
        return self._load_side

    @property
    def use_bank(self) -> int:
        """Index of the bank currently feeding the array."""
        return 1 - self._load_side

    def write(self, key: Any, value: Any) -> None:
        """Store into the load bank.

        Raises:
            BufferConflictError: if the bank is full.
        """
        bank = self._banks[self._load_side]
        if key not in bank and len(bank) >= self.capacity:
            raise BufferConflictError(
                f"buffer overflow: capacity {self.capacity} exceeded"
            )
        bank[key] = value

    def read(self, key: Any) -> Any:
        """Read from the use bank.

        Raises:
            BufferConflictError: for reads of data that was never loaded
                (a schedule bug — the array would consume garbage).
        """
        bank = self._banks[1 - self._load_side]
        if key not in bank:
            raise BufferConflictError(f"read of unloaded key {key!r}")
        return bank[key]

    def swap(self) -> None:
        """Flip banks at a block boundary; the new load bank is cleared."""
        self._load_side = 1 - self._load_side
        self._banks[self._load_side].clear()

    def loaded_count(self) -> int:
        """Words currently in the load bank."""
        return len(self._banks[self._load_side])


@dataclass
class _ChainItem:
    destination: int
    key: Any
    value: Any


@dataclass
class BufferChain:
    """A daisy chain of ``length`` buffers (one per PE column/row).

    Data enters at position 0 tagged with a destination buffer index and
    shifts one position per cycle; the destination buffer captures it as
    it passes.  This is the Fig. 2(b) IB chain: no global fan-out, one
    local hop per cycle.
    """

    length: int
    buffers: list[DoubleBuffer] = field(default_factory=list)
    _pipeline: list[_ChainItem | None] = field(default_factory=list)
    cycles: int = 0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("chain length must be positive")
        if not self.buffers:
            self.buffers = [DoubleBuffer(capacity=1 << 30) for _ in range(self.length)]
        if len(self.buffers) != self.length:
            raise ValueError("one buffer per chain position required")
        self._pipeline = [None] * self.length

    def step(self, inject: _ChainItem | None = None) -> None:
        """Advance one cycle: shift every in-flight item one hop, capture
        items at their destination, optionally inject a new item at the
        head."""
        self.cycles += 1
        # Shift from tail to head so each item moves exactly one hop.
        for pos in range(self.length - 1, -1, -1):
            item = self._pipeline[pos]
            if item is None:
                continue
            if item.destination == pos:
                self.buffers[pos].write(item.key, item.value)
                self._pipeline[pos] = None
            elif pos + 1 < self.length:
                if self._pipeline[pos + 1] is not None:
                    raise BufferConflictError(
                        f"chain collision at position {pos + 1} on cycle {self.cycles}"
                    )
                self._pipeline[pos + 1] = item
                self._pipeline[pos] = None
            else:
                raise BufferConflictError(
                    f"item for buffer {item.destination} fell off the chain"
                )
        if inject is not None:
            if self._pipeline[0] is not None:
                raise BufferConflictError("injection collision at the chain head")
            self._pipeline[0] = inject

    def load(self, items: Iterable[tuple[int, Any, Any]]) -> int:
        """Stream (destination, key, value) items through the chain, one
        per cycle, then drain; returns the cycles consumed."""
        start = self.cycles
        for destination, key, value in items:
            if not 0 <= destination < self.length:
                raise ValueError(f"destination {destination} out of range")
            self.step(_ChainItem(destination, key, value))
        while any(item is not None for item in self._pipeline):
            self.step()
        return self.cycles - start

    def swap_all(self) -> None:
        """Block boundary: flip every buffer's banks."""
        for buffer in self.buffers:
            buffer.swap()


def chain_fill_cycles(words_per_buffer: int, chain_length: int) -> int:
    """Closed-form fill latency of a chain: ``(W + 1) * L`` cycles.

    One word enters per cycle (``W * L`` injection cycles); the last word
    needs ``L - 1`` hops to reach the tail buffer plus one cycle for the
    buffer write itself.  The cycle simulation achieves exactly this when
    the farthest buffer's data is injected last (the natural streaming
    order), which the tests verify hop for hop.
    """
    if words_per_buffer < 0 or chain_length < 1:
        raise ValueError("invalid chain parameters")
    if words_per_buffer == 0:
        return 0
    return (words_per_buffer + 1) * chain_length


__all__ = [
    "BufferChain",
    "BufferConflictError",
    "DoubleBuffer",
    "chain_fill_cycles",
]
