"""Scalable performance simulator — the "on-board measurement" substitute.

Where the analytical model (Section 3.4) is a closed form, this simulator
walks the actual block pipeline of a design:

* per-block compute cycles from the wave schedule (including the R+C-2
  array fill that the closed form ignores),
* per-block DRAM transfer cycles from the footprints and the bandwidth
  model (aggregate and per-port limits),
* double-buffer overlap: while block b computes, block b+1's data loads —
  steady-state cost ``max(compute, transfer)`` with a transfer prologue
  and compute epilogue,
* a fixed kernel-launch overhead per layer invocation.

It therefore *always* reports somewhat less throughput than the model —
the same relationship the paper shows between its model and the board in
Fig. 7(b) (<2% average error once the real clock is used).

Blocks are aggregated by "kind" (full vs ragged along each loop), so a
layer with millions of blocks simulates in microseconds while remaining
exact for the sum of per-block costs; the pipeline max() coupling between
consecutive blocks is evaluated per kind, which is exact whenever block
kinds are locally homogeneous (always true in steady state).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.ir.domain import IterationDomain, count_footprint
from repro.model.design_point import DesignPoint
from repro.model.mapping import array_roles
from repro.model.platform import Platform
from repro.sim.schedule import wave_schedule_cycles


@dataclass(frozen=True)
class LayerMeasurement:
    """Simulated execution of one design on one layer.

    Attributes:
        seconds: total layer time (one nest invocation).
        cycles: total clock cycles.
        compute_cycles: cycles the array would need with infinite
            bandwidth.
        transfer_cycles: cycles DRAM would need with infinite compute.
        frequency_mhz: clock used.
        throughput_gops: effective ops / seconds.
        blocks: number of blocks.
        bound: 'compute' or 'memory' (which side dominated the pipeline).
        utilization: PE-active fraction = effective ops / (2*lanes*cycles).
    """

    seconds: float
    cycles: int
    compute_cycles: int
    transfer_cycles: int
    frequency_mhz: float
    throughput_gops: float
    blocks: int
    bound: str
    utilization: float


def _block_kinds(design: DesignPoint, clip: bool):
    """Per-loop (count, middle_count, extent) alternatives, then the
    cartesian product over loops gives every block *kind* with its
    multiplicity — exact aggregation without enumerating blocks."""
    nest = design.nest
    tiling = design.tiling
    per_loop = []
    for it in nest.iterators:
        trip = nest.bounds[it]
        t = tiling.t(it)
        s = tiling.s(it)
        block = s * t
        n_full, remainder = divmod(trip, block)
        options = []
        if n_full:
            options.append((n_full, s, block))
        if remainder:
            if clip:
                mid = math.ceil(remainder / t)
                options.append((1, mid, mid * t))
            else:
                options.append((1, s, block))
        per_loop.append(options)
    return per_loop


def simulate_performance(
    design: DesignPoint,
    platform: Platform,
    *,
    frequency_mhz: float | None = None,
    launch_overhead_cycles: int = 0,
    streaming: bool = False,
) -> LayerMeasurement:
    """Simulate one layer under one design.

    Pipeline accounting (the architecture is fully pipelined — Fig. 2's
    double-buffered IB/WB/OB chains let consecutive blocks' waves stream
    back-to-back):

    * every block contributes ``max(compute, transfer)`` in steady state,
      where compute = waves + (R + C - 2): the skewed wavefront of each
      block refills the array (the per-block cost the closed-form model
      ignores — the main source of the small model-vs-measured gap of
      Fig. 7b);
    * block b+1's input load overlaps block b's compute; only the first
      block's input load is exposed (prologue);
    * the last block's output write-back is exposed (epilogue).

    Args:
        design: the design point (nest + mapping + shape + tiling).
        platform: supplies bandwidth, datatype, and the ragged-middle
            semantics (clipped platforms skip padding waves in ragged
            blocks; padded platforms replay them, like the generated
            kernel's fixed loop bounds).
        frequency_mhz: clock; defaults to the platform's assumed clock —
            pass the realized clock for phase-2/Fig. 7(b) comparisons.
        launch_overhead_cycles: fixed per-invocation overhead (host
            enqueue); 0 by default since the paper measures streaming
            throughput where it amortizes.
        streaming: steady-state throughput accounting — image k+1's first
            blocks load while image k's last blocks drain, so the fill,
            prologue, epilogue and launch overhead amortize to zero.  Use
            for throughput exhibits (Fig. 7b, Tables 4/5); leave False
            for single-image latency (Table 2).
    """
    freq_mhz = frequency_mhz or platform.assumed_clock_mhz
    freq_hz = freq_mhz * 1e6
    clip = platform.ragged_middle == "clipped"
    nest = design.nest
    rows, cols = design.shape.rows, design.shape.cols
    roles = array_roles(nest)
    output_array = nest.output.array

    per_loop = _block_kinds(design, clip)
    bytes_per_cycle_total = platform.memory.total_bytes_per_second / freq_hz
    bytes_per_cycle_port = platform.memory.port_bytes_per_second / freq_hz

    total_compute = 0
    total_transfer = 0
    steady_sum = 0
    blocks = 0
    prologue = 0  # first block's input-side load
    epilogue = 0  # last block's output-side store

    iterators = nest.iterators
    for combo in itertools.product(*per_loop):
        count = 1
        waves = 1
        extents = {}
        for it, (n, mid, extent) in zip(iterators, combo):
            count *= n
            waves *= mid
            extents[it] = extent
        compute_cycles = wave_schedule_cycles(waves, rows, cols)

        domain = IterationDomain.of(extents)
        total_bytes = 0
        in_bytes = 0
        out_bytes = 0
        port_cycles = 0.0
        for access in nest.accesses:
            words = count_footprint(access, domain)
            nbytes = words * platform.datatype.bytes_for(roles[access.array])
            total_bytes += nbytes
            if access.array == output_array:
                out_bytes += nbytes
            else:
                in_bytes += nbytes
            port_cycles = max(port_cycles, nbytes / bytes_per_cycle_port)
        transfer_cycles = math.ceil(max(total_bytes / bytes_per_cycle_total, port_cycles))

        blocks += count
        total_compute += count * compute_cycles
        total_transfer += count * transfer_cycles
        steady_sum += count * max(compute_cycles, transfer_cycles)
        prologue = max(prologue, math.ceil(in_bytes / bytes_per_cycle_total))
        epilogue = max(epilogue, math.ceil(out_bytes / bytes_per_cycle_total))

    if streaming:
        cycles = steady_sum
    else:
        cycles = launch_overhead_cycles + prologue + steady_sum + epilogue

    seconds = cycles / freq_hz
    effective_ops = nest.total_operations
    lanes = design.shape.lanes
    return LayerMeasurement(
        seconds=seconds,
        cycles=cycles,
        compute_cycles=total_compute,
        transfer_cycles=total_transfer,
        frequency_mhz=freq_mhz,
        throughput_gops=effective_ops / seconds / 1e9,
        blocks=blocks,
        bound="compute" if total_compute >= total_transfer else "memory",
        utilization=effective_ops / (2.0 * lanes * cycles),
    )


__all__ = ["LayerMeasurement", "simulate_performance"]
