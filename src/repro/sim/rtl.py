"""Pure-Python RTL simulator for the emitted Verilog module graph.

:mod:`repro.codegen.rtl` builds a structural IR and renders Verilog-2001
text from it; this module *elaborates the same IR* into a flat netlist
and interprets it with two-phase synchronous semantics:

1. **eval** — combinational wires recomputed in topological order from
   the current registers, memories and input ports;
2. **commit** — every sequential right-hand side evaluated against the
   pre-edge state, then applied at once (Verilog nonblocking ``<=``).

Because every arithmetic value is a Python float (IEEE binary64 — the
same ``real`` arithmetic the rendered text performs under iverilog) and
the boundary streams come from the shared :class:`repro.sim.feed.WaveFeeder`,
the RTL run is bit-identical to the cycle engine and the fast simulator
by construction, and the tests hold it to that.

The optional :func:`run_iverilog_check` compiles the rendered Verilog
plus a generated ``$readmemh`` testbench under iverilog and compares the
dumped accumulator bit patterns against the interpreter, cross-checking
the interpreter itself.  A missing toolchain degrades gracefully
(``SA153``, mirroring the SA504 testbench downgrade).
"""

from __future__ import annotations

import hashlib
import shutil
import struct
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.analysis.diagnostics import (
    RESILIENCE_TOOL_TIMEOUT,
    RTL_TOOLCHAIN_MISSING,
    Diagnostic,
    Severity,
)
from repro.codegen.rtl import (
    MemClear,
    MemWrite,
    ModuleDef,
    RegSet,
    RtlPlan,
    build_rtl_modules,
    render_verilog,
)
from repro.model.design_point import DesignPoint
from repro.resilience.faults import InjectedFault, maybe_inject
from repro.sim.engine import EngineResult
from repro.sim.feed import WaveFeeder
from repro.sim.schedule import (
    enumerate_blocks,
    enumerate_waves,
    first_all_active_cycle,
    wave_schedule_cycles,
)

#: RTL interpreter budget: same scale as the cycle engine's, and used the
#: same way (legs above it are skipped, not attempted).
DEFAULT_RTL_ITERATION_LIMIT = 200_000

DEFAULT_COMPILE_TIMEOUT = 120.0
DEFAULT_RUN_TIMEOUT = 600.0


# --------------------------------------------------------------------------
# Netlist elaboration and interpretation.

_EvalFn = Callable[[dict, dict], Any]


def _compile_expr(
    expr: tuple, rename: Callable[[str], str], params: dict[str, int]
) -> _EvalFn:
    """Compile an IR expression to a closure over (env, mems)."""
    kind = expr[0]
    if kind == "const":
        value = int(expr[1])
        return lambda env, mems: value
    if kind == "rconst":
        rvalue = float(expr[1])
        return lambda env, mems: rvalue
    if kind == "sig":
        name = rename(expr[1])
        return lambda env, mems: env[name]
    if kind == "param":
        pvalue = int(params[expr[1]])
        return lambda env, mems: pvalue
    if kind == "memread":
        mem = rename(expr[1])
        addr = _compile_expr(expr[2], rename, params)
        return lambda env, mems: mems[mem][addr(env, mems)]
    if kind in ("iadd", "fadd"):
        a = _compile_expr(expr[1], rename, params)
        b = _compile_expr(expr[2], rename, params)
        return lambda env, mems: a(env, mems) + b(env, mems)
    if kind == "fmul":
        a = _compile_expr(expr[1], rename, params)
        b = _compile_expr(expr[2], rename, params)
        return lambda env, mems: a(env, mems) * b(env, mems)
    if kind == "and":
        a = _compile_expr(expr[1], rename, params)
        b = _compile_expr(expr[2], rename, params)
        return lambda env, mems: 1 if (a(env, mems) and b(env, mems)) else 0
    if kind == "or":
        a = _compile_expr(expr[1], rename, params)
        b = _compile_expr(expr[2], rename, params)
        return lambda env, mems: 1 if (a(env, mems) or b(env, mems)) else 0
    if kind == "not":
        a = _compile_expr(expr[1], rename, params)
        return lambda env, mems: 0 if a(env, mems) else 1
    if kind == "ne":
        a = _compile_expr(expr[1], rename, params)
        b = _compile_expr(expr[2], rename, params)
        return lambda env, mems: 1 if a(env, mems) != b(env, mems) else 0
    if kind == "mux":
        c = _compile_expr(expr[1], rename, params)
        a = _compile_expr(expr[2], rename, params)
        b = _compile_expr(expr[3], rename, params)
        return lambda env, mems: a(env, mems) if c(env, mems) else b(env, mems)
    raise ValueError(f"unknown IR expression kind {kind!r}")


def _expr_deps(expr: tuple, rename: Callable[[str], str]) -> set[str]:
    kind = expr[0]
    if kind == "sig":
        return {rename(expr[1])}
    if kind in ("const", "rconst", "param"):
        return set()
    if kind == "memread":
        return _expr_deps(expr[2], rename)
    deps: set[str] = set()
    for operand in expr[1:]:
        if isinstance(operand, tuple):
            deps |= _expr_deps(operand, rename)
    return deps


class NetlistSimulator:
    """Two-phase eval/commit interpreter of an elaborated module graph."""

    def __init__(self, top: ModuleDef, library: dict[str, ModuleDef]) -> None:
        self.env: dict[str, Any] = {}
        self.mems: dict[str, list[float]] = {}
        self.inputs: tuple[str, ...] = tuple(
            p.name for p in top.ports if p.direction == "in"
        )
        wires: list[tuple[str, set[str], _EvalFn]] = []
        self._seq: list[tuple] = []
        self._elaborate(top, library, prefix="", params={})
        # Resolve elaboration products gathered by _elaborate.
        wires = self._pending_wires
        del self._pending_wires
        self._wires = self._topo_sort(wires)

    # ------------------------------------------------------- construction

    def _elaborate(
        self,
        module: ModuleDef,
        library: dict[str, ModuleDef],
        prefix: str,
        params: dict[str, int],
    ) -> None:
        if not hasattr(self, "_pending_wires"):
            self._pending_wires: list[tuple[str, set[str], _EvalFn]] = []

        def rename(name: str) -> str:
            return prefix + name

        merged = dict(module.params)
        merged.update(params)

        for reg in module.regs:
            self.env[rename(reg.name)] = reg.init
        for mem in module.mems:
            self.mems[rename(mem.name)] = [0.0] * mem.depth
        for port in module.ports:
            if port.direction == "in" and not prefix:
                self.env.setdefault(port.name, 0)
        for wire in module.wires:
            self._pending_wires.append(
                (
                    rename(wire.name),
                    _expr_deps(wire.expr, rename),
                    _compile_expr(wire.expr, rename, merged),
                )
            )
        for op in module.seq:
            if isinstance(op, RegSet):
                self._seq.append(
                    ("reg", rename(op.reg), _compile_expr(op.expr, rename, merged))
                )
            elif isinstance(op, MemClear):
                self._seq.append(
                    (
                        "clear",
                        rename(op.mem),
                        _compile_expr(op.enable, rename, merged),
                    )
                )
            elif isinstance(op, MemWrite):
                self._seq.append(
                    (
                        "write",
                        rename(op.mem),
                        _compile_expr(op.addr, rename, merged),
                        _compile_expr(op.data, rename, merged),
                        _compile_expr(op.enable, rename, merged),
                    )
                )
            else:  # pragma: no cover - IR is closed
                raise TypeError(f"unknown sequential op {op!r}")

        for inst in module.instances:
            child = library[inst.module]
            child_prefix = f"{prefix}{inst.name}."
            # Child input ports become alias wires of parent expressions.
            for port_name, expr in inst.inputs.items():
                self._pending_wires.append(
                    (
                        child_prefix + port_name,
                        _expr_deps(expr, rename),
                        _compile_expr(expr, rename, merged),
                    )
                )
            # Parent-scope wires alias the child's output signals.
            for port_name, wire_name in inst.outputs.items():
                source = child_prefix + port_name
                self._pending_wires.append(
                    (rename(wire_name), {source}, _make_alias(source))
                )
            child_params = dict(child.params)
            child_params.update(inst.params)
            self._elaborate(child, library, child_prefix, child_params)

    def _topo_sort(
        self, wires: list[tuple[str, set[str], _EvalFn]]
    ) -> list[tuple[str, _EvalFn]]:
        """Order wires so every dependency is evaluated first."""
        by_name = {name: (deps, fn) for name, deps, fn in wires}
        ordered: list[tuple[str, _EvalFn]] = []
        state: dict[str, int] = {}  # 1 visiting, 2 done

        def visit(name: str) -> None:
            if state.get(name) == 2 or name not in by_name:
                return
            if state.get(name) == 1:
                raise ValueError(f"combinational loop through {name!r}")
            state[name] = 1
            deps, fn = by_name[name]
            for dep in sorted(deps):
                visit(dep)
            state[name] = 2
            ordered.append((name, fn))

        for name, _, _ in wires:
            visit(name)
        # Wires may read regs/inputs that exist in env already; unknown
        # names would KeyError at eval time, which is the right failure.
        return ordered

    # ----------------------------------------------------------- stepping

    def step(self, inputs: dict[str, Any]) -> None:
        """One clock edge: drive inputs, eval wires, commit sequentials."""
        env, mems = self.env, self.mems
        env.update(inputs)
        for name, fn in self._wires:
            env[name] = fn(env, mems)
        pending: list[tuple] = []
        for op in self._seq:
            tag = op[0]
            if tag == "reg":
                pending.append(("reg", op[1], op[2](env, mems)))
            elif tag == "clear":
                if op[2](env, mems):
                    pending.append(("clear", op[1]))
            else:  # write
                if op[4](env, mems):
                    pending.append(
                        ("write", op[1], op[2](env, mems), op[3](env, mems))
                    )
        for item in pending:
            if item[0] == "reg":
                env[item[1]] = item[2]
            elif item[0] == "clear":
                mems[item[1]] = [0.0] * len(mems[item[1]])
            else:
                mems[item[1]][item[2]] = item[3]

    def signal(self, name: str) -> Any:
        return self.env[name]

    def memory(self, name: str) -> list[float]:
        return self.mems[name]


def _make_alias(source: str) -> _EvalFn:
    return lambda env, mems: env[source]


# --------------------------------------------------------------------------
# The design-level harness.


@dataclass(frozen=True)
class RtlRunResult:
    """Outcome of one interpreted RTL run.

    Attributes:
        result: the run's output and emergent counters, in the shared
            :class:`~repro.sim.engine.EngineResult` shape.
        block_digests: per-block SHA-256 of the drained accumulator
            bytes (PE row-major, address-ascending) — the golden-corpus
            artifact.
        block_accs: raw per-block accumulator contents, shaped
            ``(rows*cols, box)``, kept only when requested (the
            iverilog cross-check compares these bit patterns).
    """

    result: EngineResult
    block_digests: tuple[str, ...]
    block_accs: tuple[np.ndarray, ...] | None = None


class RtlSimulator:
    """Executes a design's generated RTL with the netlist interpreter."""

    def __init__(self, design: DesignPoint) -> None:
        top, pe, plan = build_rtl_modules(design)  # raises SA150 if unsupported
        self.design = design
        self.plan: RtlPlan = plan
        self.top = top
        self.pe = pe
        self._feeder = WaveFeeder(design)
        shape = design.shape
        self.rows, self.cols, self.vector = shape.rows, shape.cols, shape.vector

    # ----------------------------------------------------------- stimulus

    def _step_inputs(
        self,
        block,
        waves: list[dict[str, int]],
        boffs: list[int],
        arrays: dict[str, np.ndarray],
        step: int,
    ) -> dict[str, Any]:
        """Boundary injection for one clock edge (the skewed schedule)."""
        feeder = self._feeder
        n_waves = len(waves)
        inputs: dict[str, Any] = {"flip": 0, "clear": 0}
        for x in range(self.rows):
            m = step - x
            live = 0 <= m < n_waves
            inputs[f"w_valid_{x}"] = 1 if live else 0
            inputs[f"w_tag_{x}"] = m if live else 0
            inputs[f"w_boff_{x}"] = boffs[m] if live else 0
            inputs[f"w_rowok_{x}"] = (
                1 if live and feeder.row_ok(block, waves[m], x) else 0
            )
            if live:
                vec = feeder.w_vector(block, waves[m], x, arrays)
                for v in range(self.vector):
                    inputs[f"w_val_{v}_{x}"] = float(vec[v])
            else:
                for v in range(self.vector):
                    inputs[f"w_val_{v}_{x}"] = 0.0
        for y in range(self.cols):
            m = step - y
            live = 0 <= m < n_waves
            inputs[f"i_valid_{y}"] = 1 if live else 0
            inputs[f"i_tag_{y}"] = m if live else 0
            inputs[f"i_colok_{y}"] = (
                1 if live and feeder.col_ok(block, waves[m], y) else 0
            )
            if live:
                vec = feeder.in_vector(block, waves[m], y, arrays)
                for v in range(self.vector):
                    inputs[f"i_val_{v}_{y}"] = float(vec[v])
            else:
                for v in range(self.vector):
                    inputs[f"i_val_{v}_{y}"] = 0.0
        return inputs

    def _flip_inputs(self) -> dict[str, Any]:
        """An all-invalid edge that flips the bank and clears the old one."""
        inputs = self._step_inputs(None, [], [], {}, -1)
        inputs["flip"] = 1
        inputs["clear"] = 1
        return inputs

    # ---------------------------------------------------------- execution

    def run(
        self, arrays: dict[str, np.ndarray], *, record_accs: bool = False
    ) -> RtlRunResult:
        """Execute all blocks on the netlist; drain into a dense output.

        Raises:
            AssertionError: when the emitted schedule checker (the
                ``err`` wire) fires — the RTL analogue of the engine's
                wave-tag assertion.
        """
        design = self.design
        plan = self.plan
        nest = design.nest
        out_shape = tuple(
            expr.value_range(nest.bounds)[1] + 1 for expr in nest.output.indices
        )
        output = np.zeros(out_shape)
        netsim = NetlistSimulator(self.top, {"pe": self.pe})
        both_wires = [
            f"pe_{x}_{y}.both" for x in range(self.rows) for y in range(self.cols)
        ]

        blocks = 0
        total_waves = 0
        busy_cycles = 0
        pe_active = 0
        digests: list[str] = []
        accs: list[np.ndarray] = []

        for block in enumerate_blocks(design.tiled, clip=True):
            blocks += 1
            waves = list(enumerate_waves(block, nest.iterators))
            total_waves += len(waves)
            boffs = [plan.base_offset(w) for w in waves]
            cycles = wave_schedule_cycles(len(waves), self.rows, self.cols)
            # cycles + 1 edges: the commit of compute state S_s happens at
            # edge s + 1, so one trailing all-invalid edge flushes the
            # final compute into the accumulators.
            for step in range(cycles + 1):
                netsim.step(self._step_inputs(block, waves, boffs, arrays, step))
                env = netsim.env
                if env["err"]:
                    raise AssertionError(
                        f"RTL schedule violation (err wire) in block {blocks - 1} "
                        f"at edge {step}"
                    )
                active = 0
                for name in both_wires:
                    if env[name]:
                        active += 1
                if active:
                    busy_cycles += 1
                pe_active += active
            # Drain the active bank, PE row-major, address-ascending.
            bank = netsim.signal("bank")
            block_bytes = hashlib.sha256()
            base_key = plan.block_base_key(block)
            pe_accs = []
            for x in range(self.rows):
                for y in range(self.cols):
                    mem = netsim.memory(f"pe_{x}_{y}.acc{bank}")
                    box = np.array(mem, dtype=np.float64).reshape(plan.box_dims)
                    block_bytes.update(box.tobytes())
                    if record_accs:
                        pe_accs.append(box.reshape(-1))
                    # Untouched slots hold +0.0 (bit-neutral under +=);
                    # slots past the global extent are provably untouched.
                    spans = tuple(
                        slice(0, min(dim, extent - lo))
                        for dim, extent, lo in zip(
                            plan.box_dims, out_shape, base_key
                        )
                    )
                    region = tuple(
                        slice(lo, lo + s.stop) for lo, s in zip(base_key, spans)
                    )
                    output[region] += box[spans]
            digests.append(block_bytes.hexdigest())
            if record_accs:
                accs.append(np.stack(pe_accs))
            # Flip the ping-pong bank and clear the drained one.
            netsim.step(self._flip_inputs())

        result = EngineResult(
            output=output,
            compute_cycles=busy_cycles,
            blocks=blocks,
            waves=total_waves,
            pe_active_cycles=pe_active,
            first_all_active_cycle=first_all_active_cycle(self.rows, self.cols),
        )
        return RtlRunResult(
            result=result,
            block_digests=tuple(digests),
            block_accs=tuple(accs) if record_accs else None,
        )


# --------------------------------------------------------------------------
# iverilog cross-check of the interpreter itself.


class RtlToolchainUnavailable(RuntimeError):
    """iverilog/vvp cannot deliver a verdict (missing or hung tool).

    Attributes:
        diagnostic: structured ``SA153``/``SA505`` description.
    """

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.message)
        self.diagnostic = diagnostic


def iverilog_available() -> bool:
    """Both iverilog and vvp resolve on PATH."""
    return shutil.which("iverilog") is not None and shutil.which("vvp") is not None


@dataclass(frozen=True)
class IverilogCheck:
    """Outcome of one iverilog-vs-interpreter comparison.

    Attributes:
        ok: every dumped accumulator word matched bit-for-bit.
        words: number of 64-bit words compared.
        mismatches: count of differing words.
        detail: one-line human summary.
    """

    ok: bool
    words: int
    mismatches: int
    detail: str


def _f64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def generate_rtl_testbench(
    top: ModuleDef, plan: RtlPlan, n_steps: int
) -> str:
    """A self-checking Verilog testbench driving ``systolic_top``.

    The stimulus is one flat ``$readmemh`` memory with one 64-bit word
    per top-level input per step, plus a trailing control word whose
    bit 0 requests an accumulator dump *before* the step is driven.
    Dumps print every PE's active-bank words (row-major, ascending) as
    ``D <hex>`` lines that :func:`run_iverilog_check` parses.
    """
    from repro.codegen.emitter import CodeWriter
    from repro.codegen.rtl import KIND_WIDTH, vblock

    inputs = [p for p in top.ports if p.direction == "in"]
    wps = len(inputs) + 1  # + control word
    shape = plan.design.shape
    w = CodeWriter()
    w.comment("Generated stimulus-replay testbench for systolic_top.")
    w.line("module tb;")
    with w.indented():
        w.line("reg clk = 0;")
        w.line("integer s, k;")
        w.line(f"reg [63:0] stim [0:{n_steps * wps - 1}];")
        for port in inputs:
            width = KIND_WIDTH[port.kind]
            decl = "" if width == 1 else f"[{width - 1}:0] "
            w.line(f"reg {decl}{port.name};")
        w.line("wire err;")
        w.line("systolic_top dut (")
        with w.indented():
            conns = [".clk(clk)"] + [f".{p.name}({p.name})" for p in inputs]
            conns.append(".err(err)")
            for index, conn in enumerate(conns):
                comma = "," if index + 1 < len(conns) else ""
                w.line(f"{conn}{comma}")
        w.line(");")
        w.line()
        with vblock(w, "initial begin"):
            w.line('$readmemh("stim.hex", stim);')
            with vblock(w, f"for (s = 0; s < {n_steps}; s = s + 1) begin"):
                with vblock(
                    w, f"if (stim[s * {wps} + {wps - 1}] & 64'd1) begin"
                ):
                    for x in range(shape.rows):
                        for y in range(shape.cols):
                            w.line(
                                f"for (k = 0; k < {plan.box}; k = k + 1)"
                            )
                            with w.indented():
                                w.line(
                                    f'if (dut.bank) $display("D %h", '
                                    f"dut.pe_{x}_{y}.acc1[k]); "
                                    f'else $display("D %h", '
                                    f"dut.pe_{x}_{y}.acc0[k]);"
                                )
                for index, port in enumerate(inputs):
                    width = KIND_WIDTH[port.kind]
                    slice_ = "[0]" if width == 1 else f"[{width - 1}:0]"
                    w.line(f"{port.name} = stim[s * {wps} + {index}]{slice_};")
                w.line("#1 clk = 1;")
                w.line("#1 clk = 0;")
                w.line('if (err) $display("E %0d", s);')
            w.line("$finish;")
    w.line("endmodule")
    return w.render()


def _stimulus_words(
    sim: RtlSimulator, arrays: dict[str, np.ndarray]
) -> tuple[list[int], int]:
    """The flat stimulus stream (64-bit words) and the step count.

    Replays exactly the edges :meth:`RtlSimulator.run` drives, with the
    dump-control bit set on each post-block flip edge.
    """
    inputs = [p for p in sim.top.ports if p.direction == "in"]
    words: list[int] = []
    steps = 0

    def emit(step_inputs: dict[str, Any], dump: bool) -> None:
        nonlocal steps
        for port in inputs:
            value = step_inputs[port.name]
            if port.kind == "f64":
                words.append(_f64_bits(float(value)))
            else:
                words.append(int(value))
        words.append(1 if dump else 0)
        steps += 1

    nest = sim.design.nest
    for block in enumerate_blocks(sim.design.tiled, clip=True):
        waves = list(enumerate_waves(block, nest.iterators))
        boffs = [sim.plan.base_offset(w) for w in waves]
        cycles = wave_schedule_cycles(len(waves), sim.rows, sim.cols)
        for step in range(cycles + 1):
            emit(sim._step_inputs(block, waves, boffs, arrays, step), dump=False)
        emit(sim._flip_inputs(), dump=True)
    return words, steps


def run_iverilog_check(
    design: DesignPoint,
    arrays: dict[str, np.ndarray],
    *,
    workdir: Path | None = None,
    compile_timeout: float = DEFAULT_COMPILE_TIMEOUT,
    run_timeout: float = DEFAULT_RUN_TIMEOUT,
) -> IverilogCheck:
    """Compile the emitted Verilog under iverilog and diff accumulators.

    The Python interpreter runs first (recording raw per-block
    accumulator contents); the same stimulus is then replayed through
    iverilog/vvp and every dumped 64-bit accumulator word is compared
    bit-for-bit.

    Raises:
        DiagnosticError: ``SA150`` when the design is not lowerable.
        RtlToolchainUnavailable: iverilog/vvp missing (SA153) or over
            budget (SA505) — the verdict is "unknown", not "failed".
    """
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="systolic_rtl_") as tmp:
            return run_iverilog_check(
                design,
                arrays,
                workdir=Path(tmp),
                compile_timeout=compile_timeout,
                run_timeout=run_timeout,
            )
    sim = RtlSimulator(design)
    interpreted = sim.run(arrays, record_accs=True)
    words, n_steps = _stimulus_words(sim, arrays)

    workdir.mkdir(parents=True, exist_ok=True)
    (workdir / "systolic.v").write_text(render_verilog(sim.top, sim.pe, sim.plan))
    (workdir / "tb.v").write_text(generate_rtl_testbench(sim.top, sim.plan, n_steps))
    (workdir / "stim.hex").write_text(
        "\n".join(f"{word:016x}" for word in words) + "\n"
    )

    try:
        maybe_inject("rtl.compile")
        build = subprocess.run(
            ["iverilog", "-g2001", "-o", "sim.vvp", "systolic.v", "tb.v"],
            cwd=workdir,
            capture_output=True,
            text=True,
            timeout=compile_timeout,
        )
    except FileNotFoundError as exc:
        raise RtlToolchainUnavailable(
            Diagnostic(
                RTL_TOOLCHAIN_MISSING,
                Severity.WARNING,
                f"iverilog is not available: {exc}",
                hint="apt-get install iverilog, or rely on the Python interpreter",
            )
        ) from exc
    except subprocess.TimeoutExpired as exc:
        raise RtlToolchainUnavailable(
            Diagnostic(
                RESILIENCE_TOOL_TIMEOUT,
                Severity.WARNING,
                f"iverilog exceeded its {compile_timeout:.0f}s compile budget",
            )
        ) from exc
    except (OSError, InjectedFault) as exc:
        raise RtlToolchainUnavailable(
            Diagnostic(
                RTL_TOOLCHAIN_MISSING,
                Severity.WARNING,
                f"could not invoke iverilog: {exc}",
            )
        ) from exc
    if build.returncode != 0:
        return IverilogCheck(
            False, 0, 0, f"iverilog compile error: {build.stderr.strip()[:400]}"
        )
    try:
        maybe_inject("rtl.run")
        run = subprocess.run(
            ["vvp", "sim.vvp"],
            cwd=workdir,
            capture_output=True,
            text=True,
            timeout=run_timeout,
        )
    except FileNotFoundError as exc:
        raise RtlToolchainUnavailable(
            Diagnostic(
                RTL_TOOLCHAIN_MISSING,
                Severity.WARNING,
                f"vvp is not available: {exc}",
            )
        ) from exc
    except subprocess.TimeoutExpired as exc:
        raise RtlToolchainUnavailable(
            Diagnostic(
                RESILIENCE_TOOL_TIMEOUT,
                Severity.WARNING,
                f"vvp exceeded its {run_timeout:.0f}s run budget",
            )
        ) from exc
    except (OSError, InjectedFault) as exc:
        raise RtlToolchainUnavailable(
            Diagnostic(
                RTL_TOOLCHAIN_MISSING,
                Severity.WARNING,
                f"could not execute vvp: {exc}",
            )
        ) from exc

    if "E " in run.stdout and any(
        line.startswith("E ") for line in run.stdout.splitlines()
    ):
        return IverilogCheck(False, 0, 0, "iverilog run raised the err wire")
    dumped = [
        int(line[2:].strip(), 16)
        for line in run.stdout.splitlines()
        if line.startswith("D ")
    ]
    expected: list[int] = []
    assert interpreted.block_accs is not None
    for block_acc in interpreted.block_accs:
        for value in block_acc.reshape(-1):
            expected.append(_f64_bits(float(value)))
    if len(dumped) != len(expected):
        return IverilogCheck(
            False,
            len(dumped),
            abs(len(dumped) - len(expected)),
            f"dump length {len(dumped)} != expected {len(expected)}",
        )
    mismatches = sum(1 for got, want in zip(dumped, expected) if got != want)
    if mismatches:
        return IverilogCheck(
            False,
            len(dumped),
            mismatches,
            f"{mismatches}/{len(dumped)} accumulator words differ",
        )
    return IverilogCheck(
        True, len(dumped), 0, f"{len(dumped)} accumulator words bit-identical"
    )


__all__ = [
    "DEFAULT_RTL_ITERATION_LIMIT",
    "IverilogCheck",
    "NetlistSimulator",
    "RtlRunResult",
    "RtlSimulator",
    "RtlToolchainUnavailable",
    "generate_rtl_testbench",
    "iverilog_available",
    "run_iverilog_check",
]
