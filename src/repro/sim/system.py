"""Full-system cycle accounting: DRAM + buffer chains + array + drain.

The block-level performance simulator (:mod:`repro.sim.perf`) assumes the
on-chip distribution network never bottlenecks a block load — data is
DRAM-limited.  That is only true because the Fig. 2(b) daisy chains move
*wide lines* (a 512-bit line = 16 float words per hop), not scalars.
This module makes the assumption checkable: it prices each block's load
through the chain model (items = lines, one hop per cycle, plus the
pipeline depth of the chain) *and* through the DRAM model, and takes the
binding one.

With realistic line widths the result matches :func:`simulate_performance`
(validating its assumption); with ``line_words=1`` the chains dominate
and throughput collapses — the quantitative reason systolic FPGA designs
stream wide lines through the buffer chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.domain import IterationDomain, count_footprint
from repro.model.design_point import DesignPoint
from repro.model.mapping import array_roles
from repro.model.platform import Platform
from repro.sim.buffers import chain_fill_cycles
from repro.sim.perf import _block_kinds
from repro.sim.schedule import wave_schedule_cycles


@dataclass(frozen=True)
class SystemMeasurement:
    """Cycle breakdown of a full-system simulation.

    Attributes:
        cycles: total pipeline cycles.
        seconds: at the given clock.
        throughput_gops: effective ops / seconds.
        chain_limited_blocks: blocks whose load was bound by a buffer
            chain rather than DRAM.
        dram_limited_blocks: blocks bound by DRAM bandwidth.
        bound: 'compute', 'chain' or 'dram' — the dominant term overall.
    """

    cycles: int
    seconds: float
    throughput_gops: float
    chain_limited_blocks: int
    dram_limited_blocks: int
    bound: str


def simulate_system(
    design: DesignPoint,
    platform: Platform,
    *,
    frequency_mhz: float | None = None,
    line_words: int = 16,
    streaming: bool = True,
) -> SystemMeasurement:
    """Price a layer through DRAM + chains + array + drain.

    Args:
        design: the design point.
        platform: bandwidth/datatype/semantics source.
        frequency_mhz: clock (platform default otherwise).
        line_words: words per chain line (16 = a 512-bit float line, the
            realistic width; 1 = scalar chains, the naive strawman).
        streaming: steady-state accounting (throughput) vs single-image.
    """
    if line_words < 1:
        raise ValueError("line_words must be positive")
    freq_mhz = frequency_mhz or platform.assumed_clock_mhz
    freq_hz = freq_mhz * 1e6
    clip = platform.ragged_middle == "clipped"
    nest = design.nest
    rows, cols = design.shape.rows, design.shape.cols
    roles = array_roles(nest)
    bytes_per_cycle_total = platform.memory.total_bytes_per_second / freq_hz
    bytes_per_cycle_port = platform.memory.port_bytes_per_second / freq_hz

    # Chain lengths: the weight chain spans the rows, the input chain the
    # columns, the output chain the columns (drain).
    weight = max(nest.reads, key=lambda a: a.rank)
    chain_length = {
        weight.array: rows,
        next(a for a in nest.reads if a is not weight).array: cols,
        nest.output.array: cols,
    }

    total_compute = 0
    total_load = 0
    steady = 0
    chain_limited = 0
    dram_limited = 0
    prologue = 0
    epilogue = 0

    iterators = nest.iterators
    import itertools

    for combo in itertools.product(*_block_kinds(design, clip)):
        count = 1
        waves = 1
        extents = {}
        for it, (n, mid, extent) in zip(iterators, combo):
            count *= n
            waves *= mid
            extents[it] = extent
        compute = wave_schedule_cycles(waves, rows, cols)
        domain = IterationDomain.of(extents)

        total_bytes = 0
        load = 0
        block_chain_bound = False
        out_cycles = 0
        for access in nest.accesses:
            words = count_footprint(access, domain)
            nbytes = words * platform.datatype.bytes_for(roles[access.array])
            length = chain_length[access.array]
            lines = math.ceil(words / (line_words * length))
            chain = chain_fill_cycles(lines, length)
            if access.is_write:
                out_cycles = max(chain, math.ceil(nbytes / bytes_per_cycle_total))
                continue
            total_bytes += nbytes
            dram = math.ceil(nbytes / bytes_per_cycle_port)
            if chain > dram:
                block_chain_bound = True
            load = max(load, chain, dram)
        dram_total = math.ceil(total_bytes / bytes_per_cycle_total)
        if dram_total >= load:
            load = dram_total
            block_chain_bound = False
        if block_chain_bound:
            chain_limited += count
        elif load > compute:
            dram_limited += count

        total_compute += count * compute
        total_load += count * load
        steady += count * max(compute, load, out_cycles)
        prologue = max(prologue, load)
        epilogue = max(epilogue, out_cycles)

    cycles = steady if streaming else (prologue + steady + epilogue)
    seconds = cycles / freq_hz
    if total_compute >= total_load:
        bound = "compute"
    else:
        bound = "chain" if chain_limited > dram_limited else "dram"
    return SystemMeasurement(
        cycles=cycles,
        seconds=seconds,
        throughput_gops=nest.total_operations / seconds / 1e9,
        chain_limited_blocks=chain_limited,
        dram_limited_blocks=dram_limited,
        bound=bound,
    )


__all__ = ["SystemMeasurement", "simulate_system"]
