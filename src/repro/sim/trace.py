"""Schedule visualization: the Fig. 3 waterfall as text.

Renders which wave each PE processes at each cycle under the skewed
schedule (wave ``m`` at PE ``(x, y)`` on cycle ``m + x + y``) — the
diagram the paper draws for its 3x3 example.  Used by the Fig. 3
experiment and the quickstart-adjacent docs; also handy when debugging a
new mapping.
"""

from __future__ import annotations

from repro.sim.schedule import first_all_active_cycle, wave_schedule_cycles


def wave_at(cycle: int, x: int, y: int, waves: int) -> int | None:
    """The wave PE (x, y) processes at ``cycle`` (None if idle)."""
    wave = cycle - x - y
    return wave if 0 <= wave < waves else None


def schedule_waterfall(rows: int, cols: int, waves: int, *, max_cycles: int | None = None) -> str:
    """Render the schedule as one text block.

    Each line is a cycle; each cell shows the wave index a PE computes
    (``.`` = idle).  The line where no cell is idle is marked — the
    paper's "all PEs are active after five cycles" moment.

    Args:
        rows, cols: PE array shape.
        waves: middle iterations of the block.
        max_cycles: truncate the rendering (full block by default).
    """
    if min(rows, cols, waves) < 1:
        raise ValueError("rows, cols and waves must be positive")
    total = wave_schedule_cycles(waves, rows, cols)
    shown = min(total, max_cycles) if max_cycles else total
    all_active = first_all_active_cycle(rows, cols)

    width = max(2, len(str(waves - 1)))
    lines = [
        f"schedule: {rows}x{cols} PE array, {waves} waves, "
        f"{total} cycles per block"
    ]
    header = "cycle | " + "  ".join(
        f"PE{x},{y}".ljust(width + 3) for x in range(rows) for y in range(cols)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cycle in range(shown):
        cells = []
        for x in range(rows):
            for y in range(cols):
                wave = wave_at(cycle, x, y, waves)
                cells.append(
                    (f"w{wave}".ljust(width + 3)) if wave is not None else ".".ljust(width + 3)
                )
        marker = "  <- all PEs active" if cycle == all_active and waves > all_active else ""
        lines.append(f"{cycle:5d} | " + "  ".join(cells) + marker)
    if shown < total:
        lines.append(f"  ... ({total - shown} more cycles)")
    return "\n".join(lines)


__all__ = ["schedule_waterfall", "wave_at"]
