"""Shared boundary-feeding math for the cycle-accurate backends.

The cycle engine and the RTL harness inject the *same* operand streams:
for every (block, wave, boundary position, SIMD lane) they must gather
the identical element (zero on quantization padding) and compute the
identical iteration vector.  Keeping that math in one place is what
makes "bit-identical by construction" an honest claim — the engine and
the RTL testbench driver cannot drift apart because they call the same
functions.
"""

from __future__ import annotations

import numpy as np

from repro.model.design_point import DesignPoint
from repro.sim.schedule import BlockSpec


class WaveFeeder:
    """Gathers boundary operand vectors for one design point.

    All methods are pure functions of (block, wave, position, arrays);
    the class only precomputes the access/bound lookups.
    """

    def __init__(self, design: DesignPoint) -> None:
        self.design = design
        self.nest = design.nest
        self.mapping = design.mapping
        self.vector = design.shape.vector
        self._iterators = self.nest.iterators
        self._bounds = self.nest.bounds
        self._out_access = self.nest.output
        reads = {a.array: a for a in self.nest.reads}
        self._w_access = reads[self.mapping.horizontal_array]
        self._in_access = reads[self.mapping.vertical_array]

    # ------------------------------------------------------------- indexing

    def indices(
        self, block: BlockSpec, wave: dict[str, int], x: int, y: int, lane: int
    ) -> dict[str, int]:
        """Original iteration vector for (block, wave, PE, SIMD lane)."""
        t = self.design.tiling.t
        inner = {self.mapping.row: x, self.mapping.col: y, self.mapping.vector: lane}
        bases = block.base_map
        return {
            it: bases[it] + wave[it] * t(it) + inner.get(it, 0)
            for it in self._iterators
        }

    def gather(self, access, arrays, idx: dict[str, int]) -> float:
        """Array value at an iteration point; 0 outside the original bounds
        (quantization padding contributes nothing, by construction)."""
        for it, value in idx.items():
            if value >= self._bounds[it]:
                return 0.0
        return float(arrays[access.array][access.evaluate(idx)])

    def w_vector(self, block, wave, x, arrays) -> np.ndarray:
        """The weight vector entering row x for one wave (column-free)."""
        return np.array(
            [
                self.gather(self._w_access, arrays, self.indices(block, wave, x, 0, v))
                for v in range(self.vector)
            ]
        )

    def in_vector(self, block, wave, y, arrays) -> np.ndarray:
        """The input vector entering column y for one wave (row-free)."""
        return np.array(
            [
                self.gather(self._in_access, arrays, self.indices(block, wave, 0, y, v))
                for v in range(self.vector)
            ]
        )

    # ------------------------------------------------- RTL sideband signals

    def row_ok(self, block: BlockSpec, wave: dict[str, int], x: int) -> bool:
        """Whether row x's non-vector iterators are all in bounds at y=0.

        Together with :meth:`col_ok` this reproduces the engine's padding
        skip: a PE computes a *real* output element iff every non-vector
        iterator of its iteration point is within the original bounds,
        and rows/columns partition those iterators (the row iterator only
        depends on x, the column iterator only on y).
        """
        idx = self.indices(block, wave, x, 0, 0)
        col = self.mapping.col
        vec = self.mapping.vector
        return all(
            idx[it] < self._bounds[it]
            for it in self._iterators
            if it not in (col, vec)
        )

    def col_ok(self, block: BlockSpec, wave: dict[str, int], y: int) -> bool:
        """Whether column y's iterator is in bounds (see :meth:`row_ok`)."""
        col = self.mapping.col
        idx = self.indices(block, wave, 0, y, 0)
        return idx[col] < self._bounds[col]


__all__ = ["WaveFeeder"]
