"""Cycle-level scheduling math (paper Fig. 3) and index decomposition.

The systolic schedule assigns wave ``m`` (one middle-loop iteration of a
block) to PE ``(x, y)`` at cycle ``m + x + y``: weights skew right one
cycle per column, inputs skew down one cycle per row, so the data a PE
needs from both directions arrives in the same cycle — the paper's
``PE_{x,y}@t`` relation.  Consequences encoded here:

* PE (x, y) is first active at cycle ``x + y``; the whole R x C array is
  active from cycle ``R + C - 2`` on (the "all PEs are active after five
  cycles" fact for the 3 x 3 example);
* a block of M waves completes in ``M + R + C - 2`` cycles.

The index decomposition maps (block base, middle index, inner index) back
to original loop iterations: ``i_l = base_l + mid_l * t_l + inner_l``,
with the inner index being the PE row / column / SIMD lane for the three
mapped loops.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator

from repro.ir.tiling import TiledLoopNest


def wave_schedule_cycles(waves: int, rows: int, cols: int) -> int:
    """Cycles for one block: M waves through an R x C skewed array."""
    if waves < 0 or rows < 1 or cols < 1:
        raise ValueError("invalid schedule parameters")
    if waves == 0:
        return 0
    return waves + rows + cols - 2


def first_all_active_cycle(rows: int, cols: int) -> int:
    """First cycle at which every PE computes (0-indexed): R + C - 2."""
    return rows + cols - 2


@dataclass(frozen=True)
class BlockSpec:
    """One outer-loop iteration (a data block).

    Attributes:
        bases: iterator -> first original iteration covered.
        middle_counts: iterator -> middle trip count executed in this
            block.  Under padded semantics this is always s_l; under
            clipped semantics the last block along a loop runs only
            ``ceil(remaining / t_l)`` middle steps.
    """

    bases: tuple[tuple[str, int], ...]
    middle_counts: tuple[tuple[str, int], ...]

    @property
    def base_map(self) -> dict[str, int]:
        return dict(self.bases)

    @property
    def middle_map(self) -> dict[str, int]:
        return dict(self.middle_counts)

    @property
    def waves(self) -> int:
        """Middle iterations of the block: M = prod(middle counts)."""
        total = 1
        for _, count in self.middle_counts:
            total *= count
        return total


def enumerate_blocks(tiled: TiledLoopNest, *, clip: bool) -> Iterator[BlockSpec]:
    """All blocks of the tiled nest in outer-loop (nest) order.

    Args:
        tiled: the design's tiled nest.
        clip: clip the last block's middle counts to the loop remainder
            (clipped semantics); False replays the full s everywhere.
    """
    iterators = tiled.nest.iterators
    per_loop = []
    for it in iterators:
        trip = tiled.nest.bounds[it]
        t = tiled.tiling.t(it)
        s = tiled.tiling.s(it)
        block = s * t
        entries = []
        for base in range(0, trip, block):
            if clip:
                remaining = trip - base
                count = min(s, math.ceil(remaining / t))
            else:
                count = s
            entries.append((base, count))
        per_loop.append(entries)
    for combo in itertools.product(*per_loop):
        yield BlockSpec(
            bases=tuple((it, base) for it, (base, _) in zip(iterators, combo)),
            middle_counts=tuple((it, count) for it, (_, count) in zip(iterators, combo)),
        )


def block_count(tiled: TiledLoopNest) -> int:
    """Number of blocks without enumerating them."""
    return tiled.total_blocks


def enumerate_waves(block: BlockSpec, iterators: tuple[str, ...]) -> Iterator[dict[str, int]]:
    """Middle index vectors of one block, outermost loop varying slowest."""
    counts = block.middle_map
    ranges = [range(counts[it]) for it in iterators]
    for combo in itertools.product(*ranges):
        yield dict(zip(iterators, combo))


def original_index(
    base: int, middle_index: int, inner_bound: int, inner_index: int
) -> int:
    """i_l = base_l + mid_l * t_l + inner_l."""
    if not 0 <= inner_index < inner_bound:
        raise ValueError(f"inner index {inner_index} out of [0, {inner_bound})")
    return base + middle_index * inner_bound + inner_index


__all__ = [
    "BlockSpec",
    "block_count",
    "enumerate_blocks",
    "enumerate_waves",
    "first_all_active_cycle",
    "original_index",
    "wave_schedule_cycles",
]
