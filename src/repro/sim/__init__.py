"""Systolic array simulation.

This package is the stand-in for the paper's on-board measurements (see
DESIGN.md §1):

* :mod:`repro.sim.schedule` — the wave/skew schedule of Fig. 3 and the
  block/middle/inner index decomposition shared by all simulators;
* :mod:`repro.sim.engine` — a cycle-accurate register-transfer model of
  the PE array (explicit shift registers, wave tags, per-PE accumulators)
  used to prove functional correctness and the Fig. 3 timing facts on
  small problems;
* :mod:`repro.sim.perf` — the scalable performance simulator: per-block
  compute and DRAM-transfer cycles with double-buffer overlap, producing
  the "measured" layer latencies that Fig. 7(b) compares against the
  analytical model;
* :mod:`repro.sim.fast` — the vectorized wavefront simulator: the same
  architecture executed as NumPy batch operations over whole waves,
  bit-identical to the engine but fast enough for full Table-2 layers;
* :mod:`repro.sim.functional` — functional validation helpers (engine-
  based simulation against the NumPy golden model, tiling-coverage
  audits).
"""

from repro.sim.buffers import (
    BufferChain,
    BufferConflictError,
    DoubleBuffer,
    chain_fill_cycles,
)
from repro.sim.engine import EngineResult, SystolicArrayEngine, simd_dot
from repro.sim.fast import CycleStatistics, FastWavefrontSimulator, cycle_statistics
from repro.sim.functional import audit_tiling_coverage, simulate_layer
from repro.sim.perf import LayerMeasurement, simulate_performance
from repro.sim.schedule import BlockSpec, enumerate_blocks, wave_schedule_cycles
from repro.sim.system import SystemMeasurement, simulate_system
from repro.sim.trace import schedule_waterfall, wave_at

__all__ = [
    "BlockSpec",
    "BufferChain",
    "BufferConflictError",
    "CycleStatistics",
    "DoubleBuffer",
    "EngineResult",
    "FastWavefrontSimulator",
    "chain_fill_cycles",
    "cycle_statistics",
    "LayerMeasurement",
    "SystemMeasurement",
    "SystolicArrayEngine",
    "audit_tiling_coverage",
    "enumerate_blocks",
    "schedule_waterfall",
    "simd_dot",
    "simulate_layer",
    "simulate_performance",
    "simulate_system",
    "wave_at",
    "wave_schedule_cycles",
]
