"""A minimal SVG writer (no third-party dependencies).

Only the elements the chart builders need: rects with selectively
rounded corners (bars have a 4px rounded data-end and a square
baseline), circles with surface rings, lines/polylines, and text with
anchor control.  Coordinates are finished pixels — layout happens in the
chart builders.
"""

from __future__ import annotations

from xml.sax.saxutils import escape


class SvgCanvas:
    """Accumulates SVG elements and renders the document."""

    def __init__(self, width: int, height: int, *, background: str | None = None) -> None:
        if width < 1 or height < 1:
            raise ValueError("canvas must have positive size")
        self.width = width
        self.height = height
        self._parts: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background)

    # ------------------------------------------------------------- elements

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        *,
        fill: str,
        rx: float = 0.0,
    ) -> None:
        """Axis-aligned rectangle (uniform corner radius only)."""
        radius = f' rx="{rx:g}"' if rx else ""
        self._parts.append(
            f'<rect x="{x:g}" y="{y:g}" width="{width:g}" height="{height:g}"'
            f'{radius} fill="{fill}"/>'
        )

    def bar(
        self, x: float, y: float, width: float, height: float, *, fill: str, radius: float = 4.0
    ) -> None:
        """A column: rounded top corners (the data end), square baseline."""
        if height <= 0:
            return
        r = min(radius, width / 2, height)
        bottom = y + height
        self._parts.append(
            f'<path d="M {x:g} {bottom:g} L {x:g} {y + r:g} '
            f"Q {x:g} {y:g} {x + r:g} {y:g} "
            f"L {x + width - r:g} {y:g} "
            f"Q {x + width:g} {y:g} {x + width:g} {y + r:g} "
            f'L {x + width:g} {bottom:g} Z" fill="{fill}"/>'
        )

    def circle(
        self, cx: float, cy: float, r: float, *, fill: str, ring: str | None = None,
        ring_width: float = 2.0,
    ) -> None:
        """Marker dot; optional surface-colored ring for legibility."""
        stroke = f' stroke="{ring}" stroke-width="{ring_width:g}"' if ring else ""
        self._parts.append(f'<circle cx="{cx:g}" cy="{cy:g}" r="{r:g}" fill="{fill}"{stroke}/>')

    def line(
        self, x1: float, y1: float, x2: float, y2: float, *, stroke: str, width: float = 1.0
    ) -> None:
        self._parts.append(
            f'<line x1="{x1:g}" y1="{y1:g}" x2="{x2:g}" y2="{y2:g}" '
            f'stroke="{stroke}" stroke-width="{width:g}"/>'
        )

    def polyline(self, points: list[tuple[float, float]], *, stroke: str, width: float = 2.0) -> None:
        """Data line: 2px, round joins and caps."""
        coords = " ".join(f"{x:g},{y:g}" for x, y in points)
        self._parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:g}" stroke-linejoin="round" stroke-linecap="round"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        fill: str,
        size: int = 12,
        anchor: str = "start",
        weight: str = "normal",
    ) -> None:
        self._parts.append(
            f'<text x="{x:g}" y="{y:g}" font-family="system-ui, sans-serif" '
            f'font-size="{size}" font-weight="{weight}" fill="{fill}" '
            f'text-anchor="{anchor}">{escape(content)}</text>'
        )

    # -------------------------------------------------------------- output

    def render(self) -> str:
        body = "\n  ".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f"  {body}\n</svg>\n"
        )


def nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Round tick values covering [low, high] (clean 1/2/5 steps)."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw = span / max(1, count - 1)
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 5, 10):
        step = mult * magnitude
        if step >= raw:
            break
    start = int(low / step) * step
    if start > low:
        start -= step
    ticks = [round(start, 10)]
    value = start
    while value < high:  # the last tick must cover the data maximum
        value += step
        ticks.append(round(value, 10))
    return ticks


__all__ = ["SvgCanvas", "nice_ticks"]
