"""Chart builders with fixed mark and color specs.

Color is assigned by job (never decoratively):

* **sequential** (magnitude — the Fig. 7a throughput shading): one blue
  ramp, light to dark;
* **categorical** (identity — estimated vs simulated, systolic vs
  direct): the validated palette's fixed slot order (blue, aqua, …,
  red), never cycled or re-ranked;
* text always wears text tokens, never a series color.

Mark specs: bars <= 24px wide with a 4px rounded data-end and square
baseline, separated by >= 2px of surface; lines 2px with round joins;
markers >= 8px diameter with a 2px surface ring; gridlines hairline and
recessive.  Every figure is paired with its archived text table (the
table view), and values are directly labeled where the story needs them.
The palette below is the validated reference instance (worst adjacent
CVD dE 24.2; the aqua slot's <3:1 surface contrast is relieved by direct
labels + the table view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.viz.svg import SvgCanvas, nice_ticks

SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e7e6e2"

CATEGORICAL = ("#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948")
"""Fixed categorical slot order (validated; never cycled)."""

SEQUENTIAL = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
)
"""One-hue blue ramp, light -> dark, for magnitude."""

MARGIN = dict(left=64, right=24, top=48, bottom=46)


@dataclass(frozen=True)
class Series:
    """One named data series."""

    name: str
    values: Sequence[float]


def _frame(width: int, height: int, title: str) -> tuple[SvgCanvas, dict]:
    canvas = SvgCanvas(width, height, background=SURFACE)
    canvas.text(MARGIN["left"], 24, title, fill=TEXT_PRIMARY, size=14, weight="600")
    plot = {
        "x0": MARGIN["left"],
        "y0": MARGIN["top"],
        "x1": width - MARGIN["right"],
        "y1": height - MARGIN["bottom"],
    }
    return canvas, plot


def _y_axis(canvas: SvgCanvas, plot: dict, low: float, high: float, label: str):
    ticks = nice_ticks(low, high)
    lo, hi = ticks[0], ticks[-1]
    span = hi - lo or 1.0

    def to_y(value: float) -> float:
        return plot["y1"] - (value - lo) / span * (plot["y1"] - plot["y0"])

    for tick in ticks:
        y = to_y(tick)
        canvas.line(plot["x0"], y, plot["x1"], y, stroke=GRID, width=1)
        canvas.text(
            plot["x0"] - 8, y + 4, f"{tick:,.0f}", fill=TEXT_SECONDARY, size=11,
            anchor="end",
        )
    canvas.text(plot["x0"], plot["y0"] - 10, label, fill=TEXT_SECONDARY, size=11)
    return to_y, lo, hi


def _legend(canvas: SvgCanvas, plot: dict, names: Sequence[str]) -> None:
    """Right-aligned legend row above the plot (measured so it never
    overflows the canvas)."""
    char_w = 6.5  # close enough for 11px system sans
    widths = [14 + char_w * len(name) + 18 for name in names]
    x = plot["x1"] - sum(widths)
    y = plot["y0"] - 28
    for idx, (name, item_w) in enumerate(zip(names, widths)):
        canvas.circle(x + 5, y - 4, 5, fill=CATEGORICAL[idx], ring=SURFACE)
        canvas.text(x + 14, y, name, fill=TEXT_SECONDARY, size=11)
        x += item_w


def scatter_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    shade: Sequence[float],
    *,
    title: str,
    x_label: str,
    y_label: str,
    shade_label: str,
    highlight: int | None = None,
    width: int = 640,
    height: int = 420,
) -> str:
    """Scatter with sequential (magnitude) shading — the Fig. 7a form.

    Args:
        xs, ys: point coordinates.
        shade: magnitude mapped onto the blue ramp (light = low).
        highlight: index of the point to direct-label (the winner).
    """
    if not (len(xs) == len(ys) == len(shade)) or not xs:
        raise ValueError("xs, ys and shade must be equal-length and non-empty")
    canvas, plot = _frame(width, height, title)
    to_y, y_lo, y_hi = _y_axis(canvas, plot, min(ys), max(ys), y_label)

    x_ticks = nice_ticks(min(xs), max(xs))
    x_lo, x_hi = x_ticks[0], x_ticks[-1]
    x_span = x_hi - x_lo or 1.0

    def to_x(value: float) -> float:
        return plot["x0"] + (value - x_lo) / x_span * (plot["x1"] - plot["x0"])

    for tick in x_ticks:
        canvas.text(
            to_x(tick), plot["y1"] + 18, f"{tick:,.0f}", fill=TEXT_SECONDARY,
            size=11, anchor="middle",
        )
    canvas.text(plot["x1"], plot["y1"] + 34, x_label, fill=TEXT_SECONDARY, size=11, anchor="end")

    lo_s, hi_s = min(shade), max(shade)
    span_s = (hi_s - lo_s) or 1.0
    order = sorted(range(len(xs)), key=lambda i: shade[i])  # dark (high) on top
    for i in order:
        level = (shade[i] - lo_s) / span_s
        color = SEQUENTIAL[round(level * (len(SEQUENTIAL) - 1))]
        canvas.circle(to_x(xs[i]), to_y(ys[i]), 4.5, fill=color, ring=SURFACE)
    if highlight is not None:
        hx, hy = to_x(xs[highlight]), to_y(ys[highlight])
        canvas.circle(hx, hy, 6, fill=SEQUENTIAL[-1], ring=SURFACE)
        canvas.text(hx + 10, hy + 4, f"best: {shade[highlight]:,.0f} {shade_label}",
                    fill=TEXT_PRIMARY, size=11)
    # sequential key (low -> high)
    key_x = plot["x1"] - 150
    for idx, color in enumerate(SEQUENTIAL[::2]):
        canvas.rect(key_x + idx * 14, plot["y0"] - 32, 14, 8, fill=color)
    canvas.text(key_x, plot["y0"] - 38, f"{shade_label} (low)", fill=TEXT_SECONDARY, size=10)
    canvas.text(key_x + 7 * 14, plot["y0"] - 38, "(high)", fill=TEXT_SECONDARY, size=10)
    return canvas.render()


def grouped_bar_chart(
    categories: Sequence[str],
    series: Sequence[Series],
    *,
    title: str,
    y_label: str,
    width: int = 720,
    height: int = 420,
) -> str:
    """Grouped columns (two series side by side) — the Fig. 7b form."""
    if not categories or not series:
        raise ValueError("categories and series required")
    for s in series:
        if len(s.values) != len(categories):
            raise ValueError(f"series {s.name!r} length mismatch")
    canvas, plot = _frame(width, height, title)
    high = max(max(s.values) for s in series)
    to_y, y_lo, _ = _y_axis(canvas, plot, 0.0, high, y_label)
    _legend(canvas, plot, [s.name for s in series])

    slot = (plot["x1"] - plot["x0"]) / len(categories)
    gap = 2.0  # surface gap between touching bars
    bar_w = min(24.0, (slot * 0.7 - gap * (len(series) - 1)) / len(series))
    group_w = bar_w * len(series) + gap * (len(series) - 1)
    baseline = to_y(0.0)
    for c_idx, category in enumerate(categories):
        group_x = plot["x0"] + slot * c_idx + (slot - group_w) / 2
        for s_idx, s in enumerate(series):
            x = group_x + s_idx * (bar_w + gap)
            top = to_y(s.values[c_idx])
            canvas.bar(x, top, bar_w, baseline - top, fill=CATEGORICAL[s_idx])
        canvas.text(
            plot["x0"] + slot * (c_idx + 0.5), plot["y1"] + 18, category,
            fill=TEXT_SECONDARY, size=11, anchor="middle",
        )
    return canvas.render()


def line_chart(
    xs: Sequence[float],
    series: Sequence[Series],
    *,
    title: str,
    x_label: str,
    y_label: str,
    width: int = 680,
    height: int = 420,
    log_x: bool = False,
) -> str:
    """Multi-series line chart — the baseline-comparison form."""
    import math

    if not xs or not series:
        raise ValueError("xs and series required")
    canvas, plot = _frame(width, height, title)
    high = max(max(s.values) for s in series)
    low = min(min(s.values) for s in series)
    to_y, _, _ = _y_axis(canvas, plot, min(0.0, low), high, y_label)
    _legend(canvas, plot, [s.name for s in series])

    xf = (lambda v: math.log10(v)) if log_x else (lambda v: v)
    x_lo, x_hi = xf(xs[0]), xf(xs[-1])
    x_span = (x_hi - x_lo) or 1.0

    def to_x(value: float) -> float:
        return plot["x0"] + (xf(value) - x_lo) / x_span * (plot["x1"] - plot["x0"])

    for x in xs:
        canvas.text(to_x(x), plot["y1"] + 18, f"{x:,.0f}", fill=TEXT_SECONDARY,
                    size=11, anchor="middle")
    canvas.text(plot["x1"], plot["y1"] + 34, x_label, fill=TEXT_SECONDARY, size=11, anchor="end")

    for s_idx, s in enumerate(series):
        color = CATEGORICAL[s_idx]
        points = [(to_x(x), to_y(v)) for x, v in zip(xs, s.values)]
        canvas.polyline(points, stroke=color, width=2)
        for px, py in points:
            canvas.circle(px, py, 4, fill=color, ring=SURFACE)
        # direct end label (identity supplement; legend carries the rest)
        end_x, end_y = points[-1]
        canvas.text(end_x - 6, end_y - 10, f"{s.values[-1]:,.0f}",
                    fill=TEXT_PRIMARY, size=11, anchor="end")
    return canvas.render()


__all__ = [
    "CATEGORICAL",
    "SEQUENTIAL",
    "Series",
    "grouped_bar_chart",
    "line_chart",
    "scatter_chart",
]
