"""Dependency-free SVG figures for the paper's graphical exhibits.

Matplotlib is unavailable in the reproduction environment, so this
package hand-writes the SVG: a small writer (:mod:`repro.viz.svg`),
chart builders following fixed mark/color specs (:mod:`repro.viz.charts`
— thin bars with rounded data-ends, 2px lines, >=8px ring-backed markers,
hairline gridlines, a validated palette with color assigned by job), and
adapters that turn experiment results into figures
(:mod:`repro.viz.figures`).  The benchmark harness archives the figures
next to the text tables under ``benchmarks/results/``; the text tables
double as the accessibility table-view for every figure.
"""

from repro.viz.charts import grouped_bar_chart, line_chart, scatter_chart
from repro.viz.figures import render_experiment_charts
from repro.viz.svg import SvgCanvas

__all__ = [
    "SvgCanvas",
    "grouped_bar_chart",
    "line_chart",
    "render_experiment_charts",
    "scatter_chart",
]
