"""Experiment-result -> SVG adapters.

``render_experiment_charts(result)`` inspects an
:class:`~repro.experiments.common.ExperimentResult`'s ``raw`` payload and
returns ``{file_stem: svg_text}`` for every figure the exhibit defines.
The benchmark harness writes them next to the archived text tables
(which serve as each figure's table view).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.viz.charts import Series, grouped_bar_chart, line_chart, scatter_chart


def _fig7a(result: ExperimentResult) -> str:
    raw = result.raw
    best = max(range(len(raw["gflops"])), key=lambda i: raw["gflops"][i])
    return scatter_chart(
        raw["dsp"],
        raw["bram"],
        raw["gflops"],
        title="Fig. 7(a) — pruned design space (AlexNet conv layers, 280 MHz)",
        x_label="DSP blocks",
        y_label="BRAM blocks",
        shade_label="GFlops",
        highlight=best,
    )


def _fig7b(result: ExperimentResult) -> str:
    raw = result.raw
    return grouped_bar_chart(
        raw["labels"],
        [
            Series("model @ realized clock", raw["model"]),
            Series("simulated (board stand-in)", raw["simulated"]),
        ],
        title="Fig. 7(b) — analytical model vs measurement, top designs",
        y_label="GFlops",
    )


def _budget_sweep(result: ExperimentResult) -> str:
    raw = result.raw
    return line_chart(
        raw["budgets"],
        [
            Series("systolic", raw["systolic"]),
            Series("direct (roofline)", raw["direct"]),
        ],
        title="Systolic vs direct-interconnect design across DSP budgets",
        x_label="DSP budget",
        y_label="GFlops",
        log_x=True,
    )


_RENDERERS = {
    ("dsp", "bram", "gflops"): ("fig7a", _fig7a),
    ("labels", "model", "simulated"): ("fig7b", _fig7b),
    ("budgets", "systolic", "direct"): ("budget_sweep", _budget_sweep),
}


def render_experiment_charts(result: ExperimentResult) -> dict[str, str]:
    """SVG figures for one exhibit ({} when it has no raw payload)."""
    if not result.raw:
        return {}
    for fields, (stem, renderer) in _RENDERERS.items():
        if set(fields) <= set(result.raw):
            try:
                return {stem: renderer(result)}
            except (ValueError, KeyError):
                return {}
    return {}


__all__ = ["render_experiment_charts"]
