"""Post-P&R clock-frequency surrogate.

The paper's phase-2 DSE exists precisely because "the working frequency
for a design is hard to model": the top candidate designs all have the
same *estimated* throughput, and only place-and-route reveals which one
clocks fastest (Fig. 7b).  With no Intel toolchain available, this module
supplies a deterministic surrogate with the same *structure*:

* a systematic component — frequency degrades with DSP utilization, BRAM
  utilization, and the PE-array aspect ratio (tall/skinny arrays route
  worse on the near-square FPGA fabric than balanced ones);
* a design-specific residual — a hash-seeded jitter term standing in for
  the placement randomness that makes equal-cost designs realize
  different clocks.

Calibration targets (paper measurements on Arria 10):

* ~85 % DSP utilization systolic designs realize 220–280 MHz,
* AlexNet's (11, 14, 8) design: 270.8 MHz; VGG's (8, 19, 8): 252.6 MHz,
* the same-estimate designs of Fig. 7b spread by several percent.

The surrogate is NOT a timing model; it is the tie-breaking oracle the
two-phase DSE needs, with a realistic spread.  See DESIGN.md §1.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class FrequencyModel:
    """Deterministic surrogate for realized (post-P&R) clock frequency.

    Attributes:
        base_mhz: fabric frequency of a small, well-routed systolic kernel
            (the Intel OpenCL systolic reference clocks ~300+ MHz).
        dsp_penalty_mhz: MHz lost per unit DSP utilization.
        bram_penalty_mhz: MHz lost per unit BRAM utilization.
        aspect_penalty_mhz: MHz lost per |log2(rows/cols)| unit.
        jitter_mhz: half-range of the design-hash residual.
        floor_mhz: lower clamp (a design that routes at all won't be
            arbitrarily slow).
    """

    base_mhz: float = 300.0
    dsp_penalty_mhz: float = 25.0
    bram_penalty_mhz: float = 15.0
    aspect_penalty_mhz: float = 10.0
    jitter_mhz: float = 8.0
    floor_mhz: float = 120.0

    def __post_init__(self) -> None:
        if self.base_mhz <= 0 or self.floor_mhz <= 0:
            raise ValueError("frequencies must be positive")
        if self.jitter_mhz < 0:
            raise ValueError("jitter must be nonnegative")

    @staticmethod
    def _residual_unit(signature: str) -> float:
        """Deterministic pseudo-residual in [-1, 1) from a design signature."""
        digest = zlib.crc32(signature.encode("utf-8"))
        return (digest % 10_000) / 5_000.0 - 1.0

    def realize(
        self,
        *,
        rows: int,
        cols: int,
        vector: int,
        dsp_utilization: float,
        bram_utilization: float,
        signature: str = "",
    ) -> float:
        """Realized clock frequency in MHz for one design.

        Args:
            rows, cols, vector: PE-array shape (vector participates in the
                signature only; SIMD lanes use dedicated DSP chaining and
                do not hurt routing the way array extent does).
            dsp_utilization: D(t)/D_total in [0, 1+].
            bram_utilization: B(s, t)/B_total in [0, 1+].
            signature: any extra design identity (e.g. tiling) so designs
                with identical shape but different buffers realize
                different clocks, as in Fig. 7b.
        """
        if rows < 1 or cols < 1 or vector < 1:
            raise ValueError("array shape must be positive")
        aspect = abs(math.log2(rows / cols))
        systematic = (
            self.base_mhz
            - self.dsp_penalty_mhz * max(0.0, dsp_utilization)
            - self.bram_penalty_mhz * max(0.0, bram_utilization)
            - self.aspect_penalty_mhz * aspect
        )
        key = f"{rows}x{cols}x{vector}|{dsp_utilization:.4f}|{bram_utilization:.4f}|{signature}"
        realized = systematic + self.jitter_mhz * self._residual_unit(key)
        return max(self.floor_mhz, realized)


__all__ = ["FrequencyModel"]
