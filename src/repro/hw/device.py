"""FPGA device database.

Capacities for the evaluation device (Arria 10 GT 1150) and the comparison
devices of Table 2.  BRAM is counted in device-native blocks (M20K for
Intel, RAMB18-equivalents for Xilinx).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FPGADevice:
    """Static capacities of one FPGA.

    Attributes:
        name: device name.
        vendor: "intel" or "xilinx".
        dsp_blocks: hard DSP block count.
        bram_blocks: on-chip RAM block count (M20K / RAMB18 scale).
        bram_kbits_per_block: bits per RAM block / 1024.
        logic_cells: ALMs (Intel) or LUTs (Xilinx) — the unit each vendor's
            reports use, which is also what Table 2's percentages are
            against.
        dsp_supports_native_float: True for Arria 10's hardened FP DSPs.
    """

    name: str
    vendor: str
    dsp_blocks: int
    bram_blocks: int
    bram_kbits_per_block: int
    logic_cells: int
    dsp_supports_native_float: bool = False

    def __post_init__(self) -> None:
        if self.vendor not in ("intel", "xilinx"):
            raise ValueError(f"{self.name}: unknown vendor {self.vendor!r}")
        if min(self.dsp_blocks, self.bram_blocks, self.logic_cells) < 1:
            raise ValueError(f"{self.name}: nonpositive capacity")

    @property
    def bram_bytes(self) -> int:
        """Total on-chip RAM bytes."""
        return self.bram_blocks * self.bram_kbits_per_block * 1024 // 8

    def bram_words_per_block(self, word_bytes: int) -> int:
        """Words one RAM block stores at a given word size.

        Models the discrete port-width configurations of an M20K: 512
        deep at 32/40-bit, 1024 at 20/16-bit, 2048 at 10/8-bit.  The same
        power-of-two laddering approximates Xilinx BRAM well enough for
        the comparison rows.
        """
        if word_bytes >= 4:
            return max(1, 512 * 4 // word_bytes)  # 512 at 4 B, 256 at 8 B, ...
        if word_bytes >= 2:
            return 1024
        return 2048

    def mac_capacity(self, dsp_per_mac: float) -> int:
        """Parallel MAC lanes the DSP fabric supports at a datatype cost."""
        return int(self.dsp_blocks / dsp_per_mac)


ARRIA10_GT1150 = FPGADevice(
    name="arria10_gt1150",
    vendor="intel",
    dsp_blocks=1518,
    bram_blocks=2713,
    bram_kbits_per_block=20,
    logic_cells=427_200,
    dsp_supports_native_float=True,
)
"""The paper's board: 'Intel's Arria 10 GT 1150 board which contains 1518
hardened floating point DSPs.'"""

ARRIA10_GX1150 = FPGADevice(
    name="arria10_gx1150",
    vendor="intel",
    dsp_blocks=1518,
    bram_blocks=2713,
    bram_kbits_per_block=20,
    logic_cells=427_200,
    dsp_supports_native_float=True,
)
"""Same die as GT1150 (used by [11], [17], [26] in Table 2)."""

STRATIX_V = FPGADevice(
    name="stratix_v_gsd8",
    vendor="intel",
    dsp_blocks=1963,
    bram_blocks=2567,
    bram_kbits_per_block=20,
    logic_cells=622_000,
)

XILINX_VC709 = FPGADevice(
    name="xilinx_vc709",
    vendor="xilinx",
    dsp_blocks=3600,
    bram_blocks=2940,
    bram_kbits_per_block=18,
    logic_cells=433_200,
)

XILINX_KU060 = FPGADevice(
    name="xilinx_ku060",
    vendor="xilinx",
    dsp_blocks=2760,
    bram_blocks=2160,
    bram_kbits_per_block=18,
    logic_cells=331_680,
)

DEVICES = {
    device.name: device
    for device in (ARRIA10_GT1150, ARRIA10_GX1150, STRATIX_V, XILINX_VC709, XILINX_KU060)
}


def device_by_name(name: str) -> FPGADevice:
    """Look up a device by name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}") from None


__all__ = [
    "ARRIA10_GT1150",
    "ARRIA10_GX1150",
    "DEVICES",
    "FPGADevice",
    "STRATIX_V",
    "XILINX_KU060",
    "XILINX_VC709",
    "device_by_name",
]
