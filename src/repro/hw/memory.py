"""External memory (DRAM) bandwidth model.

The paper's performance model (Section 3.4) bounds throughput by two
bandwidth limits: the aggregate DDR bandwidth ``BW_total`` and a per-port
limit ``BW_port`` for each array stream (IN, W, OUT each own a memory
port in the Intel OpenCL system).  The Arria 10 dev kit's DDR4 delivers
about 19 GB/s aggregate — the figure the paper quotes in its Section 2.3
example ("we only get 162 GFlops ... with 19 GB/s bandwidth").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySystem:
    """A DRAM subsystem with aggregate and per-port bandwidth caps.

    Attributes:
        total_bandwidth_gbs: aggregate sustained bandwidth, GB/s.
        port_bandwidth_gbs: per-stream sustained bandwidth, GB/s.
        efficiency: derating factor applied to both (burst efficiency of
            real access patterns; 1.0 = the quoted sustained numbers).
    """

    total_bandwidth_gbs: float
    port_bandwidth_gbs: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.total_bandwidth_gbs <= 0 or self.port_bandwidth_gbs <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.port_bandwidth_gbs > self.total_bandwidth_gbs:
            raise ValueError("per-port bandwidth cannot exceed the aggregate")

    @property
    def total_bytes_per_second(self) -> float:
        """Effective aggregate bandwidth in bytes/s."""
        return self.total_bandwidth_gbs * 1e9 * self.efficiency

    @property
    def port_bytes_per_second(self) -> float:
        """Effective per-port bandwidth in bytes/s."""
        return self.port_bandwidth_gbs * 1e9 * self.efficiency

    def transfer_seconds(self, total_bytes: float, *, port_bytes: float | None = None) -> float:
        """Time to move a block: aggregate-limited, optionally port-limited.

        Args:
            total_bytes: bytes moved across all streams.
            port_bytes: bytes of the largest single stream, if the per-port
                limit should also apply.
        """
        seconds = total_bytes / self.total_bytes_per_second
        if port_bytes is not None:
            seconds = max(seconds, port_bytes / self.port_bytes_per_second)
        return seconds


ARRIA10_DEVKIT_DDR4 = MemorySystem(
    total_bandwidth_gbs=19.2,
    port_bandwidth_gbs=12.8,
)
"""Arria 10 dev kit DDR4: ~19 GB/s aggregate (the paper's figure); the
per-port cap reflects a single bank's share and is a calibration constant
(see DESIGN.md)."""


__all__ = ["ARRIA10_DEVKIT_DDR4", "MemorySystem"]
