"""Arithmetic data-type cost models.

The paper evaluates two precisions:

* 32-bit floating point — one hardened floating-point DSP per MAC on
  Arria 10 (multiply + accumulate in a single DSP block, the feature the
  whole systolic design banks on);
* fixed point with 8-bit weights and 16-bit activations — one Arria 10
  DSP block supports two independent 18x19 multipliers, so a MAC costs
  half a DSP.  (That is how "ours VGG fixed" reaches 1500 DSPs = 49% in
  Table 2: utilization is quoted against the 3036 fixed-point multiplier
  capacity of the 1518 blocks.)

Bytes-per-word per array role feed the bandwidth and BRAM models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArithmeticSpec:
    """Cost model of one arithmetic configuration.

    Attributes:
        name: e.g. ``"float32"``.
        weight_bytes: bytes per weight word in DRAM/BRAM.
        activation_bytes: bytes per input-pixel word.
        accumulator_bytes: bytes per output word as transferred.
        dsp_per_mac: DSP blocks consumed by one PE SIMD lane.
        unit: throughput unit label — "GFlops" for float, "Gops" fixed.
    """

    name: str
    weight_bytes: int
    activation_bytes: int
    accumulator_bytes: int
    dsp_per_mac: float
    unit: str

    def __post_init__(self) -> None:
        if min(self.weight_bytes, self.activation_bytes, self.accumulator_bytes) < 1:
            raise ValueError(f"{self.name}: word sizes must be >= 1 byte")
        if self.dsp_per_mac <= 0:
            raise ValueError(f"{self.name}: dsp_per_mac must be positive")

    def bytes_for(self, array_role: str) -> int:
        """Word size for an array role: 'weight' | 'input' | 'output'."""
        if array_role == "weight":
            return self.weight_bytes
        if array_role == "input":
            return self.activation_bytes
        if array_role == "output":
            return self.accumulator_bytes
        raise ValueError(f"unknown array role {array_role!r}")

    @property
    def is_floating_point(self) -> bool:
        return self.name.startswith("float")


FLOAT32 = ArithmeticSpec(
    name="float32",
    weight_bytes=4,
    activation_bytes=4,
    accumulator_bytes=4,
    dsp_per_mac=1.0,
    unit="GFlops",
)
"""The paper's floating-point mode: 1 hardened FP DSP per MAC."""

FIXED_8_16 = ArithmeticSpec(
    name="fixed8_16",
    weight_bytes=1,
    activation_bytes=2,
    accumulator_bytes=2,
    dsp_per_mac=0.5,
    unit="Gops",
)
"""The paper's fixed mode: 8-bit weights, 16-bit pixels, 2 MACs per DSP."""

FIXED_16 = ArithmeticSpec(
    name="fixed16",
    weight_bytes=2,
    activation_bytes=2,
    accumulator_bytes=2,
    dsp_per_mac=0.5,
    unit="Gops",
)
"""16-bit fixed point (several Table 2 comparison designs)."""

DATATYPES = {spec.name: spec for spec in (FLOAT32, FIXED_8_16, FIXED_16)}


def datatype_by_name(name: str) -> ArithmeticSpec:
    """Look up a datatype spec by name."""
    try:
        return DATATYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown datatype {name!r}; available: {sorted(DATATYPES)}"
        ) from None


__all__ = [
    "ArithmeticSpec",
    "DATATYPES",
    "FIXED_16",
    "FIXED_8_16",
    "FLOAT32",
    "datatype_by_name",
]
