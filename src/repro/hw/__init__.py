"""FPGA platform models.

The paper targets Intel's Arria 10 GT 1150 through the Intel OpenCL SDK;
comparison rows in Table 2 reference several other devices.  This package
holds the device database (DSP / BRAM / logic capacities), arithmetic
data-type cost models (DSPs per MAC, bytes per word), the external-memory
bandwidth model, and the post-P&R clock-frequency surrogate used by
phase 2 of the DSE (see DESIGN.md for the substitution rationale).
"""

from repro.hw.datatype import FIXED_8_16, FIXED_16, FLOAT32, ArithmeticSpec
from repro.hw.device import (
    ARRIA10_GT1150,
    ARRIA10_GX1150,
    DEVICES,
    FPGADevice,
    device_by_name,
)
from repro.hw.frequency import FrequencyModel
from repro.hw.memory import MemorySystem

__all__ = [
    "ARRIA10_GT1150",
    "ARRIA10_GX1150",
    "DEVICES",
    "FIXED_16",
    "FIXED_8_16",
    "FLOAT32",
    "ArithmeticSpec",
    "FPGADevice",
    "FrequencyModel",
    "MemorySystem",
    "device_by_name",
]
