"""Seeded, deterministic fault injection for the synthesis pipeline.

A :class:`FaultPlan` names which *fault points* misbehave and how.  Each
registered point sits on one unreliable boundary of the flow:

==================== =====================================================
point                boundary
==================== =====================================================
``cache.read``       reading a content-addressed stage-cache entry
``cache.write``      persisting a stage-cache entry
``dse.worker``       one task inside a DSE worker process
``testbench.compile``invoking the system C compiler on the testbench
``testbench.run``    executing the compiled testbench binary
``sim.step``         one block step of a wavefront simulator run
``service.queue``    admitting a job into the synthesis service's queue
``service.worker``   one job execution inside a service worker thread
``cluster.heartbeat``one worker heartbeat to the fleet coordinator
``cluster.replicate``replicating a stage-cache entry across the fleet
==================== =====================================================

Three fault *kinds* cover the failure modes worth rehearsing:

* ``crash`` (alias ``raise``) — raise :class:`InjectedFault` at the
  point, simulating an I/O error, a killed worker or a hung tool;
* ``corrupt`` — the call site receives a corrupted payload (garbled
  cache JSON, a truncated source file, ...) via :func:`corrupt_text` /
  :func:`corrupt_payload`;
* ``delay`` — sleep a configurable number of seconds, exercising the
  timeout budgets.

Whether a given invocation fires is decided by a per-point
``random.Random(f"{seed}:{point}")`` stream, so a plan with a fixed seed
produces the same fault sequence on every run of the same code path —
chaos tests are reproducible, not flaky.

Activation is layered: an explicitly :func:`activate`-ed plan (or the
:func:`injected` context manager) wins; otherwise the
``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED`` environment variables are
consulted lazily, which is also how DSE worker *processes* inherit the
plan.  The spec grammar (CLI ``--inject-fault`` and the env var) is::

    point:kind[:p=<float>][:times=<int>][:delay=<seconds>]

with multiple specs separated by ``;`` (or repeated ``--inject-fault``
flags), e.g. ``dse.worker:crash:p=0.3;cache.write:corrupt``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"
FAULT_SEED_ENV_VAR = "REPRO_FAULT_SEED"

FAULT_POINTS: tuple[str, ...] = (
    "cache.read",
    "cache.write",
    "dse.worker",
    "testbench.compile",
    "testbench.run",
    "rtl.compile",
    "rtl.run",
    "sim.step",
    "service.queue",
    "service.worker",
    "cluster.heartbeat",
    "cluster.replicate",
)

FAULT_KINDS: tuple[str, ...] = ("crash", "corrupt", "delay")

_KIND_ALIASES = {"raise": "crash"}

Listener = Callable[[str, str], None]
"""Observer hook: called with (point, kind) every time a fault fires."""


class InjectedFault(RuntimeError):
    """The exception a ``crash``-kind fault raises at its fault point.

    Attributes:
        point: the fault point that fired.
        kind: always ``"crash"`` (kept for symmetry with the listener
            signature).
    """

    def __init__(self, point: str, kind: str = "crash") -> None:
        super().__init__(f"injected fault at {point} ({kind})")
        self.point = point
        self.kind = kind

    def __reduce__(self):  # picklable across process-pool boundaries
        return (InjectedFault, (self.point, self.kind))


@dataclass(frozen=True)
class FaultSpec:
    """One fault point's misbehaviour.

    Attributes:
        point: registered fault point name.
        kind: ``crash`` | ``corrupt`` | ``delay``.
        probability: chance each invocation fires (deterministic per
            seed; 1.0 = always).
        times: stop firing after this many triggers (None = unlimited).
        delay_seconds: sleep duration for ``delay`` faults.
    """

    point: str
    kind: str
    probability: float = 1.0
    times: int | None = None
    delay_seconds: float = 0.01

    def __post_init__(self) -> None:
        kind = _KIND_ALIASES.get(self.kind, self.kind)
        object.__setattr__(self, "kind", kind)
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"registered points: {', '.join(FAULT_POINTS)}"
            )
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"kinds: {', '.join(FAULT_KINDS)} (alias raise=crash)"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``point:kind[:p=..][:times=..][:delay=..]`` spec."""
        parts = [p.strip() for p in text.split(":") if p.strip()]
        if len(parts) < 2:
            raise ValueError(
                f"fault spec {text!r} must look like 'point:kind[:p=0.5]'"
            )
        point, kind = parts[0], parts[1]
        kwargs: dict[str, Any] = {}
        for option in parts[2:]:
            if "=" not in option:
                raise ValueError(f"malformed fault option {option!r} in {text!r}")
            name, _, value = option.partition("=")
            name = name.strip()
            if name == "p":
                kwargs["probability"] = float(value)
            elif name == "times":
                kwargs["times"] = int(value)
            elif name == "delay":
                kwargs["delay_seconds"] = float(value)
            else:
                raise ValueError(f"unknown fault option {name!r} in {text!r}")
        return cls(point, kind, **kwargs)

    def to_spec(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        parts = [self.point, self.kind]
        if self.probability != 1.0:
            parts.append(f"p={self.probability}")
        if self.times is not None:
            parts.append(f"times={self.times}")
        if self.kind == "delay" and self.delay_seconds != 0.01:
            parts.append(f"delay={self.delay_seconds}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs — the unit of activation.

    Attributes:
        specs: the faults to inject (at most one spec per point).
        seed: seeds every per-point decision stream.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        points = [s.point for s in self.specs]
        dupes = {p for p in points if points.count(p) > 1}
        if dupes:
            raise ValueError(f"duplicate fault specs for {sorted(dupes)}")

    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "FaultPlan":
        """Parse a ``;``-separated plan string (the env-var format)."""
        specs = tuple(
            FaultSpec.parse(part)
            for part in text.split(";")
            if part.strip()
        )
        return cls(specs=specs, seed=seed)

    def to_spec(self) -> str:
        """The canonical plan string for ``REPRO_FAULT_PLAN``."""
        return ";".join(spec.to_spec() for spec in self.specs)

    def spec_for(self, point: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.point == point:
                return spec
        return None


class FaultInjector:
    """Executable form of a plan: per-point decision streams + counters.

    Attributes:
        plan: the activated plan.
        fired: (point, kind) log of every fault that actually fired.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: list[tuple[str, str]] = []
        self._streams: dict[str, random.Random] = {}
        self._trigger_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def _stream(self, point: str) -> random.Random:
        if point not in self._streams:
            self._streams[point] = random.Random(f"{self.plan.seed}:{point}")
        return self._streams[point]

    def poll(self, point: str) -> FaultSpec | None:
        """Decide whether this invocation of ``point`` fires a fault.

        Consumes one draw from the point's decision stream (so the fault
        sequence is a pure function of the seed and the invocation
        order) and honours the spec's ``times`` budget.
        """
        spec = self.plan.spec_for(point)
        if spec is None:
            return None
        with self._lock:
            if spec.times is not None and self._trigger_counts.get(point, 0) >= spec.times:
                return None
            draw = self._stream(point).random()
            if draw >= spec.probability:
                return None
            self._trigger_counts[point] = self._trigger_counts.get(point, 0) + 1
            self.fired.append((point, spec.kind))
        return spec


# ------------------------------------------------------------- activation

_ACTIVE: FaultInjector | None = None
_ENV_INJECTOR: tuple[str, FaultInjector] | None = None
_LISTENERS: list[Listener] = []


def activate(plan: FaultPlan, *, export_env: bool = False) -> FaultInjector:
    """Install a plan process-wide; returns its injector.

    Args:
        plan: the faults to inject from now on.
        export_env: also publish the plan via ``REPRO_FAULT_PLAN`` /
            ``REPRO_FAULT_SEED`` so child processes (DSE pool workers)
            inherit it regardless of the pool start method.
    """
    global _ACTIVE
    _ACTIVE = FaultInjector(plan)
    if export_env:
        os.environ[FAULT_PLAN_ENV_VAR] = plan.to_spec()
        os.environ[FAULT_SEED_ENV_VAR] = str(plan.seed)
    return _ACTIVE


def deactivate(*, clear_env: bool = False) -> None:
    """Remove any explicitly activated plan (env plans resume applying).

    Args:
        clear_env: also drop the ``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED``
            environment variables (undoing ``activate(export_env=True)``).
    """
    global _ACTIVE
    _ACTIVE = None
    if clear_env:
        os.environ.pop(FAULT_PLAN_ENV_VAR, None)
        os.environ.pop(FAULT_SEED_ENV_VAR, None)


def active_injector() -> FaultInjector | None:
    """The injector in effect: the activated one, else the env-var plan.

    The environment form is how worker processes inherit the plan: the
    CLI exports ``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED`` before any
    pool spawns, and every process consults them lazily here.  The
    env-built injector is cached per plan string so its decision streams
    and ``times`` budgets persist across calls.
    """
    global _ENV_INJECTOR
    if _ACTIVE is not None:
        return _ACTIVE
    text = os.environ.get(FAULT_PLAN_ENV_VAR)
    if not text:
        return None
    seed = int(os.environ.get(FAULT_SEED_ENV_VAR, "0") or "0")
    cache_key = f"{seed}|{text}"
    if _ENV_INJECTOR is None or _ENV_INJECTOR[0] != cache_key:
        _ENV_INJECTOR = (cache_key, FaultInjector(FaultPlan.parse(text, seed=seed)))
    return _ENV_INJECTOR[1]


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Context manager: activate ``plan`` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    injector = activate(plan)
    try:
        yield injector
    finally:
        _ACTIVE = previous


def add_listener(listener: Listener) -> None:
    """Subscribe to every fired fault (used to emit FaultInjected events)."""
    _LISTENERS.append(listener)


def remove_listener(listener: Listener) -> None:
    """Unsubscribe a listener previously added."""
    try:
        _LISTENERS.remove(listener)
    except ValueError:
        pass


def _notify(point: str, kind: str) -> None:
    for listener in list(_LISTENERS):
        try:
            listener(point, kind)
        except Exception:  # noqa: BLE001 - listeners are best-effort
            pass


def maybe_inject(point: str, *, sleep: Callable[[float], None] = time.sleep) -> str | None:
    """Fire the active plan's fault at ``point``, if any.

    Returns:
        ``"corrupt"`` when the call site must corrupt its payload
        (apply :func:`corrupt_text` / :func:`corrupt_payload` itself —
        only the site knows what its payload is), None otherwise.

    Raises:
        InjectedFault: for a ``crash`` fault.
    """
    injector = active_injector()
    if injector is None:
        return None
    spec = injector.poll(point)
    if spec is None:
        return None
    _notify(point, spec.kind)
    if spec.kind == "crash":
        raise InjectedFault(point)
    if spec.kind == "delay":
        sleep(spec.delay_seconds)
        return None
    return "corrupt"


# ------------------------------------------------------------- corruption

def corrupt_text(text: str) -> str:
    """Deterministically garble a text payload (truncate + poison).

    The result is guaranteed to differ from the input and to be invalid
    JSON, so parsers at the call site fail loudly rather than consuming
    half a payload.
    """
    return text[: max(0, len(text) // 2)] + "\x00{corrupt"


def corrupt_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """A structurally broken stand-in for a decoded payload dict."""
    return {"__corrupt__": True, "keys_lost": sorted(map(str, payload))}


__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV_VAR",
    "FAULT_POINTS",
    "FAULT_SEED_ENV_VAR",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "Listener",
    "activate",
    "active_injector",
    "add_listener",
    "corrupt_payload",
    "corrupt_text",
    "deactivate",
    "injected",
    "maybe_inject",
    "remove_listener",
]
