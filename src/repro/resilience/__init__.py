"""Fault injection, retry policies and graceful degradation.

The synthesis pipeline treats its compile/verify sub-steps — cache I/O,
DSE worker processes, the gcc-executed testbench, the wavefront
simulators — as unreliable external services.  This package provides the
machinery that makes every failure surface a *tested degradation path*
instead of a crash:

* :mod:`repro.resilience.faults` — a seeded, deterministic fault-injection
  registry with named fault points (``cache.read``, ``cache.write``,
  ``dse.worker``, ``testbench.compile``, ``testbench.run``, ``sim.step``)
  that can raise, corrupt payloads, or delay.  Activated via
  :class:`FaultPlan` objects, the ``REPRO_FAULT_PLAN`` environment
  variable, or the ``--inject-fault`` CLI flag.
* :mod:`repro.resilience.retry` — the :func:`retrying` policy helper
  (max attempts, exponential backoff with deterministic jitter, a
  per-attempt timeout budget for subprocess calls).

The recovery behaviours themselves live at the fault sites (cache
quarantine in :mod:`repro.pipeline.cache`, worker resubmission and the
serial fallback in :mod:`repro.dse.parallel`, toolchain degradation in
:mod:`repro.pipeline.stages`); every recovery is observable as a
``StageRetried`` / ``FaultInjected`` / ``StageDegraded`` pipeline event
and, where user-facing, an ``SA5xx`` diagnostic.  See
``docs/resilience.md`` for the full degradation matrix.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV_VAR,
    FAULT_POINTS,
    FAULT_SEED_ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    activate,
    active_injector,
    add_listener,
    corrupt_payload,
    corrupt_text,
    deactivate,
    injected,
    maybe_inject,
    remove_listener,
)
from repro.resilience.retry import (
    DEFAULT_POLICY,
    RetryPolicy,
    call_with_retry,
    configure_retries,
    current_policy,
    reset_retries,
    retrying,
)

__all__ = [
    "DEFAULT_POLICY",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV_VAR",
    "FAULT_POINTS",
    "FAULT_SEED_ENV_VAR",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "activate",
    "active_injector",
    "add_listener",
    "call_with_retry",
    "configure_retries",
    "corrupt_payload",
    "corrupt_text",
    "current_policy",
    "deactivate",
    "injected",
    "maybe_inject",
    "remove_listener",
    "reset_retries",
    "retrying",
]
