"""Retry policies: bounded attempts, exponential backoff, deterministic
jitter, and a per-attempt timeout budget.

:func:`retrying` is the policy helper applied to every unreliable call
in the flow — subprocess invocations in :mod:`repro.codegen.testbench`,
cache I/O in :mod:`repro.pipeline.cache`, wavefront-simulator execution
in the simulate stage.  Backoff jitter is seeded (a pure function of
``(seed, attempt)``), so retry schedules — like injected faults — are
reproducible run to run.

The module-level default policy is what the CLI's ``--max-retries``
flag adjusts (:func:`configure_retries`); call sites that need their own
budget pass an explicit :class:`RetryPolicy`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable, TypeVar

T = TypeVar("T")

OnRetry = Callable[[int, Exception], None]
"""Hook called before each re-attempt with (attempt number, error)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry one unreliable operation.

    Attributes:
        max_attempts: total tries, first included (1 = no retries).
        base_delay: backoff before attempt 2, doubling per attempt.
        max_delay: backoff ceiling.
        jitter: fractional jitter added to each backoff (0.25 = up to
            +25%), drawn deterministically from ``(seed, attempt)``.
        timeout: per-attempt time budget in seconds, passed to
            ``subprocess.run(timeout=...)`` by the call sites that shell
            out (None = the site's own default).
        seed: seeds the jitter stream.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay_for(self, attempt: int) -> float:
        """Backoff before re-attempt ``attempt`` (attempt 2 is the first
        retry).  Deterministic: same policy, same attempt, same delay."""
        if attempt < 2:
            return 0.0
        backoff = min(self.max_delay, self.base_delay * 2.0 ** (attempt - 2))
        fraction = random.Random(f"{self.seed}:{attempt}").random()
        return backoff * (1.0 + self.jitter * fraction)


#: The process-wide default policy (see :func:`configure_retries`).
DEFAULT_POLICY = RetryPolicy()

_current = DEFAULT_POLICY


def configure_retries(
    *,
    max_attempts: int | None = None,
    base_delay: float | None = None,
    timeout: float | None = None,
) -> RetryPolicy:
    """Adjust the process-wide default policy (CLI ``--max-retries``).

    Only the given fields change; returns the new default.
    """
    global _current
    changes: dict = {}
    if max_attempts is not None:
        changes["max_attempts"] = max_attempts
    if base_delay is not None:
        changes["base_delay"] = base_delay
    if timeout is not None:
        changes["timeout"] = timeout
    _current = replace(_current, **changes)
    return _current


def current_policy() -> RetryPolicy:
    """The process-wide default policy in effect."""
    return _current


def reset_retries() -> None:
    """Restore the built-in default policy (CLI teardown, test isolation)."""
    global _current
    _current = DEFAULT_POLICY


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    on_retry: OnRetry | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn`` under a retry policy.

    Args:
        fn: the operation (re-invoked from scratch each attempt).
        policy: attempt/backoff budget (the process default if None).
        retry_on: exception types worth another attempt; anything else
            propagates immediately.
        on_retry: hook fired before each re-attempt (event emission).
        sleep: injectable for tests.

    Raises:
        The last error once every attempt is exhausted.
    """
    active = policy if policy is not None else _current
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as exc:
            if attempt >= active.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = active.delay_for(attempt + 1)
            if delay > 0:
                sleep(delay)


def retrying(
    policy: RetryPolicy | None = None,
    *,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    on_retry: OnRetry | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Callable[[Callable[[], T]], T]:
    """The policy helper: ``retrying(policy)(fn)`` runs ``fn`` with
    retries — a partial application of :func:`call_with_retry` that call
    sites can build once and apply to several operations."""

    def runner(fn: Callable[[], T]) -> T:
        return call_with_retry(
            fn, policy=policy, retry_on=retry_on, on_retry=on_retry, sleep=sleep
        )

    return runner


__all__ = [
    "DEFAULT_POLICY",
    "OnRetry",
    "RetryPolicy",
    "call_with_retry",
    "configure_retries",
    "current_policy",
    "reset_retries",
    "retrying",
]
