"""``systolic-synth`` — the push-button command of Fig. 6.

Usage::

    systolic-synth conv_layer.c -o build/
    systolic-synth compile conv_layer.c --jobs 4 --trace-json trace.jsonl
    systolic-synth conv_layer.c --datatype fixed8_16 --cs 0.85 --top-n 10
    systolic-synth --network alexnet -o build/ -j 0
    systolic-synth conv_layer.c --sim-backend both
    systolic-synth compile conv_layer.c --jobs 4 \\
        --inject-fault dse.worker:crash:p=0.3 --seed 7
    systolic-synth import mobilenet.json -o build/
    systolic-synth import model.onnx --check-only
    systolic-synth check conv_layer.c
    systolic-synth check conv_layer.c --json --level design
    systolic-synth verify conv_layer.c
    systolic-synth verify design.json --json
    systolic-synth serve --port 8451 --workers 4 --journal jobs.jsonl
    systolic-synth submit conv_layer.c --url http://127.0.0.1:8451 --follow

Reads a restricted-C program (or a built-in network), runs the two-phase
DSE through the staged pipeline engine, and writes the generated OpenCL
kernel, C++ host, C testbench and a text report to the output directory.
``compile`` is an optional explicit subcommand name for the same default
action.  DSE stages fan out over ``--jobs`` worker processes (results
are bit-identical to serial), expensive stage results are cached under
``~/.cache/repro-systolic`` (``--no-cache`` / ``--cache-dir`` override),
per-stage progress goes to stderr, and ``--trace-json`` records every
pipeline event as one JSON line.

The flow is chaos-testable: ``--inject-fault point:kind[:p=..]`` activates
the deterministic fault-injection registry (:mod:`repro.resilience`) with
``--seed`` seeding its decision streams, and ``--max-retries`` bounds the
retry budget of every external-tool and cache-I/O call.  Faults and the
recoveries they trigger are visible as ``FaultInjected`` /
``StageRetried`` / ``StageDegraded`` events in ``--trace-json`` and as a
"degradations" section of the report; the synthesized result itself is
bit-identical to an uninjected run whenever recovery succeeds.

The ``check`` subcommand runs the static-analysis passes only (no
artifacts written): nest legality, design-point validation,
generated-code lint.  It exits 0 when the program is clean, 1 when
diagnostics carry errors, 2 on usage errors — and never with a traceback
for a malformed input.

The ``serve`` subcommand runs the flow as a long-lived daemon
(:mod:`repro.service`): a bounded, fair-share admission queue in front
of a synthesis worker pool, request coalescing by content fingerprint,
live progress streaming over HTTP, Prometheus ``/metrics``, and a
journal that makes SIGTERM lossless — running jobs finish, queued jobs
are re-admitted by the next ``serve`` on the same ``--journal``.
``submit`` is the matching client: it posts a C file (or saved design)
to a running server and, with ``--follow``, renders the streamed
pipeline events like a local compile would.  ``--inject-fault`` on the
server side also accepts the service's own fault points
(``service.queue``, ``service.worker``) for chaos-testing the daemon.

The ``verify`` subcommand runs the differential-conformance matrix
(:mod:`repro.verify`) over a design — either a saved design-point JSON
or the DSE winner of a C program — comparing the vectorized wavefront
simulator against the cycle-accurate engine, the NumPy golden model and
the analytical cycle counts.  Any disagreement is reported as an
``SA4xx`` diagnostic and exits 1.  The compile flow can do the same
in-line on its winner with ``--sim-backend fast|rtl|both`` (``both`` =
differential mode).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.hw.datatype import datatype_by_name
from repro.hw.device import device_by_name
from repro.model.platform import Platform
from repro.codegen.opencl import OPENCL_SHIM
from repro.dse.explore import DseConfig
from repro.flow.compile import compile_c_source, synthesize_network
from repro.flow.report import format_table, render_synthesis_report


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="systolic-synth",
        description="Automated systolic array synthesis for CNN loop nests (DAC'17).",
    )
    parser.add_argument("source", nargs="?", help="C file with a '#pragma systolic' nest")
    parser.add_argument(
        "--network",
        choices=["alexnet", "vgg16", "googlenet", "mobilenet_v1", "resnet18", "tiny_cnn"],
        help="synthesize a unified design for a built-in CNN model instead",
    )
    parser.add_argument("-o", "--output", default="systolic_out", help="output directory")
    parser.add_argument("--device", default="arria10_gt1150", help="target FPGA")
    parser.add_argument(
        "--datatype", default="float32", help="float32 | fixed8_16 | fixed16"
    )
    parser.add_argument(
        "--cs", type=float, default=0.8, help="minimum DSP utilization (Eq. 12 c_s)"
    )
    parser.add_argument("--top-n", type=int, default=14, help="phase-2 finalist count")
    parser.add_argument(
        "--clock", type=float, default=280.0, help="phase-1 assumed clock (MHz)"
    )
    parser.add_argument(
        "--dse-engine",
        choices=["vector", "object"],
        default="vector",
        help="DSE evaluation engine: columnar NumPy batches (vector, "
        "default) or the bit-identical scalar object walk (object)",
    )
    parser.add_argument(
        "--save-design",
        metavar="JSON",
        help="also persist the winning design point (single-layer mode)",
    )
    parser.add_argument(
        "--save-result",
        metavar="JSON",
        help="also persist the full synthesis result (single-layer mode)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="DSE worker processes (0 = all cores); results are "
        "bit-identical to --jobs 1",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed stage cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="stage cache directory (default ~/.cache/repro-systolic, "
        "or $REPRO_SYSTOLIC_CACHE_DIR)",
    )
    parser.add_argument(
        "--trace-json",
        metavar="JSONL",
        help="write every pipeline event as one JSON line to this file",
    )
    parser.add_argument(
        "--sim-backend",
        choices=["fast", "rtl", "both", "testbench"],
        help="also execute the winner on a wavefront simulator: fast = "
        "vectorized, rtl = generated Verilog through the netlist "
        "interpreter (small nests), both = differential conformance "
        "including the RTL legs (fails on any disagreement), testbench "
        "= compile and run the generated C testbench (degrades to fast "
        "when no toolchain is available)",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="chaos testing: activate a fault-injection spec "
        "'point:kind[:p=PROB][:times=N][:delay=SECS]', e.g. "
        "'dse.worker:crash:p=0.3' (repeatable; points: "
        "cache.read cache.write dse.worker testbench.compile "
        "testbench.run sim.step service.queue service.worker; "
        "kinds: crash corrupt delay)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed of the deterministic fault-injection decision streams",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget (attempts) for external tools and cache I/O "
        "(default 3)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the per-stage progress lines on stderr",
    )
    return parser


def build_check_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="systolic-synth check",
        description="Statically check a restricted-C nest without synthesizing it.",
    )
    parser.add_argument("source", help="C file to analyze")
    parser.add_argument(
        "--level",
        choices=["nest", "design", "full"],
        default="full",
        help="nest = legality only; design = +DSE result validation; "
        "full = +generated-code lint (default)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument("--device", default="arria10_gt1150", help="target FPGA")
    parser.add_argument(
        "--datatype", default="float32", help="float32 | fixed8_16 | fixed16"
    )
    parser.add_argument(
        "--no-pragma",
        action="store_true",
        help="downgrade a missing '#pragma systolic' to a warning",
    )
    return parser


def build_verify_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="systolic-synth verify",
        description="Differentially verify a design: fast wavefront simulator "
        "vs. cycle-accurate engine vs. golden model vs. analytical cycles.",
    )
    parser.add_argument(
        "source",
        help="a saved design-point JSON (from --save-design) or a C file "
        "whose DSE winner is checked",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument("--device", default="arria10_gt1150", help="target FPGA")
    parser.add_argument(
        "--datatype", default="float32", help="float32 | fixed8_16 | fixed16"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="synthetic-tensor RNG seed"
    )
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=None,
        help="relative tolerance of the golden-output legs (default 1e-9)",
    )
    parser.add_argument(
        "--engine-limit",
        type=int,
        default=None,
        help="skip the cycle-accurate engine leg above this iteration "
        "count (default 200000)",
    )
    parser.add_argument(
        "--sim-backend",
        choices=["fast", "rtl", "both"],
        default="both",
        help="legs to run: fast = simulator matrix only, rtl / both = "
        "also hold the generated Verilog (interpreter, plus iverilog "
        "when available) bit-identical to the simulators (default both)",
    )
    parser.add_argument(
        "--rtl-limit",
        type=int,
        default=None,
        help="skip the RTL legs above this iteration count (default 200000)",
    )
    parser.add_argument(
        "--require-iverilog",
        action="store_true",
        help="fail (instead of skipping with an SA153 note) when iverilog "
        "is not on PATH",
    )
    parser.add_argument(
        "--no-pragma",
        action="store_true",
        help="accept a C file without '#pragma systolic'",
    )
    return parser


def build_serve_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="systolic-synth serve",
        description="Run the synthesis flow as a long-lived HTTP daemon "
        "with request coalescing, backpressure and progress streaming.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8451, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="synthesis worker threads"
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admission bound; a full queue answers 429",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="PER_SEC",
        help="fair-share rate limit: submissions per second per client "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="N",
        help="fair-share burst size (default: max(1, --rate))",
    )
    parser.add_argument(
        "--journal",
        metavar="JSONL",
        help="accepted-work ledger; a restarted serve on the same journal "
        "resumes every job SIGTERM interrupted",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="DSE worker processes inside each synthesis (0 = all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed stage cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR_OR_SPEC",
        help="stage cache directory (default ~/.cache/repro-systolic); "
        "also accepts a backend spec such as sqlite:PATH (coordinator/"
        "standalone) — fleet workers always keep a local directory store "
        "replicated through the coordinator",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="chaos testing: same specs as compile, plus the service "
        "points 'service.queue' (admission) and 'service.worker' "
        "(synthesis attempts)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed of the deterministic fault-injection decision streams",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for faulted synthesis attempts (default 3)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="log every HTTP request"
    )
    fleet = parser.add_argument_group(
        "fleet", "distributed synthesis (see docs/cluster.md)"
    )
    fleet.add_argument(
        "--role",
        choices=("standalone", "coordinator", "worker"),
        default="standalone",
        help="standalone (default): single-node daemon; coordinator: "
        "route jobs across registered workers by coalescing fingerprint "
        "and serve the shared stage cache; worker: single-node daemon "
        "that registers with a coordinator and heartbeats",
    )
    fleet.add_argument(
        "--coordinator",
        metavar="URL",
        help="worker only: coordinator base URL, e.g. http://127.0.0.1:9300",
    )
    fleet.add_argument(
        "--node-id",
        metavar="NAME",
        help="worker only: stable fleet identity (default: advertised "
        "host:port)",
    )
    fleet.add_argument(
        "--advertise",
        metavar="URL",
        help="worker only: URL the coordinator should proxy to (default: "
        "http://HOST:PORT of this server)",
    )
    fleet.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SEC",
        help="coordinator: beat period handed to workers at registration; "
        "worker: fallback period until the contract arrives",
    )
    fleet.add_argument(
        "--heartbeat-misses",
        type=int,
        default=None,
        metavar="N",
        help="coordinator only: consecutive missed beats before a node is "
        "declared lost and its journaled jobs are reassigned",
    )
    return parser


def build_submit_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="systolic-synth submit",
        description="Submit a nest to a running synthesis server.",
    )
    parser.add_argument(
        "source", nargs="?", help="C file with a '#pragma systolic' nest, or "
        "a saved design-point JSON"
    )
    parser.add_argument(
        "--network",
        metavar="NAME_OR_JSON",
        help="submit a whole network for unified DSE instead of a nest: a "
        "built-in model name (e.g. mobilenet_v1, resnet18) or a .json "
        "importer spec file",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8451", help="server base URL"
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="stream the job's pipeline events until it finishes "
        "(reconnects automatically)",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="DIR",
        help="wait for the result and write the generated artifacts here",
    )
    parser.add_argument("--priority", type=int, default=0, help="queue priority")
    parser.add_argument(
        "--client-id",
        default=None,
        help="fair-share identity (default: this connection's address)",
    )
    parser.add_argument("--device", default="arria10_gt1150", help="target FPGA")
    parser.add_argument(
        "--datatype", default="float32", help="float32 | fixed8_16 | fixed16"
    )
    parser.add_argument(
        "--cs", type=float, default=0.8, help="minimum DSP utilization (Eq. 12 c_s)"
    )
    parser.add_argument("--top-n", type=int, default=14, help="phase-2 finalist count")
    parser.add_argument(
        "--clock", type=float, default=280.0, help="phase-1 assumed clock (MHz)"
    )
    parser.add_argument(
        "--dse-engine",
        choices=["vector", "object"],
        default="vector",
        help="DSE evaluation engine (bit-identical; vector is faster)",
    )
    parser.add_argument(
        "--sim-backend",
        choices=["fast", "rtl", "both", "testbench"],
        help="also execute the winner on a wavefront simulator",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="how long to wait for the result with --output (seconds)",
    )
    return parser


def build_import_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="systolic-synth import",
        description="Import a network (declarative JSON spec or serialized "
        "ONNX model), lower it to layer descriptors and loop nests, and "
        "synthesize one unified systolic design for the whole model.",
    )
    parser.add_argument(
        "source", help="network file: a .json spec or a serialized .onnx model"
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="stop after import + lowering: print the layer summary and "
        "diagnostics, skip the DSE (no artifacts written)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument("-o", "--output", default="systolic_out", help="output directory")
    parser.add_argument("--device", default="arria10_gt1150", help="target FPGA")
    parser.add_argument(
        "--datatype", default="float32", help="float32 | fixed8_16 | fixed16"
    )
    parser.add_argument(
        "--cs", type=float, default=0.8, help="minimum DSP utilization (Eq. 12 c_s)"
    )
    parser.add_argument("--top-n", type=int, default=14, help="phase-2 finalist count")
    parser.add_argument(
        "--clock", type=float, default=280.0, help="phase-1 assumed clock (MHz)"
    )
    parser.add_argument(
        "--dse-engine",
        choices=["vector", "object"],
        default="vector",
        help="DSE evaluation engine (bit-identical; vector is faster)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="DSE worker processes (0 = all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed stage cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="stage cache directory (default ~/.cache/repro-systolic)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the per-stage progress lines on stderr",
    )
    return parser


def import_main(argv: list[str]) -> int:
    """The ``import`` subcommand: network file -> unified systolic design."""
    args = build_import_arg_parser().parse_args(argv)
    from repro.frontend.network import load_network

    path = Path(args.source)
    if not path.is_file():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    imported = load_network(path, strict=False)
    if not imported.ok:
        if args.json:
            import json

            print(json.dumps(imported.report.to_dict(), indent=2))
        else:
            print(imported.report.render(), file=sys.stderr)
        return 1
    network = imported.network
    for diagnostic in imported.report.diagnostics:
        print(diagnostic.render(), file=sys.stderr)
    if args.check_only:
        if args.json:
            import json

            print(
                json.dumps(
                    {
                        "name": network.name,
                        "conv_layers": [str(l) for l in network.conv_layers],
                        "fc_layers": [l.name for l in network.fc_layers],
                        "pool_layers": [l.name for l in network.pool_layers],
                        "add_layers": [l.name for l in network.add_layers],
                        "conv_flops": network.conv_flops,
                        "diagnostics": imported.report.to_dict()["diagnostics"],
                    },
                    indent=2,
                )
            )
        else:
            print(f"imported {network.name}: {len(network.conv_layers)} conv, "
                  f"{len(network.fc_layers)} fc, {len(network.pool_layers)} pool, "
                  f"{len(network.add_layers)} add layers "
                  f"({network.conv_flops / 1e9:.2f} conv Gops/image)")
            for layer in network.conv_layers:
                print(f"  {layer}")
        return 0

    platform = Platform(
        device=device_by_name(args.device),
        datatype=datatype_by_name(args.datatype),
        assumed_clock_mhz=args.clock,
    )
    config = DseConfig(
        min_dsp_utilization=args.cs, top_n=args.top_n, engine=args.dse_engine
    )
    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    from repro.pipeline.events import Observer, ProgressPrinter

    cache: bool | str = not args.no_cache
    if args.cache_dir:
        cache = args.cache_dir
    observers: list[Observer] = [] if args.quiet else [ProgressPrinter()]
    report = _synthesize_network(
        network, platform, config, out_dir, cache, tuple(observers), args.jobs
    )
    (out_dir / "report.txt").write_text(report + "\n")
    print(report)
    print(f"\nartifacts written to {out_dir}/")
    return 0


def serve_main(argv: list[str]) -> int:
    """The ``serve`` subcommand: the flow as a daemon."""
    args = build_serve_arg_parser().parse_args(argv)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    import os
    import signal
    import threading

    from repro.resilience.faults import FAULT_PLAN_ENV_VAR, FAULT_SEED_ENV_VAR

    prior_env = {
        var: os.environ.get(var)
        for var in (FAULT_PLAN_ENV_VAR, FAULT_SEED_ENV_VAR)
    }
    if args.inject_fault:
        from repro.resilience.faults import FaultPlan, activate

        try:
            plan = FaultPlan.parse(";".join(args.inject_fault), seed=args.seed)
        except ValueError as exc:
            print(f"error: --inject-fault: {exc}", file=sys.stderr)
            return 2
        activate(plan, export_env=True)
    if args.max_retries is not None:
        if args.max_retries < 1:
            print("error: --max-retries must be >= 1", file=sys.stderr)
            return 2
        from repro.resilience.retry import configure_retries

        configure_retries(max_attempts=args.max_retries)

    if args.role == "worker" and not args.coordinator:
        print("error: --role worker requires --coordinator URL", file=sys.stderr)
        _reset_resilience(prior_env)
        return 2
    if args.role == "coordinator":
        return _serve_coordinator(args, prior_env)

    from repro.service.http import run_server, shutdown_server
    from repro.service.jobs import JobManager

    cache: bool | str = not args.no_cache
    if args.cache_dir:
        cache = args.cache_dir
    if args.role == "worker":
        # The replicated fleet cache needs the manager first (SA704
        # degradations land on it); attach it after construction.
        cache = False
    manager = JobManager(
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache=cache,
        rate=args.rate,
        burst=args.burst,
        journal=args.journal,
        pipeline_jobs=args.jobs,
    )
    try:
        server = run_server(
            manager, host=args.host, port=args.port, verbose=args.verbose
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        _reset_resilience(prior_env)
        return 2
    agent = None
    if args.role == "worker":
        from repro.cluster.worker import WorkerAgent, make_worker_cache
        from repro.pipeline.cache import default_cache_dir

        if not args.no_cache:
            root = args.cache_dir or str(default_cache_dir())
            manager.cache = make_worker_cache(root, args.coordinator, manager)
        advertise = args.advertise or f"http://{args.host}:{server.port}"
        agent = WorkerAgent(
            manager,
            coordinator_url=args.coordinator,
            advertise_url=advertise,
            node_id=args.node_id,
            **(
                {"interval": args.heartbeat_interval}
                if args.heartbeat_interval
                else {}
            ),
        )
        agent.start()
    stopping = threading.Event()

    def on_signal(signum, frame):
        stopping.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    print(
        f"systolic-synth serve: listening on http://{args.host}:{server.port} "
        f"({args.workers} workers, queue depth {args.queue_depth}"
        + (f", journal {args.journal}" if args.journal else "")
        + (f", worker of {args.coordinator}" if agent is not None else "")
        + ")",
        file=sys.stderr,
        flush=True,
    )
    try:
        while not stopping.wait(0.2):
            pass
        print(
            "systolic-synth serve: draining (running jobs finish, queued "
            "jobs stay journaled)...",
            file=sys.stderr,
            flush=True,
        )
        if agent is not None:
            # Leave the fleet first so the coordinator reassigns our
            # journaled jobs immediately instead of after K misses.
            agent.stop(deregister=True)
        shutdown_server(server)
        stats = manager.stats()
        print(
            f"systolic-synth serve: drained; {stats['done']} done, "
            f"{stats['failed']} failed, {stats['cancelled']} cancelled",
            file=sys.stderr,
            flush=True,
        )
        return 0
    finally:
        _reset_resilience(prior_env)


def _serve_coordinator(args: argparse.Namespace, prior_env: dict) -> int:
    """``serve --role coordinator``: route jobs across the fleet and serve
    the shared stage-cache store."""
    import signal
    import threading

    from repro.cluster.coordinator import (
        HEARTBEAT_INTERVAL,
        HEARTBEAT_MISSES,
        ClusterCoordinator,
    )
    from repro.cluster.http import run_coordinator, shutdown_coordinator
    from repro.pipeline.cache import resolve_cache

    store = None
    if not args.no_cache:
        shared = resolve_cache(args.cache_dir if args.cache_dir else True)
        store = None if shared is None else shared.store
    coordinator = ClusterCoordinator(
        store=store,
        journal=args.journal,
        heartbeat_interval=args.heartbeat_interval or HEARTBEAT_INTERVAL,
        heartbeat_misses=args.heartbeat_misses or HEARTBEAT_MISSES,
    )
    try:
        server = run_coordinator(
            coordinator, host=args.host, port=args.port, verbose=args.verbose
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        _reset_resilience(prior_env)
        return 2
    stopping = threading.Event()

    def on_signal(signum, frame):
        stopping.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    print(
        f"systolic-synth serve: coordinating on http://{args.host}:{server.port}"
        + (f" (journal {args.journal})" if args.journal else ""),
        file=sys.stderr,
        flush=True,
    )
    try:
        while not stopping.wait(0.2):
            pass
        stats = coordinator.stats()
        print(
            "systolic-synth serve: coordinator stopping; "
            f"{stats['settled']} settled, {stats['pending']} pending "
            "(journaled jobs resume on restart)",
            file=sys.stderr,
            flush=True,
        )
        shutdown_coordinator(server)
        return 0
    finally:
        _reset_resilience(prior_env)


def submit_main(argv: list[str]) -> int:
    """The ``submit`` subcommand: client of a running server."""
    args = build_submit_arg_parser().parse_args(argv)
    from repro.service.client import ServiceClient, ServiceError

    if bool(args.source) == bool(args.network):
        print("error: provide exactly one of SOURCE or --network", file=sys.stderr)
        return 2
    options = {
        "device": args.device,
        "datatype": args.datatype,
        "cs": args.cs,
        "top_n": args.top_n,
        "clock": args.clock,
        "engine": args.dse_engine,
    }
    if args.sim_backend:
        options["sim_backend"] = args.sim_backend
    if args.network:
        if args.network.endswith(".json"):
            spec_path = Path(args.network)
            if not spec_path.is_file():
                print(f"error: no such file: {spec_path}", file=sys.stderr)
                return 2
            import json as _json

            body: dict = {
                "name": spec_path.stem,
                "options": options,
                "network": _json.loads(spec_path.read_text()),
            }
        else:
            body = {"name": args.network, "options": options, "network": args.network}
    else:
        path = Path(args.source)
        if not path.is_file():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        body = {"name": path.stem, "options": options}
        if path.suffix == ".json":
            import json as _json

            body["design"] = _json.loads(path.read_text())
        else:
            try:
                body["source"] = path.read_text()
            except UnicodeDecodeError:
                print(f"error: {path} is not a text file", file=sys.stderr)
                return 2
    client = ServiceClient(args.url, client_id=args.client_id)
    try:
        job = client.submit(priority=args.priority, **body)
    except ServiceError as exc:
        hint = ""
        if exc.status == 429 and exc.retry_after:
            hint = f" (retry in {exc.retry_after:.0f}s)"
        print(f"error: {exc.message}{hint}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    print(f"job {job['id']} {job['state']}"
          + (f" (coalesced onto {job['primary']})" if job["coalesced"] else ""))
    if args.follow:
        from repro.pipeline import events as ev

        printer = ev.ProgressPrinter(sys.stderr)
        try:
            for event in client.events(job["id"]):
                kind = event.get("event")
                if kind == "JobFinished":
                    print(f"job {job['id']} {event.get('state')}"
                          + (f": {event['error']}" if event.get("error") else ""))
                elif kind in ("JobQueued", "JobStarted", "JobCoalesced", "JobRequeued"):
                    print(f"[{kind}] {event.get('id', '')}", file=sys.stderr)
                else:
                    typed = ev.event_from_dict(event)
                    if typed is not None:
                        printer(typed)
        except ServiceError as exc:
            print(f"error: {exc.message}", file=sys.stderr)
            return 1
    if args.output:
        try:
            status = client.wait(job["id"], timeout=args.timeout)
        except (ServiceError, TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if status["state"] != "done":
            print(
                f"error: job {job['id']} {status['state']}"
                + (f": {status['error']}" if status.get("error") else ""),
                file=sys.stderr,
            )
            return 1
        from repro.model.serialize import result_from_dict
        from repro.pipeline.codecs import UNIFIED_FORMAT

        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
        if status["result"].get("format") == UNIFIED_FORMAT:
            import json as _json

            (out_dir / "unified_result.json").write_text(
                _json.dumps(status["result"], indent=2) + "\n"
            )
            print(f"unified result written to {out_dir}/unified_result.json")
            return 0
        result = result_from_dict(status["result"])
        (out_dir / "kernel.cl").write_text(result.kernel_source)
        (out_dir / "host.cpp").write_text(result.host_source)
        (out_dir / "testbench.c").write_text(result.testbench_source)
        (out_dir / "driver.c").write_text(result.driver_source)
        (out_dir / "opencl_shim.h").write_text(OPENCL_SHIM)
        if result.rtl_source is not None:
            (out_dir / "systolic.v").write_text(result.rtl_source)
        (out_dir / "report.txt").write_text(render_synthesis_report(result) + "\n")
        print(f"artifacts written to {out_dir}/")
    elif not args.follow:
        print(f"poll with: GET {args.url}/v1/jobs/{job['id']}")
    return 0


def verify_main(argv: list[str]) -> int:
    """The ``verify`` subcommand: differential conformance, no artifacts."""
    args = build_verify_arg_parser().parse_args(argv)
    from repro.verify.conformance import (
        DEFAULT_ENGINE_ITERATION_LIMIT,
        DEFAULT_REL_TOL,
        DEFAULT_RTL_ITERATION_LIMIT,
        cross_check,
    )

    path = Path(args.source)
    if not path.is_file():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    if path.suffix == ".json":
        from repro.model.serialize import load_design

        try:
            design = load_design(path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.analysis.check import run_checks

        platform = Platform(
            device=device_by_name(args.device),
            datatype=datatype_by_name(args.datatype),
        )
        try:
            source = path.read_text()
        except UnicodeDecodeError:
            print(f"error: {path} is not a text file", file=sys.stderr)
            return 2
        checked = run_checks(
            source,
            platform=platform,
            level="design",
            name=path.stem,
            filename=str(path),
            require_pragma=not args.no_pragma,
        )
        if checked.design is None:
            print(checked.report.render(source), file=sys.stderr)
            return checked.exit_code or 1
        design = checked.design
    import os

    require_iverilog = args.require_iverilog or os.environ.get(
        "RTL_REQUIRE_IVERILOG"
    ) not in (None, "", "0")
    conformance = cross_check(
        design,
        seed=args.seed,
        rel_tol=args.rel_tol if args.rel_tol is not None else DEFAULT_REL_TOL,
        engine_iteration_limit=(
            args.engine_limit
            if args.engine_limit is not None
            else DEFAULT_ENGINE_ITERATION_LIMIT
        ),
        rtl=args.sim_backend in ("rtl", "both"),
        rtl_iteration_limit=(
            args.rtl_limit
            if args.rtl_limit is not None
            else DEFAULT_RTL_ITERATION_LIMIT
        ),
        iverilog="require" if require_iverilog else "auto",
    )
    if args.json:
        import json

        print(json.dumps(conformance.to_dict(), indent=2))
    else:
        print(conformance.render())
    return conformance.exit_code


def check_main(argv: list[str]) -> int:
    """The ``check`` subcommand: analysis only, no artifacts."""
    args = build_check_arg_parser().parse_args(argv)
    from repro.analysis.check import run_checks

    path = Path(args.source)
    if not path.is_file():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    platform = Platform(
        device=device_by_name(args.device),
        datatype=datatype_by_name(args.datatype),
    )
    try:
        source = path.read_text()
    except UnicodeDecodeError:
        print(f"error: {path} is not a text file", file=sys.stderr)
        return 2
    result = run_checks(
        source,
        platform=platform,
        level=args.level,
        name=path.stem,
        filename=str(path),
        require_pragma=not args.no_pragma,
    )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.report.render(source))
        if result.ok and result.design is not None:
            print(f"validated design: {result.design.signature}")
    return result.exit_code


def build_lint_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="systolic-synth lint",
        description="Whole-program concurrency & determinism analysis "
        "(the SA6xx passes) over the flow's own Python sources.",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default="src/repro",
        help="package directory to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PREFIX",
        help="keep findings whose code starts with PREFIX (repeatable; "
        "default SA6)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppression baseline: known findings listed in FILE are "
        "reported but not fatal; only NEW findings fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline FILE to suppress exactly the current "
        "findings, then exit 0 (the ratchet update path)",
    )
    parser.add_argument(
        "--package",
        default=None,
        help="dotted package name of ROOT (auto-detected by default)",
    )
    return parser


def lint_main(argv: list[str]) -> int:
    """The ``lint`` subcommand: SA6xx static analysis + baseline ratchet."""
    args = build_lint_arg_parser().parse_args(argv)
    import json

    from repro.analysis.program import (
        AnalyzeOptions,
        analyze_program,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.program.baseline import Baseline

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2
    root = Path(args.root)
    if not root.exists():
        print(f"error: no such analysis root: {root}", file=sys.stderr)
        return 2
    select = tuple(args.select) if args.select else ("SA6",)
    analysis = analyze_program(
        root, AnalyzeOptions(select=select, package=args.package)
    )
    if args.write_baseline:
        baseline = write_baseline(args.baseline, analysis.findings)
        print(
            f"wrote {args.baseline}: {len(baseline)} suppression(s) "
            f"from {len(analysis.findings)} finding(s)"
        )
        return 0
    try:
        baseline = load_baseline(args.baseline) if args.baseline else Baseline()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    delta = apply_baseline(analysis.findings, baseline)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "root": str(root),
                    "select": list(select),
                    "ok": delta.ok,
                    "findings": [
                        {"key": f.key, **f.diagnostic.to_dict()}
                        for f in analysis.findings
                    ],
                    "new": [f.key for f in delta.new],
                    "suppressed": [f.key for f in delta.suppressed],
                    "stale": delta.stale,
                },
                indent=2,
            )
        )
        return delta.exit_code
    sources = {
        str(module.path): module.source
        for module in analysis.model.modules.values()
    }

    def render(findings) -> None:
        for finding in findings:
            span = finding.diagnostic.span
            source = None
            if span is not None and span.filename is not None:
                source = sources.get(str(analysis.model.root / span.filename))
            print(finding.diagnostic.render(source))

    render(delta.new)
    if delta.suppressed:
        print(f"{len(delta.suppressed)} known finding(s) suppressed by baseline")
    for key in delta.stale:
        print(f"stale baseline entry (no longer found): {key}")
    if delta.new:
        print(f"{len(delta.new)} new finding(s)")
    else:
        print("no new findings")
    return delta.exit_code


def _reset_resilience(prior_env: dict[str, str | None]) -> None:
    """Undo CLI-scoped chaos/retry configuration and restore the fault env
    vars to their pre-``main`` values (keeps repeated in-process ``main()``
    calls — tests, notebooks — independent of each other)."""
    import os

    from repro.resilience.faults import deactivate
    from repro.resilience.retry import reset_retries

    deactivate()
    for var, value in prior_env.items():
        if value is None:
            os.environ.pop(var, None)
        else:
            os.environ[var] = value
    reset_retries()


def main(argv: list[str] | None = None) -> int:
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] == "check":
        return check_main(raw[1:])
    if raw and raw[0] == "verify":
        return verify_main(raw[1:])
    if raw and raw[0] == "serve":
        return serve_main(raw[1:])
    if raw and raw[0] == "submit":
        return submit_main(raw[1:])
    if raw and raw[0] == "lint":
        return lint_main(raw[1:])
    if raw and raw[0] == "import":
        return import_main(raw[1:])
    if raw and raw[0] == "compile":
        raw = raw[1:]  # explicit subcommand name for the default action
    args = build_arg_parser().parse_args(raw)
    if bool(args.source) == bool(args.network):
        print("error: provide exactly one of SOURCE or --network", file=sys.stderr)
        return 2
    import os

    from repro.resilience.faults import FAULT_PLAN_ENV_VAR, FAULT_SEED_ENV_VAR

    prior_env = {
        var: os.environ.get(var)
        for var in (FAULT_PLAN_ENV_VAR, FAULT_SEED_ENV_VAR)
    }
    try:
        return _configured_main(args)
    finally:
        _reset_resilience(prior_env)


def _configured_main(args) -> int:
    if args.inject_fault:
        from repro.resilience.faults import FaultPlan, activate

        try:
            plan = FaultPlan.parse(";".join(args.inject_fault), seed=args.seed)
        except ValueError as exc:
            print(f"error: --inject-fault: {exc}", file=sys.stderr)
            return 2
        # Workers spawned by the DSE pools read the plan back from the
        # environment, so chaos follows the work across processes.
        activate(plan, export_env=True)
    if args.max_retries is not None:
        if args.max_retries < 1:
            print("error: --max-retries must be >= 1", file=sys.stderr)
            return 2
        from repro.resilience.retry import configure_retries

        configure_retries(max_attempts=args.max_retries)

    platform = Platform(
        device=device_by_name(args.device),
        datatype=datatype_by_name(args.datatype),
        assumed_clock_mhz=args.clock,
    )
    config = DseConfig(
        min_dsp_utilization=args.cs, top_n=args.top_n, engine=args.dse_engine
    )
    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)

    from repro.pipeline.events import JsonlTraceWriter, Observer, ProgressPrinter

    cache: bool | str = not args.no_cache
    if args.cache_dir:
        cache = args.cache_dir
    observers: list[Observer] = [] if args.quiet else [ProgressPrinter()]
    trace = JsonlTraceWriter(args.trace_json) if args.trace_json else None
    if trace is not None:
        observers.append(trace)
    try:
        return _synthesize(args, platform, config, out_dir, cache, tuple(observers))
    finally:
        if trace is not None:
            trace.close()


def _synthesize_network(
    network, platform, config, out_dir, cache, observers, jobs
) -> str:
    """Run the unified whole-network flow and write its artifacts.

    Shared by ``--network <builtin>`` and ``import <file>``; returns the
    text report.
    """
    synthesis = synthesize_network(
        network, platform, config, jobs=jobs, cache=cache, observers=observers
    )
    result = synthesis.result
    (out_dir / "kernel.cl").write_text(synthesis.kernel_source)
    (out_dir / "host.cpp").write_text(synthesis.host_source)
    (out_dir / "opencl_shim.h").write_text(OPENCL_SHIM)
    rows = [
        (l.name, f"{l.throughput_gops:.1f}", f"{l.dsp_efficiency:.1%}",
         f"{l.seconds * 1e3:.3f}", l.bound)
        for l in result.layers
    ]
    return "\n".join(
        [
            f"unified design for {network.name}: shape {result.config.shape} "
            f"mapping ({result.config.mapping.row},{result.config.mapping.col},"
            f"{result.config.mapping.vector}) @ {result.frequency_mhz:.1f} MHz",
            f"DSP {result.dsp_utilization:.0%}  BRAM {result.bram_utilization:.0%}  "
            f"logic {result.logic_utilization:.0%}",
            "",
            format_table(
                ["layer", "Gops", "DSP eff", "ms", "bound"], rows,
                title="per-layer performance",
            ),
            "",
            f"total conv latency {synthesis.latency_ms:.2f} ms/image, "
            f"aggregate {synthesis.throughput_gops:.1f} Gops",
        ]
    )


def _synthesize(args, platform, config, out_dir, cache, observers) -> int:
    if args.network:
        from repro.nn import models

        network = getattr(models, args.network)()
        report = _synthesize_network(
            network, platform, config, out_dir, cache, observers, args.jobs
        )
    else:
        source = Path(args.source).read_text()
        synthesis = compile_c_source(
            source,
            platform,
            config,
            name=Path(args.source).stem,
            jobs=args.jobs,
            sim_backend=args.sim_backend,
            cache=cache,
            observers=observers,
        )
        (out_dir / "kernel.cl").write_text(synthesis.kernel_source)
        (out_dir / "host.cpp").write_text(synthesis.host_source)
        (out_dir / "testbench.c").write_text(synthesis.testbench_source)
        (out_dir / "driver.c").write_text(synthesis.driver_source)
        (out_dir / "opencl_shim.h").write_text(OPENCL_SHIM)
        if synthesis.rtl_source is not None:
            (out_dir / "systolic.v").write_text(synthesis.rtl_source)
        if args.save_design:
            from repro.model.serialize import save_design

            save_design(synthesis.evaluation.design, args.save_design)
        if args.save_result:
            from repro.model.serialize import save_result

            save_result(synthesis, args.save_result)
        report = render_synthesis_report(synthesis)

    (out_dir / "report.txt").write_text(report + "\n")
    print(report)
    print(f"\nartifacts written to {out_dir}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())


__all__ = [
    "build_arg_parser",
    "build_check_arg_parser",
    "build_import_arg_parser",
    "build_serve_arg_parser",
    "build_submit_arg_parser",
    "build_verify_arg_parser",
    "check_main",
    "import_main",
    "main",
    "serve_main",
    "submit_main",
    "verify_main",
]
