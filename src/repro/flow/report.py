"""Plain-text reporting helpers shared by the CLI, examples and benches."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column headers.
        rows: cell values (stringified).
        title: optional heading printed above the table.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_synthesis_report(result) -> str:
    """Human-readable summary of a :class:`~repro.flow.compile.SynthesisResult`."""
    ev = result.evaluation
    design = ev.design
    perf = result.measurement
    lines = [
        "Systolic Array Synthesis Report",
        "=" * 40,
        f"nest:        {design.nest.name}",
        f"mapping:     row={design.mapping.row}  col={design.mapping.col}  "
        f"vec={design.mapping.vector}",
        f"PE array:    {design.shape} = {design.shape.lanes} MAC lanes",
        f"tiling (s):  {design.middle_bounds}",
        f"clock:       {result.frequency_mhz:.1f} MHz (realized)",
        "",
        f"DSP:         {ev.dsp_blocks:.0f} blocks ({ev.dsp_utilization:.0%})",
        f"BRAM:        {ev.bram.total} blocks ({ev.bram_utilization:.0%})",
        f"logic:       ~{ev.logic_cells:.0f} cells",
        "",
        f"estimated:   {ev.throughput_gops:.1f} Gops (analytical model)",
        f"simulated:   {perf.throughput_gops:.1f} Gops ({perf.bound}-bound, "
        f"{perf.blocks} blocks)",
        f"latency:     {perf.seconds * 1e3:.3f} ms / invocation",
        "",
        f"DSE: {result.configs_tuned}/{result.configs_enumerated} configs tuned "
        f"in {result.dse_seconds:.2f} s",
    ]
    engine_result = getattr(result, "engine_result", None)
    if engine_result is not None:
        lines += [
            "",
            f"wavefront sim: {engine_result.compute_cycles} compute cycles "
            f"({engine_result.waves} waves over {engine_result.blocks} blocks, "
            f"{engine_result.pe_active_cycles} PE-active cycles)",
        ]
    conformance = getattr(result, "conformance", None)
    if conformance is not None:
        lines += ["", conformance.render()]
    degradations = getattr(result, "degradations", ())
    if degradations:
        lines.append("")
        lines.append("degradations survived (see docs/resilience.md):")
        for code, reason in degradations:
            lines.append(f"  [{code}] {reason}")
    stage_seconds = getattr(result, "stage_seconds", ())
    if stage_seconds:
        cached = set(getattr(result, "cache_hits", ()))
        lines.append("")
        lines.append("pipeline stages:")
        for stage, seconds in stage_seconds:
            origin = "  (cached)" if stage in cached else ""
            lines.append(f"  {stage:<15} {seconds:8.3f} s{origin}")
    return "\n".join(lines)


__all__ = ["format_table", "render_synthesis_report"]
