"""The push-button synthesis pipeline.

"A user only needs to specify the nested loop that functions as a CNN
layer using a pragma ... No hardware-related, low-level considerations
are necessary for end users."  These functions chain the front end, the
two-phase DSE, the code generators and the performance simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.extract import loop_nest_from_source
from repro.ir.loop import LoopNest
from repro.model.design_point import DesignEvaluation
from repro.model.platform import Platform
from repro.nn.models import Network
from repro.codegen.host import generate_host
from repro.codegen.opencl import generate_kernel, generate_kernel_driver
from repro.codegen.testbench import generate_testbench
from repro.dse.explore import DseConfig, phase1, phase2
from repro.dse.multi_layer import MultiLayerResult, select_unified_design
from repro.sim.perf import LayerMeasurement, simulate_performance


@dataclass(frozen=True)
class SynthesisResult:
    """Everything the flow produces for one layer.

    Attributes:
        evaluation: winning design at its realized clock.
        frequency_mhz: realized clock.
        measurement: performance-simulator run at the realized clock.
        kernel_source / host_source / testbench_source / driver_source:
            the generated artifacts.
        configs_enumerated / configs_tuned: phase-1 statistics.
        dse_seconds: phase-1 wall-clock time.
    """

    evaluation: DesignEvaluation
    frequency_mhz: float
    measurement: LayerMeasurement
    kernel_source: str
    host_source: str
    testbench_source: str
    driver_source: str
    configs_enumerated: int
    configs_tuned: int
    dse_seconds: float

    @property
    def throughput_gops(self) -> float:
        """Simulated ("measured") throughput."""
        return self.measurement.throughput_gops


def synthesize_nest(
    nest: LoopNest,
    platform: Platform | None = None,
    config: DseConfig = DseConfig(),
    *,
    strict: bool = False,
) -> SynthesisResult:
    """Full flow for a single loop nest.

    Args:
        nest: the convolution loop nest (from the front end or a layer).
        platform: target platform (Arria 10 float by default).
        config: DSE knobs.
        strict: run the static-analysis self-audit end to end — nest
            legality before the DSE, the independent design-point
            validator on the winner, and the generated-code linter on
            every emitted artifact.  Raises
            :class:`repro.analysis.DiagnosticError` on any violation.
    """
    platform = platform or Platform()
    if strict:
        from dataclasses import replace

        from repro.analysis.nest_check import check_nest

        # Layer-derived nests legitimately carry strided subscripts
        # (the stride-folding transformation introduces them).
        check_nest(nest, allow_strided=True).raise_if_errors()
        config = replace(config, strict=True)
    p1 = phase1(nest, platform, config)
    p2 = phase2(p1, platform, strict=strict)
    best = p2.best
    design = best.design
    freq = best.performance.frequency_mhz
    measurement = simulate_performance(design, platform, frequency_mhz=freq)
    result = SynthesisResult(
        evaluation=best,
        frequency_mhz=freq,
        measurement=measurement,
        kernel_source=generate_kernel(design, platform),
        host_source=generate_host(design, platform),
        testbench_source=generate_testbench(design, platform),
        driver_source=generate_kernel_driver(design, platform),
        configs_enumerated=p1.configs_enumerated,
        configs_tuned=p1.configs_tuned,
        dse_seconds=p1.elapsed_seconds,
    )
    if strict:
        from repro.analysis.codegen_lint import lint_against_design, lint_generated_code
        from repro.analysis.diagnostics import AnalysisReport

        combined = AnalysisReport()
        for label, text in (
            ("testbench", result.testbench_source),
            ("kernel", result.kernel_source),
            ("driver", result.driver_source),
        ):
            combined.extend(lint_generated_code(text, filename=f"<{label}>"))
            if label != "driver":
                combined.extend(
                    lint_against_design(text, design, filename=f"<{label}>")
                )
        combined.raise_if_errors()
    return result


def compile_c_source(
    source: str,
    platform: Platform | None = None,
    config: DseConfig = DseConfig(),
    *,
    name: str = "user_nest",
    require_pragma: bool = True,
    strict: bool = False,
) -> SynthesisResult:
    """Full flow from C text (the paper's programming model).

    Args:
        source: restricted-C program with a ``#pragma systolic`` nest.
        platform: target platform.
        config: DSE knobs.
        name: label for the nest.
        require_pragma: reject unannotated programs (the paper's flow is
            pragma-driven); set False to synthesize any conforming nest.
        strict: run the full static-analysis pass over the source first
            (raising :class:`repro.analysis.DiagnosticError` with
            located diagnostics on rejection) and audit the DSE result
            and generated artifacts; see :func:`synthesize_nest`.

    Raises:
        ValueError: if the pragma is required and missing (a located
            ``DiagnosticError`` in strict mode).
    """
    if strict:
        from repro.analysis.nest_check import check_source

        nest, report = check_source(source, name=name, require_pragma=require_pragma)
        report.raise_if_errors()
        assert nest is not None  # check_source only returns None with errors
        return synthesize_nest(nest, platform, config, strict=True)
    nest, pragma = loop_nest_from_source(source, name=name)
    if require_pragma and (pragma is None or "systolic" not in pragma):
        raise ValueError(
            "no '#pragma systolic' found; annotate the nest or pass "
            "require_pragma=False"
        )
    return synthesize_nest(nest, platform, config)


@dataclass(frozen=True)
class NetworkSynthesis:
    """Flow output for a whole network (one unified design).

    Attributes:
        result: the unified-design DSE outcome (per-layer performance).
        kernel_source / host_source: artifacts for the unified design,
            generated against the envelope nest.
        latency_ms: conv latency per image.
        throughput_gops: aggregate conv throughput.
    """

    result: MultiLayerResult
    kernel_source: str
    host_source: str

    @property
    def latency_ms(self) -> float:
        return self.result.total_seconds * 1e3

    @property
    def throughput_gops(self) -> float:
        return self.result.aggregate_gops


def synthesize_network(
    network: Network,
    platform: Platform | None = None,
    config: DseConfig = DseConfig(),
) -> NetworkSynthesis:
    """Full flow for a network: one unified design for all conv layers."""
    platform = platform or Platform()
    result = select_unified_design(network, platform, config)
    # Generate the artifact against the largest layer (the envelope user);
    # per-layer middle bounds are runtime parameters of the same kernel.
    from repro.model.design_point import DesignPoint
    from repro.dse.multi_layer import prepare_network_nests

    workloads = prepare_network_nests(network)
    largest = max(workloads, key=lambda w: w.nest.total_operations)
    layer_perf = {l.name: l for l in result.layers}
    design = DesignPoint.create(
        largest.nest,
        result.config.mapping,
        result.config.shape,
        layer_perf[largest.name].middle,
    )
    return NetworkSynthesis(
        result=result,
        kernel_source=generate_kernel(design, platform),
        host_source=generate_host(design, platform),
    )


__all__ = [
    "NetworkSynthesis",
    "SynthesisResult",
    "compile_c_source",
    "synthesize_nest",
    "synthesize_network",
]
