"""The push-button synthesis pipeline.

"A user only needs to specify the nested loop that functions as a CNN
layer using a pragma ... No hardware-related, low-level considerations
are necessary for end users."  These functions are thin entry points over
the staged pipeline engine (:mod:`repro.pipeline`): they build a
:class:`~repro.pipeline.context.SynthesisContext`, run the canonical
stage sequence ``parse → legality-check → dse-phase1 → dse-phase2 →
codegen → simulate``, and fold the context into the same
:class:`SynthesisResult` the flow has always returned.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.ir.loop import LoopNest
from repro.model.platform import Platform
from repro.nn.models import Network
from repro.codegen.host import generate_host
from repro.codegen.opencl import generate_kernel
from repro.dse.explore import DseConfig
from repro.dse.multi_layer import MultiLayerResult
from repro.pipeline.cache import StageCache, resolve_cache
from repro.pipeline.context import SynthesisContext, SynthesisResult
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.events import Observer
from repro.pipeline.stages import synthesis_stages
from repro.pipeline.unified import run_unified_dse

CacheSpec = StageCache | str | bool | None
"""How callers select a stage cache: None/False = off, True = the default
directory, a path or a StageCache instance = that cache."""


def _run_pipeline(ctx: SynthesisContext, cache: CacheSpec, observers) -> SynthesisResult:
    engine = PipelineEngine(
        synthesis_stages(), cache=resolve_cache(cache), observers=tuple(observers)
    )
    return engine.run(ctx).to_result()


def synthesize_nest(
    nest: LoopNest,
    platform: Platform | None = None,
    config: DseConfig = DseConfig(),
    *,
    strict: bool = False,
    jobs: int = 1,
    sim_backend: str | None = None,
    cache: CacheSpec = None,
    observers: tuple[Observer, ...] = (),
) -> SynthesisResult:
    """Full flow for a single loop nest.

    Args:
        nest: the convolution loop nest (from the front end or a layer).
        platform: target platform (Arria 10 float by default).
        config: DSE knobs.
        strict: run the static-analysis self-audit end to end — nest
            legality before the DSE, the independent design-point
            validator on the winner, and the generated-code linter on
            every emitted artifact.  Raises
            :class:`repro.analysis.DiagnosticError` on any violation.
        jobs: worker processes for the DSE fan-out (1 = serial, <= 0 =
            all cores); the result is bit-identical for any value.
        sim_backend: also execute the winner on a wavefront simulator
            with synthetic tensors — ``"fast"`` (vectorized), ``"rtl"``
            (cycle-accurate engine; small nests only) or ``"both"``
            (differential conformance via :mod:`repro.verify`, raising
            :class:`repro.analysis.DiagnosticError` on disagreement).
            The result's ``engine_result`` / ``conformance`` fields are
            populated accordingly.
        cache: stage cache (off by default for the API; the CLI defaults
            it on) — see :data:`CacheSpec`.
        observers: pipeline event callbacks (progress printer, JSONL
            trace writer, ...).
    """
    platform = platform or Platform()
    if strict:
        config = replace(config, strict=True)
    ctx = SynthesisContext(
        platform=platform,
        config=config,
        strict=strict,
        jobs=jobs,
        sim_backend=sim_backend,
        nest=nest,
    )
    return _run_pipeline(ctx, cache, observers)


def compile_c_source(
    source: str,
    platform: Platform | None = None,
    config: DseConfig = DseConfig(),
    *,
    name: str = "user_nest",
    require_pragma: bool = True,
    strict: bool = False,
    jobs: int = 1,
    sim_backend: str | None = None,
    cache: CacheSpec = None,
    observers: tuple[Observer, ...] = (),
) -> SynthesisResult:
    """Full flow from C text (the paper's programming model).

    Args:
        source: restricted-C program with a ``#pragma systolic`` nest.
        platform: target platform.
        config: DSE knobs.
        name: label for the nest.
        require_pragma: reject unannotated programs (the paper's flow is
            pragma-driven); set False to synthesize any conforming nest.
        strict: run the full static-analysis pass over the source first
            (raising :class:`repro.analysis.DiagnosticError` with
            located diagnostics on rejection) and audit the DSE result
            and generated artifacts; see :func:`synthesize_nest`.
        jobs: worker processes for the DSE fan-out.
        sim_backend: wavefront-simulator backend for the winner
            (``fast`` | ``rtl`` | ``both``); see :func:`synthesize_nest`.
        cache: stage cache — see :data:`CacheSpec`.
        observers: pipeline event callbacks.

    Raises:
        ValueError: if the pragma is required and missing (a located
            ``DiagnosticError`` in strict mode).
    """
    platform = platform or Platform()
    if strict:
        config = replace(config, strict=True)
    ctx = SynthesisContext(
        platform=platform,
        config=config,
        source=source,
        name=name,
        require_pragma=require_pragma,
        strict=strict,
        jobs=jobs,
        sim_backend=sim_backend,
    )
    return _run_pipeline(ctx, cache, observers)


@dataclass(frozen=True)
class NetworkSynthesis:
    """Flow output for a whole network (one unified design).

    Attributes:
        result: the unified-design DSE outcome (per-layer performance).
        kernel_source / host_source: artifacts for the unified design,
            generated against the envelope nest.
        latency_ms: conv latency per image.
        throughput_gops: aggregate conv throughput.
    """

    result: MultiLayerResult
    kernel_source: str
    host_source: str

    @property
    def latency_ms(self) -> float:
        return self.result.total_seconds * 1e3

    @property
    def throughput_gops(self) -> float:
        return self.result.aggregate_gops


def synthesize_network(
    network: Network,
    platform: Platform | None = None,
    config: DseConfig = DseConfig(),
    *,
    jobs: int = 1,
    cache: CacheSpec = None,
    observers: tuple[Observer, ...] = (),
) -> NetworkSynthesis:
    """Full flow for a network: one unified design for all conv layers.

    Args:
        network: the CNN model.
        platform: target platform.
        config: DSE knobs.
        jobs: worker processes for the per-candidate tuning fan-out.
        cache: stage cache — see :data:`CacheSpec`.
        observers: pipeline event callbacks.
    """
    platform = platform or Platform()
    result = run_unified_dse(
        network, platform, config, jobs=jobs, cache=cache, observers=tuple(observers)
    )
    # Generate the artifact against the largest layer (the envelope user);
    # per-layer middle bounds are runtime parameters of the same kernel.
    from repro.model.design_point import DesignPoint
    from repro.dse.multi_layer import prepare_network_nests

    workloads = prepare_network_nests(network)
    largest = max(workloads, key=lambda w: w.nest.total_operations)
    layer_perf = {l.name: l for l in result.layers}
    design = DesignPoint.create(
        largest.nest,
        result.config.mapping,
        result.config.shape,
        layer_perf[largest.name].middle,
    )
    return NetworkSynthesis(
        result=result,
        kernel_source=generate_kernel(design, platform),
        host_source=generate_host(design, platform),
    )


__all__ = [
    "CacheSpec",
    "NetworkSynthesis",
    "SynthesisResult",
    "compile_c_source",
    "synthesize_nest",
    "synthesize_network",
]
