"""End-to-end automation flow (paper Fig. 6).

``C source -> front-end analysis -> two-phase DSE -> code generation ->
simulation report`` as one call (:func:`repro.flow.compile.compile_c_source`)
or one shell command (``systolic-synth``, :mod:`repro.flow.cli`).
"""

from repro.flow.compile import (
    CacheSpec,
    NetworkSynthesis,
    SynthesisResult,
    compile_c_source,
    synthesize_nest,
    synthesize_network,
)
from repro.flow.report import format_table, render_synthesis_report

__all__ = [
    "CacheSpec",
    "NetworkSynthesis",
    "SynthesisResult",
    "compile_c_source",
    "format_table",
    "render_synthesis_report",
    "synthesize_nest",
    "synthesize_network",
]
