"""The one-call static-analysis entry point (and the ``check`` CLI).

Chains the three passes over a restricted-C source:

1. :mod:`repro.analysis.nest_check` — is the nest systolizable at all?
2. :mod:`repro.analysis.design_check` — run a small DSE and re-verify
   the winning design point against the paper's constraints;
3. :mod:`repro.analysis.codegen_lint` — generate the testbench, kernel
   and driver for that design and lint the emitted text.

Nothing here invokes a compiler or the OpenCL toolchain; a failing
check is always a structured :class:`AnalysisReport`, never a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.diagnostics import (
    NEST_NO_FEASIBLE_MAPPING,
    AnalysisReport,
    Severity,
)

LEVELS = ("nest", "design", "full")


@dataclass
class CheckResult:
    """Everything the combined check produced.

    Attributes:
        report: all diagnostics from every pass that ran.
        level: the deepest pass level requested.
        nest: the extracted loop nest (None if pass 1 rejected it).
        design: the validated design point (None below level "design"
            or when no feasible design exists).
        artifacts: generated sources that were linted at level "full"
            (keys: ``testbench``, ``kernel``, ``driver``).
    """

    report: AnalysisReport
    level: str
    nest: Any = None
    design: Any = None
    artifacts: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no pass reported an error."""
        return self.report.ok

    @property
    def exit_code(self) -> int:
        """Process exit status: 0 clean, 1 errors."""
        return self.report.exit_code

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable summary (JSON-serializable)."""
        payload = self.report.to_dict()
        payload["level"] = self.level
        payload["nest"] = self.nest.name if self.nest is not None else None
        payload["design"] = (
            self.design.signature if self.design is not None else None
        )
        return payload


def run_checks(
    source: str,
    *,
    platform: Any = None,
    level: str = "full",
    name: str = "user_nest",
    filename: str | None = None,
    require_pragma: bool = True,
    dse_config: Any = None,
) -> CheckResult:
    """Run the analysis passes over restricted-C text.

    Args:
        source: the C program.
        platform: evaluation :class:`Platform` (Arria 10 float default).
        level: ``"nest"``, ``"design"`` or ``"full"``.
        name: nest label used in messages.
        filename: attached to diagnostic spans.
        require_pragma: reject programs without ``#pragma systolic``.
        dse_config: DSE knobs for the design pass (a cheap ``top_n=1``
            search by default).
    """
    if level not in LEVELS:
        raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
    from repro.analysis.nest_check import check_source

    nest, report = check_source(
        source, name=name, filename=filename, require_pragma=require_pragma
    )
    result = CheckResult(report=report, level=level, nest=nest)
    if level == "nest" or nest is None or not report.ok:
        return result

    from repro.dse.explore import DseConfig, explore
    from repro.model.platform import Platform

    platform = platform or Platform()
    config = dse_config or DseConfig(top_n=1)
    try:
        best = explore(nest, platform, config).best
    except ValueError as exc:
        report.add(
            NEST_NO_FEASIBLE_MAPPING,
            Severity.ERROR,
            f"the design-space exploration found no design fitting "
            f"{platform.device.name}: {exc}",
        )
        return result
    result.design = best.design

    from repro.analysis.design_check import check_design_point

    report.extend(check_design_point(best.design, platform))
    if level == "design":
        return result

    from repro.analysis.codegen_lint import lint_against_design, lint_generated_code
    from repro.codegen.opencl import generate_kernel, generate_kernel_driver
    from repro.codegen.testbench import generate_testbench

    artifacts = {
        "testbench": generate_testbench(best.design, platform),
        "kernel": generate_kernel(best.design, platform),
        "driver": generate_kernel_driver(best.design, platform),
    }
    result.artifacts = artifacts
    for label, text in artifacts.items():
        report.extend(lint_generated_code(text, filename=f"<generated {label}>"))
        if label in ("testbench", "kernel"):
            report.extend(
                lint_against_design(
                    text, best.design, filename=f"<generated {label}>"
                )
            )
    return result


def check_design(
    source: str,
    *,
    platform: Any = None,
    level: str = "full",
    name: str = "user_nest",
    filename: str | None = None,
    require_pragma: bool = True,
) -> dict[str, Any]:
    """Public API: analyze a program, return a machine-readable report.

    The returned dict carries ``ok``, ``errors``, ``warnings``, the
    analysis ``level``, the extracted ``nest`` name, the winning
    ``design`` signature, and one entry per diagnostic (code, severity,
    message, span, hint).  See :func:`run_checks` for the object form.
    """
    return run_checks(
        source,
        platform=platform,
        level=level,
        name=name,
        filename=filename,
        require_pragma=require_pragma,
    ).to_dict()


__all__ = ["CheckResult", "LEVELS", "check_design", "run_checks"]
