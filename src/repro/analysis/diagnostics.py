"""Structured diagnostics shared by every static-analysis pass.

This is the leaf module of :mod:`repro.analysis` — it imports nothing
from the rest of the package so the front end can depend on it without
cycles.  It defines

* :class:`SourceSpan` — a located region of an input artifact (user C,
  or a generated-code file), built from lexer tokens or line numbers;
* :class:`Diagnostic` — one coded finding (``SA<nnn>``) with severity,
  message, optional span and fix hint;
* :class:`AnalysisReport` — an ordered collection with terminal
  rendering (source excerpt + caret) and JSON output;
* :class:`DiagnosticError` — the exception analysis entry points raise
  when a caller asked for exceptions rather than reports;
* the :data:`CODE_CATALOG` registry that ``docs/diagnostics.md`` and the
  catalog test are pinned against.

Code blocks:

* ``SA0xx`` — lexical / syntactic rejection of user C,
* ``SA1xx`` — nest legality (systolizability, Eq. 3 reuse, Eq. 2 mapping
  existence, shape checking), import/emit (``SA14x``) and the RTL
  backend (``SA15x``: unsupported designs, RTL/reference divergence,
  toolchain degradation),
* ``SA2xx`` — design-point validation (Eq. 2 feasibility, Eqs. 4–6
  resource budgets, tiling invariants),
* ``SA3xx`` — generated-code lint (index bounds, parameter consistency,
  double-buffer discipline, and ``SA33x`` Verilog structure: undriven or
  multiply-driven nets, width mismatches, inferred latches),
* ``SA4xx`` — differential conformance (:mod:`repro.verify`): fast-sim
  vs. cycle-accurate engine vs. analytical model vs. golden outputs,
* ``SA5xx`` — resilience / graceful degradation (:mod:`repro.resilience`
  plus the recovery sites it instruments): quarantined cache entries,
  resubmitted or serially replayed DSE work, degraded simulate backends
  and external-tool timeouts,
* ``SA6xx`` — whole-program concurrency & determinism analysis
  (:mod:`repro.analysis.program`): lock-order inversions, unguarded
  shared state, blocking calls under a lock, exception-unsafe manual
  lock management, and nondeterminism inside replay-critical code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Iterator


class Severity(Enum):
    """How bad a finding is.

    ERROR blocks the flow; WARNING is suspicious but legal; NOTE is
    informational context attached to another finding.
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SourceSpan:
    """A located region of some text artifact (1-based line/column).

    Attributes:
        line: 1-based start line.
        column: 1-based start column.
        end_line: inclusive end line (defaults to ``line``).
        end_column: inclusive end column (defaults to ``column``).
        filename: optional origin label (path, or e.g. ``"<testbench>"``).
    """

    line: int
    column: int = 1
    end_line: int | None = None
    end_column: int | None = None
    filename: str | None = None

    @staticmethod
    def from_token(token: Any, filename: str | None = None) -> "SourceSpan":
        """Span of one lexer token (anything with .line/.column/.text)."""
        width = max(1, len(getattr(token, "text", "") or ""))
        return SourceSpan(
            line=token.line,
            column=token.column,
            end_line=token.line,
            end_column=token.column + width - 1,
            filename=filename,
        )

    def with_filename(self, filename: str | None) -> "SourceSpan":
        """The same span attributed to a file."""
        if filename is None or self.filename is not None:
            return self
        return SourceSpan(self.line, self.column, self.end_line, self.end_column, filename)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        data: dict[str, Any] = {"line": self.line, "column": self.column}
        if self.end_line is not None:
            data["end_line"] = self.end_line
        if self.end_column is not None:
            data["end_column"] = self.end_column
        if self.filename is not None:
            data["filename"] = self.filename
        return data

    def __str__(self) -> str:
        prefix = f"{self.filename}:" if self.filename else ""
        return f"{prefix}{self.line}:{self.column}"


CODE_CATALOG: dict[str, str] = {}
"""Every registered diagnostic code -> one-line title.  Populated by
:func:`register_code`; ``docs/diagnostics.md`` must document all of it
(enforced by a test)."""


def register_code(code: str, title: str) -> str:
    """Register a diagnostic code in the catalog and return it."""
    if not (code.startswith("SA") and code[2:].isdigit()):
        raise ValueError(f"diagnostic codes look like 'SA123', got {code!r}")
    existing = CODE_CATALOG.get(code)
    if existing is not None and existing != title:
        raise ValueError(f"code {code} already registered as {existing!r}")
    CODE_CATALOG[code] = title
    return code


# --- SA0xx: lexical / syntactic -------------------------------------------
LEX_BAD_CHAR = register_code("SA001", "character outside the C subset")
LEX_UNTERMINATED_COMMENT = register_code("SA002", "unterminated block comment")
PARSE_SYNTAX = register_code("SA010", "syntax error in the restricted C subset")
PARSE_LOOP_NOT_NORMALIZED = register_code("SA011", "loop does not start at 0")
PARSE_LOOP_STEP = register_code("SA012", "loop stride is not 1")
PARSE_LOOP_VAR_MISMATCH = register_code("SA013", "loop condition/increment variable mismatch")
PARSE_DECL_NOT_ARRAY = register_code("SA014", "declaration is not an array")
PARSE_MISSING_SUBSCRIPT = register_code("SA015", "array reference without subscripts")

# --- SA1xx: nest legality --------------------------------------------------
NEST_MISSING_PRAGMA = register_code("SA101", "missing '#pragma systolic' annotation")
NEST_DUPLICATE_ITERATOR = register_code("SA102", "duplicate loop iterator in nest")
NEST_UNBOUND_ITERATOR = register_code("SA103", "subscript uses an iterator not bound by any loop")
NEST_NON_SYSTOLIZABLE_SUBSCRIPT = register_code(
    "SA110", "subscript is not a single iterator or a sum of two iterators"
)
NEST_SUBSCRIPT_TOO_MANY_ITERATORS = register_code(
    "SA111", "subscript sums more than two iterators"
)
NEST_SUBSCRIPT_NEGATIVE = register_code("SA112", "subscript can evaluate to a negative index")
NEST_NOT_SINGLE_ACCUMULATION = register_code(
    "SA120", "nest does not accumulate into exactly one array"
)
NEST_NOT_TWO_READS = register_code("SA121", "statement does not read exactly two arrays")
NEST_SHAPE_OVERFLOW = register_code("SA122", "subscript range exceeds the declared array shape")
NEST_RANK_MISMATCH = register_code("SA123", "access rank differs from the declaration")
NEST_NO_REUSE_LOOP = register_code(
    "SA130", "array has no loop carrying fine-grained reuse (Eq. 3)"
)
NEST_NO_FEASIBLE_MAPPING = register_code(
    "SA131", "no feasible systolic mapping exists for the nest (Eq. 2)"
)
NEST_TOO_SHALLOW = register_code("SA132", "nest has fewer than three loops")
IMPORT_SPEC_MALFORMED = register_code("SA140", "network spec is not well-formed")
IMPORT_UNSUPPORTED_OP = register_code("SA141", "unsupported operator in the network graph")
IMPORT_UNSUPPORTED_ATTRIBUTE = register_code(
    "SA142", "unsupported operator attribute for systolic lowering"
)
IMPORT_ASYMMETRIC_ATTRIBUTE = register_code(
    "SA143", "asymmetric kernel/stride/dilation/padding is not supported"
)
IMPORT_SHAPE_MISMATCH = register_code(
    "SA144", "graph tensor shapes are inconsistent or cannot be inferred"
)
LAYER_KERNEL_TOO_LARGE = register_code(
    "SA145", "kernel does not fit in the padded input (nonpositive output size)"
)
EMIT_NOT_SUBSET = register_code("SA133", "nest cannot be rendered in the C subset")

# --- SA15x: RTL backend (repro.codegen.rtl / repro.sim.rtl) ---------------
RTL_UNSUPPORTED_DESIGN = register_code(
    "SA150", "design cannot be lowered to the RTL backend"
)
RTL_OUTPUT_MISMATCH = register_code(
    "SA151", "RTL simulation output diverges from the reference simulators"
)
RTL_CYCLE_DIVERGENCE = register_code(
    "SA152", "RTL cycle counts diverge from the analytical cycle model"
)
RTL_TOOLCHAIN_MISSING = register_code(
    "SA153", "iverilog toolchain unavailable; RTL checked by the Python interpreter only"
)

# --- SA2xx: design-point validation ---------------------------------------
DESIGN_UNKNOWN_ITERATOR = register_code(
    "SA201", "mapping references an iterator the nest does not have"
)
DESIGN_INFEASIBLE_MAPPING = register_code(
    "SA202", "mapping violates the Eq. 2 feasibility condition"
)
DESIGN_DSP_EXCEEDED = register_code("SA203", "DSP usage exceeds the device budget (Eq. 4)")
DESIGN_BRAM_EXCEEDED = register_code("SA204", "BRAM usage exceeds the device budget (Eq. 6)")
DESIGN_EFFICIENCY_RANGE = register_code("SA205", "DSP efficiency outside (0, 1] (Eq. 1)")
DESIGN_SHAPE_EXCEEDS_TRIPCOUNT = register_code(
    "SA206", "PE-array dimension exceeds its loop trip count (idle lanes)"
)
DESIGN_MIDDLE_UNKNOWN_ITERATOR = register_code(
    "SA207", "middle bound set on an iterator the nest does not have"
)
DESIGN_BLOCK_EXCEEDS_TRIPCOUNT = register_code(
    "SA208", "block extent s*t exceeds the padded loop extent (oversized buffers)"
)
DESIGN_NONPOSITIVE_BOUND = register_code("SA210", "tiling bound is not positive")

# --- SA3xx: generated-code lint -------------------------------------------
LINT_INDEX_OVERFLOW = register_code(
    "SA301", "array index can exceed the declared dimension"
)
LINT_INDEX_NEGATIVE = register_code("SA302", "array index can be negative")
LINT_RANK_MISMATCH = register_code(
    "SA303", "array accessed with a different rank than declared"
)
LINT_DEFINE_MISMATCH = register_code(
    "SA310", "#define parameter disagrees with the design point"
)
LINT_DEFINE_MISSING = register_code("SA311", "expected #define parameter is missing")
LINT_PINGPONG_INIT_MISSING = register_code(
    "SA320", "double-buffer selector is never initialized"
)
LINT_PINGPONG_FLIP_MISSING = register_code(
    "SA321", "double-buffer selector is never flipped between blocks"
)
LINT_PINGPONG_NOT_USED = register_code(
    "SA322", "double-buffered array access does not select a buffer with the ping-pong index"
)
LINT_VERILOG_UNDRIVEN = register_code(
    "SA330", "net is read but never driven in the emitted Verilog"
)
LINT_VERILOG_MULTIDRIVEN = register_code(
    "SA331", "net is driven from more than one always block or assign"
)
LINT_VERILOG_WIDTH_MISMATCH = register_code(
    "SA332", "assignment connects nets of different declared widths"
)
LINT_VERILOG_LATCH = register_code(
    "SA333", "combinational always block infers a latch (incomplete if/else)"
)

# --- SA4xx: differential conformance (repro.verify) -----------------------
VERIFY_GOLDEN_MISMATCH = register_code(
    "SA401", "simulated output diverges from the NumPy golden model"
)
VERIFY_ENGINE_MISMATCH = register_code(
    "SA402", "fast wavefront simulator diverges from the cycle-accurate engine"
)
VERIFY_CYCLE_MODEL_MISMATCH = register_code(
    "SA403", "simulated cycle counts diverge from the analytical model"
)
VERIFY_LEG_SKIPPED = register_code(
    "SA404", "conformance leg skipped (problem too large for that oracle)"
)

# --- SA5xx: resilience / graceful degradation ------------------------------
RESILIENCE_CACHE_QUARANTINED = register_code(
    "SA501", "corrupt stage-cache entry quarantined and recomputed"
)
RESILIENCE_WORKER_RESUBMITTED = register_code(
    "SA502", "crashed DSE worker task resubmitted"
)
RESILIENCE_SERIAL_FALLBACK = register_code(
    "SA503", "parallel DSE degraded to the bit-identical serial fallback"
)
RESILIENCE_TESTBENCH_DEGRADED = register_code(
    "SA504", "testbench toolchain unavailable; simulate degraded to the fast backend"
)
RESILIENCE_TOOL_TIMEOUT = register_code(
    "SA505", "external tool exceeded its time budget"
)

# --- SA6xx: whole-program concurrency & determinism -------------------------
CONCURRENCY_LOCK_ORDER = register_code(
    "SA601", "lock-order inversion: locks are acquired in conflicting orders"
)
CONCURRENCY_UNGUARDED_STATE = register_code(
    "SA602", "lock-guarded attribute accessed without holding the owning lock"
)
CONCURRENCY_BLOCKING_UNDER_LOCK = register_code(
    "SA603", "blocking operation performed while a lock is held"
)
CONCURRENCY_UNSAFE_ACQUIRE = register_code(
    "SA604", "manual lock acquire without an exception-safe release"
)
CONCURRENCY_NONDETERMINISM = register_code(
    "SA605", "nondeterministic operation inside a replay-critical code path"
)

# --- SA7xx: cluster / fleet operation ---------------------------------------
CLUSTER_NODE_JOINED = register_code(
    "SA701", "worker node joined the synthesis fleet"
)
CLUSTER_NODE_LOST = register_code(
    "SA702", "worker node left the fleet (missed heartbeats or deregistered)"
)
CLUSTER_JOB_REASSIGNED = register_code(
    "SA703", "journaled job reassigned to the next owner on the ring"
)
CLUSTER_REPLICATION_DEGRADED = register_code(
    "SA704", "stage-cache replication degraded; node continues on its local store"
)


@dataclass(frozen=True)
class Diagnostic:
    """One coded finding of an analysis pass.

    Attributes:
        code: catalog code, e.g. ``"SA110"``.
        severity: ERROR / WARNING / NOTE.
        message: human-readable, self-contained description.
        span: where in the analyzed artifact, if locatable.
        hint: optional one-line suggested fix.
    """

    code: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    hint: str | None = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    @property
    def title(self) -> str:
        """Catalog title of the code ('' for unregistered codes)."""
        return CODE_CATALOG.get(self.code, "")

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        data: dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.span is not None:
            data["span"] = self.span.to_dict()
        if self.hint is not None:
            data["hint"] = self.hint
        return data

    def render(self, source: str | None = None) -> str:
        """Pretty one-finding rendering, with a caret excerpt if possible.

        Args:
            source: the analyzed text; when given and the span falls
                inside it, the offending line is shown with a caret.
        """
        loc = f"{self.span}: " if self.span else ""
        lines = [f"{loc}{self.severity}: {self.message} [{self.code}]"]
        if source is not None and self.span is not None:
            excerpt = _excerpt(source, self.span)
            if excerpt:
                lines.extend(excerpt)
        if self.hint:
            lines.append(f"  hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _excerpt(source: str, span: SourceSpan) -> list[str]:
    """The source line of ``span`` plus a caret line (empty if out of range)."""
    all_lines = source.splitlines()
    if not (1 <= span.line <= len(all_lines)):
        return []
    text = all_lines[span.line - 1]
    caret_col = max(1, min(span.column, len(text) + 1))
    width = 1
    if span.end_column is not None and span.end_line in (None, span.line):
        width = max(1, span.end_column - span.column + 1)
    width = min(width, max(1, len(text) - caret_col + 1))
    return [
        f"  {span.line:4} | {text}",
        f"       | {' ' * (caret_col - 1)}{'^' * width}",
    ]


class AnalysisReport:
    """An ordered collection of diagnostics with summary views.

    Reports are what every ``repro.analysis`` entry point returns: they
    never raise on findings, so callers decide whether errors are fatal
    (:meth:`raise_if_errors`) or just rendered.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # ------------------------------------------------------------ collection

    def add(
        self,
        code: str,
        severity: Severity,
        message: str,
        span: SourceSpan | None = None,
        hint: str | None = None,
    ) -> Diagnostic:
        """Append a new diagnostic and return it.

        Raises:
            KeyError: for a code that was never :func:`register_code`-ed
                (catching typos at the emission site, not in a consumer).
        """
        if code not in CODE_CATALOG:
            raise KeyError(f"unregistered diagnostic code {code!r}")
        diag = Diagnostic(code, severity, message, span, hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, diagnostics: Iterable[Diagnostic]) -> "AnalysisReport":
        """Append many diagnostics; returns self for chaining."""
        self.diagnostics.extend(diagnostics)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # --------------------------------------------------------------- queries

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit code convention: 0 clean, 1 errors."""
        return 0 if self.ok else 1

    def codes(self) -> tuple[str, ...]:
        """All finding codes, in order."""
        return tuple(d.code for d in self.diagnostics)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        """All findings with one code."""
        return tuple(d for d in self.diagnostics if d.code == code)

    # -------------------------------------------------------------- rendering

    def render(self, source: str | None = None) -> str:
        """Terminal rendering: every finding plus a one-line summary."""
        lines = [d.render(source) for d in self.diagnostics]
        n_err, n_warn = len(self.errors), len(self.warnings)
        if n_err or n_warn:
            lines.append(f"{n_err} error(s), {n_warn} warning(s)")
        else:
            lines.append("no issues found")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation of the whole report."""
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def raise_if_errors(self) -> "AnalysisReport":
        """Raise :class:`DiagnosticError` when the report has errors."""
        if not self.ok:
            raise DiagnosticError(self)
        return self

    def __str__(self) -> str:
        return self.render()


class DiagnosticError(ValueError):
    """Raised by strict-mode entry points when analysis finds errors.

    A ``ValueError`` subclass so callers that guarded the non-strict
    entry points with ``except ValueError`` keep working in strict mode.

    Attributes:
        report: the full report (all findings, not just errors).
    """

    def __init__(self, report: AnalysisReport, message: str | None = None) -> None:
        self.report = report
        if message is None:
            first = report.errors[0] if report.errors else None
            message = first.render() if first else "analysis failed"
            extra = len(report.errors) - 1
            if extra > 0:
                message += f" (+{extra} more error(s))"
        super().__init__(message)

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        return tuple(self.report.diagnostics)


def error(
    code: str, message: str, span: SourceSpan | None = None, hint: str | None = None
) -> Diagnostic:
    """Shorthand for an ERROR diagnostic."""
    return Diagnostic(code, Severity.ERROR, message, span, hint)


def warning(
    code: str, message: str, span: SourceSpan | None = None, hint: str | None = None
) -> Diagnostic:
    """Shorthand for a WARNING diagnostic."""
    return Diagnostic(code, Severity.WARNING, message, span, hint)


def note(code: str, message: str, span: SourceSpan | None = None) -> Diagnostic:
    """Shorthand for a NOTE diagnostic."""
    return Diagnostic(code, Severity.NOTE, message, span)


__all__ = [
    "AnalysisReport",
    "CODE_CATALOG",
    "Diagnostic",
    "DiagnosticError",
    "Severity",
    "SourceSpan",
    "error",
    "note",
    "register_code",
    "warning",
]
