"""Pass 2 — design-point validation against the paper's constraints.

Re-derives, from nothing but a :class:`DesignPoint` and a
:class:`Platform`, every invariant a legal design must satisfy:

* the Eq. 2 feasibility condition of its mapping (via the reuse table,
  not via whatever produced the mapping),
* the DSP budget (Eq. 4) and BRAM budget (Eq. 6),
* DSP efficiency within (0, 1] (Eq. 1),
* tiling sanity: positive bounds, middle bounds only on real loops, PE
  dimensions and block extents that do not overshoot their loops.

Because it recomputes everything, it can audit DSE output independently
of the DSE code paths — :mod:`repro.dse.explore` and
:mod:`repro.flow.compile` run it over their winners in strict mode.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.analysis.diagnostics import (
    DESIGN_BLOCK_EXCEEDS_TRIPCOUNT,
    DESIGN_BRAM_EXCEEDED,
    DESIGN_DSP_EXCEEDED,
    DESIGN_EFFICIENCY_RANGE,
    DESIGN_INFEASIBLE_MAPPING,
    DESIGN_MIDDLE_UNKNOWN_ITERATOR,
    DESIGN_NONPOSITIVE_BOUND,
    DESIGN_SHAPE_EXCEEDS_TRIPCOUNT,
    DESIGN_UNKNOWN_ITERATOR,
    AnalysisReport,
    Severity,
)
from repro.model.design_point import DesignPoint
from repro.model.mapping import is_feasible
from repro.model.platform import Platform
from repro.model.resources import bram_usage, dsp_usage


def check_design_point(design: DesignPoint, platform: Platform) -> AnalysisReport:
    """Validate one design point; returns the full report.

    Structural problems (unknown iterators, nonpositive bounds) abort
    the resource checks — the analytical models would throw on them —
    but everything checkable is always checked.
    """
    report = AnalysisReport()
    nest = design.nest
    mapping = design.mapping
    shape = design.shape
    bounds = nest.bounds

    # --- structural: the mapping and tiling must speak the nest's language
    structural_ok = True
    for role, iterator in (
        ("row", mapping.row),
        ("column", mapping.col),
        ("vector", mapping.vector),
    ):
        if iterator not in bounds:
            structural_ok = False
            report.add(
                DESIGN_UNKNOWN_ITERATOR,
                Severity.ERROR,
                f"mapping assigns loop {iterator!r} to the PE {role} "
                f"dimension, but nest {nest.name!r} only has loops "
                f"{list(nest.iterators)}",
            )
    for iterator, value in design.middle:
        if iterator not in bounds:
            structural_ok = False
            report.add(
                DESIGN_MIDDLE_UNKNOWN_ITERATOR,
                Severity.ERROR,
                f"middle bound s[{iterator!r}]={value} refers to a loop "
                f"nest {nest.name!r} does not have",
            )
        if value < 1:
            structural_ok = False
            report.add(
                DESIGN_NONPOSITIVE_BOUND,
                Severity.ERROR,
                f"middle bound s[{iterator!r}]={value} must be >= 1",
            )
    if min(shape.rows, shape.cols, shape.vector) < 1:
        structural_ok = False
        report.add(
            DESIGN_NONPOSITIVE_BOUND,
            Severity.ERROR,
            f"PE-array shape {shape} has a nonpositive dimension",
        )
    if not structural_ok:
        return report

    # --- Eq. 2 feasibility, re-derived from the reuse table
    if not is_feasible(nest, mapping):
        report.add(
            DESIGN_INFEASIBLE_MAPPING,
            Severity.ERROR,
            f"mapping {mapping} violates the Eq. 2 feasibility condition "
            f"for nest {nest.name!r}: some array has no fine-grained reuse "
            f"on any inner loop (or an operand is assigned against its "
            f"reuse direction)",
        )

    # --- Eq. 4: DSP budget
    dsp_blocks = dsp_usage(shape.rows, shape.cols, shape.vector, platform)
    dsp_budget = platform.dsp_total * platform.dsp_per_mac
    if dsp_blocks > dsp_budget:
        report.add(
            DESIGN_DSP_EXCEEDED,
            Severity.ERROR,
            f"design needs {dsp_blocks:.0f} DSP blocks but "
            f"{platform.device.name} provides {dsp_budget:.0f} at "
            f"{platform.datatype.name} (Eq. 4)",
        )

    # --- Eq. 6: BRAM budget
    bram = bram_usage(design.tiled, platform)
    if bram.total > platform.bram_total:
        report.add(
            DESIGN_BRAM_EXCEEDED,
            Severity.ERROR,
            f"design needs {bram.total} RAM blocks but "
            f"{platform.device.name} provides {platform.bram_total} (Eq. 6)",
        )

    # --- Eq. 1: efficiency is a ratio of iteration counts
    efficiency = design.tiled.efficiency
    if not 0.0 < efficiency <= 1.0:
        report.add(
            DESIGN_EFFICIENCY_RANGE,
            Severity.ERROR,
            f"DSP efficiency {efficiency:.4f} is outside (0, 1]; the "
            f"executed-iteration accounting is inconsistent",
        )

    # --- quantization sanity: no dimension should overshoot its loop
    for role, iterator, extent in (
        ("rows", mapping.row, shape.rows),
        ("cols", mapping.col, shape.cols),
        ("vector", mapping.vector, shape.vector),
    ):
        trip = bounds[iterator]
        if extent > trip:
            report.add(
                DESIGN_SHAPE_EXCEEDS_TRIPCOUNT,
                Severity.WARNING,
                f"PE-array {role}={extent} exceeds loop {iterator!r}'s trip "
                f"count {trip}; {extent - trip} lane(s) along that dimension "
                f"can never receive work",
            )
    for iterator in nest.iterators:
        block = design.tiling.block_extent(iterator)
        t = design.tiling.t(iterator)
        padded = math.ceil(bounds[iterator] / t) * t
        if block > padded:
            report.add(
                DESIGN_BLOCK_EXCEEDS_TRIPCOUNT,
                Severity.WARNING,
                f"block extent s*t={block} along {iterator!r} exceeds the "
                f"padded trip count {padded}; the reuse buffers are sized "
                f"for iterations that never execute",
            )
    return report


def verify_design_points(
    designs: Iterable[DesignPoint], platform: Platform, *, context: str = "DSE result"
) -> AnalysisReport:
    """Validate a batch of design points into one combined report.

    Used by strict-mode DSE: every emitted design is re-checked
    independently; the combined report carries each design's signature
    in the messages.
    """
    combined = AnalysisReport()
    for design in designs:
        report = check_design_point(design, platform)
        for diag in report:
            combined.add(
                diag.code,
                diag.severity,
                f"[{context}: {design.signature}] {diag.message}",
                diag.span,
                diag.hint,
            )
    return combined


__all__ = ["check_design_point", "verify_design_points"]
