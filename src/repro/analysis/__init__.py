"""Cross-layer static analysis: structured diagnostics for the whole flow.

Every stage of the synthesis pipeline — front end, DSE, code generation —
can reject an input; this package gives those rejections one shared
shape: a :class:`Diagnostic` with a stable ``SAxxx`` code, a severity, a
source span where one exists, and an optional fix hint, collected into
:class:`AnalysisReport` objects that render for terminals or serialize
to JSON (see ``docs/diagnostics.md`` for the catalog).  Four passes
build on the framework:

* :mod:`repro.analysis.nest_check` — is a loop nest systolizable
  (Code-1 structure, Section 3.3 subscripts, Eq. 2/3 reuse)?
* :mod:`repro.analysis.design_check` — does a design point satisfy the
  feasibility condition and the Eq. 4–6 resource budgets?
* :mod:`repro.analysis.codegen_lint` — is the emitted C/OpenCL text
  internally consistent (buffer bounds, ``#define`` header, ping-pong
  protocol), checked without a compiler?
* :mod:`repro.analysis.check` — the combined ``systolic-synth check``
  pipeline and the :func:`check_design` machine-readable API.
* :mod:`repro.analysis.program` — the SA6xx whole-program concurrency
  and determinism analyzer that lints the flow's *own* sources
  (``systolic-synth lint``; see ``docs/static_analysis.md``).

Only the diagnostics framework is imported eagerly: the pass modules
pull in the front end and the model layer, which themselves use this
package's diagnostics, so they are resolved lazily (PEP 562) to keep
the import graph acyclic.
"""

from typing import Any

from repro.analysis.diagnostics import (
    CODE_CATALOG,
    AnalysisReport,
    Diagnostic,
    DiagnosticError,
    Severity,
    SourceSpan,
    register_code,
)

_LAZY = {
    "check_source": "repro.analysis.nest_check",
    "check_program": "repro.analysis.nest_check",
    "check_nest": "repro.analysis.nest_check",
    "check_design_point": "repro.analysis.design_check",
    "verify_design_points": "repro.analysis.design_check",
    "lint_generated_code": "repro.analysis.codegen_lint",
    "lint_against_design": "repro.analysis.codegen_lint",
    "run_checks": "repro.analysis.check",
    "check_design": "repro.analysis.check",
    "CheckResult": "repro.analysis.check",
    "analyze_program": "repro.analysis.program",
    "AnalyzeOptions": "repro.analysis.program",
    "ProgramAnalysis": "repro.analysis.program",
    "build_model": "repro.analysis.program",
}

__all__ = [
    "AnalysisReport",
    "AnalyzeOptions",
    "CODE_CATALOG",
    "CheckResult",
    "ProgramAnalysis",
    "analyze_program",
    "build_model",
    "Diagnostic",
    "DiagnosticError",
    "Severity",
    "SourceSpan",
    "check_design",
    "check_design_point",
    "check_nest",
    "check_program",
    "check_source",
    "lint_against_design",
    "lint_generated_code",
    "register_code",
    "run_checks",
    "verify_design_points",
]


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
