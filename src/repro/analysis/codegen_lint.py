"""Pass 3 — linting the generated C / OpenCL text, without a compiler.

The emitters in :mod:`repro.codegen` produce a restricted, regular C
shape: ``#define`` parameter headers, literal-dimension array
declarations, counted ``for`` loops, and straight-line subscripted
statements.  That regularity makes a *static* correctness check
tractable where one for arbitrary C would not be:

* every loop variable gets a value interval from its ``for`` header,
  every ``int v = expr;`` from interval arithmetic over the header's
  ``#define`` table and the live intervals;
* every subscript ``NAME[e0][e1]..`` of a declared array is then checked
  against the declared extents (SA301 overflow / SA302 negative /
  SA303 rank);
* the ``#define`` header is cross-checked against the design point that
  supposedly produced the file (SA310 / SA311);
* OpenCL kernels are checked for the double-buffer protocol: ``pp``
  initialised, flipped once per block, and used on every ping-pong
  buffer access (SA320–SA322).

The analysis is deliberately conservative about guards: text after a
ternary ``?`` and lines carrying an ``if (`` are exactly where the
emitters put their boundary guards, so upper-bound checks are skipped
there; everything unguarded is checked exactly.  On the shipped
templates the intervals are tight (the hottest access peaks at
``dimension - 1``), so a buffer sized even one element short is caught.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import (
    LINT_DEFINE_MISMATCH,
    LINT_DEFINE_MISSING,
    LINT_INDEX_NEGATIVE,
    LINT_INDEX_OVERFLOW,
    LINT_PINGPONG_FLIP_MISSING,
    LINT_PINGPONG_INIT_MISSING,
    LINT_PINGPONG_NOT_USED,
    LINT_RANK_MISMATCH,
    LINT_VERILOG_LATCH,
    LINT_VERILOG_MULTIDRIVEN,
    LINT_VERILOG_UNDRIVEN,
    LINT_VERILOG_WIDTH_MISMATCH,
    AnalysisReport,
    Severity,
    SourceSpan,
)

if TYPE_CHECKING:
    # Type-only: this pass lints text without a compiler and stays off
    # the model layer's import graph at runtime.
    from repro.model.design_point import DesignPoint

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)\s+(.+?)\s*$")
_DECL_RE = re.compile(
    r"^\s*(?:static\s+|__local\s+|__constant\s+)*"
    r"(?:unsigned\s+|signed\s+)?[A-Za-z_]\w*(?:\s+[A-Za-z_]\w*)*\s+"
    r"(\w+)\s*((?:\[[^\[\]]+\])+)\s*;"
)
_FOR_RE = re.compile(
    r"for\s*\(\s*(?:int|long|unsigned|size_t)\s+(\w+)\s*=\s*([^;]+?)\s*;"
    r"\s*\1\s*<=?\s*([^;]+?)\s*;"
)
_ASSIGN_RE = re.compile(r"^\s*(?:int|long)?\s*(\w+)\s*=\s*([^;=<>!]+?)\s*;\s*$")
_ACCESS_RE = re.compile(r"\b([A-Za-z_]\w*)\s*((?:\[[^\[\]]+\])+)")
_DIM_RE = re.compile(r"\[([^\[\]]+)\]")
_NUMBER_RE = re.compile(r"^(\d+)[uUlL]*$")


class _Unknown(Exception):
    """An expression mentions a symbol the analysis has no interval for."""


class _IntervalEvaluator:
    """Interval arithmetic over ``+ - * ( )``, integers, and symbols."""

    def __init__(self, defines: dict[str, int], env: dict[str, tuple[int, int]]) -> None:
        self.defines = defines
        self.env = env

    def eval(self, text: str) -> tuple[int, int]:
        self._tokens = re.findall(r"\d+[uUlL]*|[A-Za-z_]\w*|[+\-*()]", text)
        if "".join(self._tokens).replace(" ", "") != re.sub(r"\s+", "", text):
            raise _Unknown(text)  # unsupported operator (/, %, ?:, comparisons)
        self._pos = 0
        result = self._sum()
        if self._pos != len(self._tokens):
            raise _Unknown(text)
        return result

    def _peek(self) -> str | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _sum(self) -> tuple[int, int]:
        lo, hi = self._product()
        while self._peek() in ("+", "-"):
            op = self._tokens[self._pos]
            self._pos += 1
            rlo, rhi = self._product()
            if op == "+":
                lo, hi = lo + rlo, hi + rhi
            else:
                lo, hi = lo - rhi, hi - rlo
        return lo, hi

    def _product(self) -> tuple[int, int]:
        lo, hi = self._atom()
        while self._peek() == "*":
            self._pos += 1
            rlo, rhi = self._atom()
            corners = (lo * rlo, lo * rhi, hi * rlo, hi * rhi)
            lo, hi = min(corners), max(corners)
        return lo, hi

    def _atom(self) -> tuple[int, int]:
        token = self._peek()
        if token is None:
            raise _Unknown("truncated expression")
        self._pos += 1
        if token == "(":
            inner = self._sum()
            if self._peek() != ")":
                raise _Unknown("unbalanced parenthesis")
            self._pos += 1
            return inner
        if token == "-":
            lo, hi = self._atom()
            return -hi, -lo
        match = _NUMBER_RE.match(token)
        if match:
            value = int(match.group(1))
            return value, value
        if token in self.defines:
            value = self.defines[token]
            return value, value
        if token in self.env:
            return self.env[token]
        raise _Unknown(token)


def _strip_comments(source: str) -> list[str]:
    """Source lines with ``//`` and ``/* */`` comments blanked out."""
    lines = []
    in_block = False
    for raw in source.splitlines():
        out = []
        i = 0
        while i < len(raw):
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    i = len(raw)
                else:
                    in_block = False
                    i = end + 2
            elif raw.startswith("//", i):
                break
            elif raw.startswith("/*", i):
                in_block = True
                i += 2
            else:
                out.append(raw[i])
                i += 1
        lines.append("".join(out))
    return lines


def _resolve_defines(lines: list[str]) -> dict[str, int]:
    """The ``#define`` table with name-to-name chains resolved to ints."""
    raw: dict[str, str] = {}
    for line in lines:
        match = _DEFINE_RE.match(line)
        if match:
            raw[match.group(1)] = match.group(2).strip()
    resolved: dict[str, int] = {}
    for _ in range(len(raw) + 1):
        progressed = False
        for name, value in raw.items():
            if name in resolved:
                continue
            number = _NUMBER_RE.match(value)
            if number:
                resolved[name] = int(number.group(1))
                progressed = True
            elif value in resolved:
                resolved[name] = resolved[value]
                progressed = True
        if not progressed:
            break
    return resolved


def _span(line_no: int, column: int, filename: str | None) -> SourceSpan:
    return SourceSpan(line_no, max(1, column), filename=filename)


def lint_generated_code(
    source: str,
    *,
    filename: str | None = None,
    kind: str | None = None,
) -> AnalysisReport:
    """Lint one generated C/OpenCL file; returns the report.

    Args:
        source: the generated text (testbench, kernel, or driver).
        filename: attached to diagnostic spans.
        kind: ``"kernel"`` forces the double-buffer protocol checks;
            auto-detected from a ``__kernel`` marker when None.
    """
    report = AnalysisReport()
    lines = _strip_comments(source)
    defines = _resolve_defines(lines)
    is_kernel = kind == "kernel" or (kind is None and "__kernel" in source)

    # --- collect literal-dimension array declarations
    arrays: dict[str, tuple[int, ...]] = {}
    decl_line: dict[str, int] = {}
    env: dict[str, tuple[int, int]] = {"pp": (0, 1)}
    evaluator = _IntervalEvaluator(defines, env)
    for line_no, line in enumerate(lines, start=1):
        match = _DECL_RE.match(line)
        if not match or "(" in line.split("[", 1)[0]:
            continue
        name, dim_text = match.group(1), match.group(2)
        dims = []
        try:
            for dim_expr in _DIM_RE.findall(dim_text):
                lo, hi = evaluator.eval(dim_expr)
                if lo != hi:
                    raise _Unknown(dim_expr)
                dims.append(lo)
        except _Unknown:
            continue
        arrays[name] = tuple(dims)
        decl_line[name] = line_no

    # --- walk the code: track intervals, check every unguarded subscript
    for line_no, line in enumerate(lines, start=1):
        if _DEFINE_RE.match(line):
            continue
        for match in _FOR_RE.finditer(line):
            var, start_text, limit_text = match.groups()
            inclusive = "<=" in match.group(0)
            try:
                start_lo, _ = evaluator.eval(start_text)
                _, limit_hi = evaluator.eval(limit_text)
            except _Unknown:
                env.pop(var, None)
                continue
            env[var] = (start_lo, limit_hi if inclusive else limit_hi - 1)
        if _DECL_RE.match(line):
            # The bracket chain on a declaration line states extents,
            # not an access.
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            var, expr = assign.groups()
            try:
                env[var] = evaluator.eval(expr)
            except _Unknown:
                env.pop(var, None)

        # Guard handling: everything after `?` sits under the emitted
        # boundary condition; `if (`-guarded lines only get the
        # negativity check.
        guarded = "if (" in line or "if(" in line
        checkable = line.split("?", 1)[0]
        for match in _ACCESS_RE.finditer(checkable):
            name = match.group(1)
            dims = arrays.get(name)
            if dims is None:
                continue
            subscripts = _DIM_RE.findall(match.group(2))
            if len(subscripts) > len(dims):
                report.add(
                    LINT_RANK_MISMATCH,
                    Severity.ERROR,
                    f"{name!r} is declared with {len(dims)} dimension(s) "
                    f"(line {decl_line[name]}) but indexed with "
                    f"{len(subscripts)}",
                    _span(line_no, match.start() + 1, filename),
                )
                continue
            for dim, sub in enumerate(subscripts):
                try:
                    lo, hi = evaluator.eval(sub)
                except _Unknown:
                    continue
                if lo < 0:
                    report.add(
                        LINT_INDEX_NEGATIVE,
                        Severity.ERROR,
                        f"subscript {dim} of {name!r} ({sub.strip()}) can "
                        f"reach {lo} < 0",
                        _span(line_no, match.start() + 1, filename),
                    )
                if hi >= dims[dim] and not guarded:
                    report.add(
                        LINT_INDEX_OVERFLOW,
                        Severity.ERROR,
                        f"subscript {dim} of {name!r} ({sub.strip()}) can "
                        f"reach {hi}, but the dimension declared on line "
                        f"{decl_line[name]} is {dims[dim]}",
                        _span(line_no, match.start() + 1, filename),
                        hint=f"the buffer needs extent >= {hi + 1} here",
                    )

    if is_kernel:
        _check_double_buffering(report, lines, filename)
    return report


def _check_double_buffering(
    report: AnalysisReport, lines: list[str], filename: str | None
) -> None:
    """SA320–SA322: the ping-pong protocol on ``buf_*[2][..]`` buffers."""
    pingpong: list[str] = []
    for line in lines:
        match = _DECL_RE.match(line)
        if match and match.group(2).startswith("[2]"):
            pingpong.append(match.group(1))
    if not pingpong:
        return
    text = "\n".join(lines)
    if not re.search(r"\bint\s+pp\s*=\s*0\s*;", text):
        report.add(
            LINT_PINGPONG_INIT_MISSING,
            Severity.ERROR,
            f"double-buffered arrays {pingpong} are declared but the "
            f"ping-pong selector is never initialised (`int pp = 0;`)",
        )
    if not re.search(r"\bpp\s*=\s*1\s*-\s*pp\s*;", text):
        report.add(
            LINT_PINGPONG_FLIP_MISSING,
            Severity.ERROR,
            "the ping-pong selector is never flipped (`pp = 1 - pp;`), so "
            "the load phase of block k+1 would overwrite the buffer the "
            "compute phase of block k is reading",
        )
    for line_no, line in enumerate(lines, start=1):
        if _DECL_RE.match(line):
            continue
        for match in _ACCESS_RE.finditer(line):
            if match.group(1) not in pingpong:
                continue
            first = _DIM_RE.findall(match.group(2))[0]
            if "pp" not in first:
                report.add(
                    LINT_PINGPONG_NOT_USED,
                    Severity.WARNING,
                    f"access to double-buffered {match.group(1)!r} selects "
                    f"plane [{first.strip()}] instead of the ping-pong "
                    f"selector [pp]",
                    _span(line_no, match.start() + 1, filename),
                )


def lint_against_design(
    source: str,
    design: DesignPoint,
    *,
    filename: str | None = None,
) -> AnalysisReport:
    """SA310/SA311: the ``#define`` header must restate the design point.

    Every generated file carries ``N_/T_/S_/B_`` definitions per loop
    plus ``ROWS/COLS/VEC``; this cross-checks them against the
    :class:`DesignPoint` the file claims to implement, catching stale or
    hand-edited headers before anything consumes the file.
    """
    report = AnalysisReport()
    lines = _strip_comments(source)
    defines = _resolve_defines(lines)
    nest = design.nest
    tiling = design.tiling
    expected: dict[str, int] = {}
    for it in nest.iterators:
        expected[f"N_{it}"] = nest.bounds[it]
        expected[f"T_{it}"] = tiling.t(it)
        expected[f"S_{it}"] = tiling.s(it)
        expected[f"B_{it}"] = tiling.block_extent(it)
    expected["ROWS"] = design.shape.rows
    expected["COLS"] = design.shape.cols
    expected["VEC"] = design.shape.vector
    for name, want in expected.items():
        have = defines.get(name)
        if have is None:
            report.add(
                LINT_DEFINE_MISSING,
                Severity.ERROR,
                f"generated header does not define {name} "
                f"(design {design.signature} requires {name}={want})",
            )
        elif have != want:
            report.add(
                LINT_DEFINE_MISMATCH,
                Severity.ERROR,
                f"#define {name} {have} contradicts the design point "
                f"({design.signature} implies {name}={want})",
                _find_define_span(lines, name, filename),
            )
    return report


def _find_define_span(
    lines: list[str], name: str, filename: str | None
) -> SourceSpan | None:
    for line_no, line in enumerate(lines, start=1):
        match = _DEFINE_RE.match(line)
        if match and match.group(1) == name:
            return _span(line_no, line.index(name) + 1, filename)
    return None


# --------------------------------------------------------------------------
# Verilog structural lint (SA330–SA333) for the RTL backend's output.

_V_MODULE_RE = re.compile(r"^\s*module\s+(\w+)")
_V_DECL_RE = re.compile(
    r"^\s*(input|output|inout)?\s*(reg|wire)?\s*"
    r"(?:\[(\d+):(\d+)\]\s*)?(\w+)\s*(\[[^\]]+\])?\s*;\s*$"
)
_V_PARAM_RE = re.compile(r"^\s*parameter\s+(\w+)\s*=")
_V_ASSIGN_RE = re.compile(r"^\s*assign\s+(\w+)\s*=\s*(.*);\s*$")
_V_COMB_ONE_RE = re.compile(r"^\s*always\s*@\*\s*(\w+)\s*=\s*(.*);\s*$")
_V_NB_RE = re.compile(r"^\s*(\w+)(\[[^\]]*\])?\s*<=\s*(.*);\s*$")
_V_BLOCKING_RE = re.compile(r"^\s*(\w+)(\[[^\]]*\])?\s*=\s*(.*);\s*$")
_V_INSTANCE_RE = re.compile(
    r"^\s*(\w+)\s*(?:#\s*\((?:[^()]|\([^()]*\))*\)\s*)?(\w+)\s*\(\s*$"
)
_V_CONN_RE = re.compile(r"\.(\w+)\s*\(\s*([^)]*?)\s*\)")
_V_IDENT_RE = re.compile(r"(?<!\$)\b[A-Za-z_]\w*\b")
_V_KEYWORDS = frozenset(
    "module endmodule input output inout reg wire assign always initial begin "
    "end if else for posedge negedge parameter integer or and not".split()
)


def _v_idents(text: str) -> set[str]:
    """Signal identifiers mentioned in an expression (keywords, system
    tasks and numeric literals excluded)."""
    cleaned = re.sub(r"\$\w+", " ", text)
    cleaned = re.sub(r"\d+'[bdh][0-9a-fA-F_xz]+", " ", cleaned)
    return {
        name
        for name in _V_IDENT_RE.findall(cleaned)
        if name not in _V_KEYWORDS and not name[0].isdigit()
    }


class _VModule:
    """Declarations, drivers and reads of one parsed module."""

    def __init__(self, name: str, line_no: int) -> None:
        self.name = name
        self.line_no = line_no
        self.kinds: dict[str, str] = {}  # name -> input/output/wire/reg/...
        self.widths: dict[str, int] = {}
        self.memories: set[str] = set()
        self.params: set[str] = set()
        self.decl_line: dict[str, int] = {}
        self.drivers: dict[str, list[tuple[str, int]]] = {}
        self.reads: dict[str, int] = {}  # name -> first read line
        self.port_dirs: dict[str, tuple[str, int]] = {}  # for instances of me

    def declare(
        self, name: str, kind: str, width: int, line_no: int, is_mem: bool
    ) -> None:
        self.kinds[name] = kind
        self.widths[name] = width
        self.decl_line.setdefault(name, line_no)
        if is_mem:
            self.memories.add(name)
        if kind.startswith("input") or kind.startswith("output"):
            direction = "input" if kind.startswith("input") else "output"
            self.port_dirs[name] = (direction, width)

    def drive(self, name: str, source: str, line_no: int) -> None:
        self.drivers.setdefault(name, []).append((source, line_no))

    def read(self, names: set[str], line_no: int) -> None:
        for name in names:
            self.reads.setdefault(name, line_no)


def lint_verilog(source: str, *, filename: str | None = None) -> AnalysisReport:
    """Structural lint of emitted Verilog: SA330–SA333.

    Works on the regular shape :mod:`repro.codegen.rtl` produces (and
    intentionally nothing fancier): per-signal declarations, ``assign``
    statements, ``always @*`` and ``always @(posedge clk)`` processes,
    and instance connections (child port directions resolved from
    modules defined in the same file).

    * **SA330** — a declared net is read but has no driver: no assign,
      no always block, no instance output connection.
    * **SA331** — a net is driven from more than one source (two
      assigns, an assign plus an always block, two always blocks, ...).
    * **SA332** — an identifier-to-identifier assignment or port
      connection joins nets of different declared widths.
    * **SA333** *(warning)* — a combinational ``always @*`` block
      contains more ``if`` arms than ``else`` arms, which infers a latch
      for any signal not assigned on the missing path.
    """
    report = AnalysisReport()
    lines = _strip_comments(source)
    modules: list[_VModule] = []
    module: _VModule | None = None
    in_header = False
    pending: list[tuple] = []  # deferred instance-connection checks

    i = 0
    while i < len(lines):
        line = lines[i]
        line_no = i + 1
        i += 1
        m = _V_MODULE_RE.match(line)
        if m:
            module = _VModule(m.group(1), line_no)
            modules.append(module)
            in_header = "(" in line and ");" not in line
            continue
        if module is None:
            continue
        if in_header:
            if ");" in line or ")" == line.strip().rstrip(";"):
                in_header = False
            continue
        if re.match(r"^\s*endmodule", line):
            module = None
            continue
        if _V_PARAM_RE.match(line):
            module.params.add(_V_PARAM_RE.match(line).group(1))
            continue
        if re.match(r"^\s*integer\s+\w+\s*;", line):
            module.params.add(line.split()[1].rstrip(";"))
            continue
        decl = _V_DECL_RE.match(line)
        if decl and (decl.group(1) or decl.group(2)):
            direction, kind, msb, lsb, name, mem_dims = decl.groups()
            width = abs(int(msb) - int(lsb)) + 1 if msb is not None else 1
            label = " ".join(filter(None, (direction, kind))) or "wire"
            module.declare(name, label, width, line_no, mem_dims is not None)
            continue
        m = _V_ASSIGN_RE.match(line)
        if m:
            target, rhs = m.groups()
            module.drive(target, "assign", line_no)
            module.read(_v_idents(rhs), line_no)
            _check_width_pair(report, module, target, rhs, line_no, filename)
            continue
        m = _V_COMB_ONE_RE.match(line)
        if m:
            target, rhs = m.groups()
            module.drive(target, "always@*", line_no)
            module.read(_v_idents(rhs), line_no)
            continue
        if re.match(r"^\s*always\s*@\*", line) or re.match(
            r"^\s*always\s*@\s*\(\s*\*\s*\)", line
        ):
            i = _scan_always(lines, i, line_no, module, comb=True, report=report, filename=filename)
            continue
        if re.match(r"^\s*always\s*@\s*\(\s*posedge", line):
            i = _scan_always(lines, i, line_no, module, comb=False, report=report, filename=filename)
            continue
        if re.match(r"^\s*initial\b", line):
            i = _skip_block(lines, i)
            continue
        inst = _V_INSTANCE_RE.match(line)
        if inst and inst.group(1) not in _V_KEYWORDS:
            child_name, _ = inst.groups()
            conns: list[tuple[str, str, int]] = []
            while i < len(lines):
                conn_line = lines[i]
                for port, expr in _V_CONN_RE.findall(conn_line):
                    conns.append((port, expr, i + 1))
                i += 1
                if ");" in conn_line:
                    break
            pending.append((module, child_name, conns))

    by_name = {mod.name: mod for mod in modules}

    # Resolve instance connections now that all modules are parsed.
    for parent, child_name, conns in pending:
        child = by_name.get(child_name)
        for port, expr, line_no in conns:
            direction, width = (
                child.port_dirs.get(port, (None, None))
                if child is not None
                else (None, None)
            )
            if direction == "output":
                if re.fullmatch(r"\w+", expr):
                    parent.drive(expr, f"{child_name} output", line_no)
            else:
                parent.read(_v_idents(expr), line_no)
            if (
                width is not None
                and re.fullmatch(r"[A-Za-z_]\w*", expr)
                and expr in parent.widths
                and parent.widths[expr] != width
            ):
                report.add(
                    LINT_VERILOG_WIDTH_MISMATCH,
                    Severity.ERROR,
                    f"port {port!r} of {child_name!r} is {width} bit(s) wide "
                    f"but is connected to {expr!r} "
                    f"({parent.widths[expr]} bit(s))",
                    _span(line_no, 1, filename),
                )

    for mod in modules:
        for name, first_read in sorted(mod.reads.items()):
            kind = mod.kinds.get(name)
            if kind is None or name in mod.params or name in mod.memories:
                continue
            if kind.startswith("input") or kind == "output reg" or kind == "reg":
                # inputs are driven by the parent; regs by processes the
                # scan may not model — only plain nets are provable here.
                if kind != "reg" or mod.drivers.get(name):
                    continue
            if not mod.drivers.get(name):
                report.add(
                    LINT_VERILOG_UNDRIVEN,
                    Severity.ERROR,
                    f"{mod.name}.{name} is read (line {first_read}) but "
                    f"never driven",
                    _span(mod.decl_line.get(name, first_read), 1, filename),
                )
        for name, sources in sorted(mod.drivers.items()):
            distinct = {src for src, _ in sources}
            if len(sources) > 1 and len(distinct) > 1 or len(
                [s for s, _ in sources if s == "assign"]
            ) > 1:
                report.add(
                    LINT_VERILOG_MULTIDRIVEN,
                    Severity.ERROR,
                    f"{mod.name}.{name} is driven from multiple sources: "
                    + ", ".join(
                        f"{src} (line {ln})" for src, ln in sources
                    ),
                    _span(sources[0][1], 1, filename),
                )
    return report


def _check_width_pair(
    report: AnalysisReport,
    module: _VModule,
    target: str,
    rhs: str,
    line_no: int,
    filename: str | None,
) -> None:
    """SA332 on plain identifier-to-identifier continuous assigns."""
    rhs = rhs.strip()
    if not re.fullmatch(r"[A-Za-z_]\w*", rhs):
        return
    if target in module.widths and rhs in module.widths:
        tw, rw = module.widths[target], module.widths[rhs]
        if tw != rw:
            report.add(
                LINT_VERILOG_WIDTH_MISMATCH,
                Severity.ERROR,
                f"assign joins {target!r} ({tw} bit(s)) and {rhs!r} "
                f"({rw} bit(s))",
                _span(line_no, 1, filename),
            )


def _scan_always(
    lines: list[str],
    start: int,
    header_line: int,
    module: _VModule,
    *,
    comb: bool,
    report: AnalysisReport,
    filename: str | None,
) -> int:
    """Walk one always block: record drivers/reads, check SA333."""
    source_label = f"always@{'*' if comb else 'posedge'}:{header_line}"
    depth = 0
    i = start
    if_count = else_count = 0
    targets: set[str] = set()
    started = False
    while i < len(lines):
        line = lines[i]
        i += 1
        line_no = i
        depth += line.count("begin")
        if line.count("begin"):
            started = True
        if_count += len(re.findall(r"\bif\s*\(", line))
        else_count += len(re.findall(r"\belse\b", line))
        m = _V_NB_RE.match(line) or _V_BLOCKING_RE.match(line)
        if m:
            target, subscript, rhs = m.group(1), m.group(2), m.group(3)
            if target in module.kinds or target in module.memories:
                module.drive(target, source_label, line_no)
                targets.add(target)
            module.read(_v_idents(rhs), line_no)
            if subscript:
                module.read(_v_idents(subscript), line_no)
        else:
            condition = re.search(r"(?:if|for)\s*\((.*)\)", line)
            if condition:
                module.read(_v_idents(condition.group(1)), line_no)
        depth -= line.count("end") - line.count("endmodule")
        if started and depth <= 0:
            break
        if not started and ";" in line:
            break
    if comb and if_count > else_count and targets:
        report.add(
            LINT_VERILOG_LATCH,
            Severity.WARNING,
            f"combinational always block (line {header_line}) has "
            f"{if_count} if arm(s) but {else_count} else arm(s); "
            f"{sorted(targets)} infer latches on the missing path",
            _span(header_line, 1, filename),
        )
    return i


def _skip_block(lines: list[str], start: int) -> int:
    """Skip an initial/always block body (begin/end balanced)."""
    depth = 0
    i = start
    started = False
    while i < len(lines):
        line = lines[i]
        i += 1
        depth += line.count("begin")
        if line.count("begin"):
            started = True
        depth -= line.count("end") - line.count("endmodule")
        if started and depth <= 0:
            break
        if not started and ";" in line:
            break
    return i


__all__ = ["lint_against_design", "lint_generated_code", "lint_verilog"]
