"""Pass 1 — frontend/IR legality: is this nest systolizable?

The paper's flow assumes a "Code 1"-style input: a perfect nest of
normalized counted loops around one multiply-accumulate statement whose
subscripts are a single iterator or a sum of two iterators (Section 3.3),
with every array's fine-grained reuse (Eq. 3) carried by at least one
loop so a feasible mapping (Eq. 2) can exist at all.  This pass verifies
all of it *statically* and explains each rejection with a coded, located
diagnostic — the answer to "why was my nest rejected?".

Entry points:

* :func:`check_source` — from C text; lex/parse rejections become
  diagnostics, never tracebacks.
* :func:`check_program` — from a parsed :class:`Program` (AST spans).
* :func:`check_nest` — from an IR :class:`LoopNest` (no spans; used for
  programmatically built nests, e.g. from CNN layer descriptors).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.analysis.diagnostics import (
    NEST_MISSING_PRAGMA,
    NEST_NO_FEASIBLE_MAPPING,
    NEST_NO_REUSE_LOOP,
    NEST_NON_SYSTOLIZABLE_SUBSCRIPT,
    NEST_NOT_SINGLE_ACCUMULATION,
    NEST_NOT_TWO_READS,
    NEST_SUBSCRIPT_NEGATIVE,
    NEST_SUBSCRIPT_TOO_MANY_ITERATORS,
    NEST_TOO_SHALLOW,
    AnalysisReport,
    Severity,
    SourceSpan,
)
from repro.frontend.ast_nodes import ArrayRef, ForLoop, MacStatement, Program
from repro.frontend.cparser import ParseError, parse_program
from repro.frontend.extract import extract_loop_nest
from repro.frontend.lexer import LexError
from repro.ir.loop import LoopNest
from repro.ir.reuse import analyze_reuse


def _sub_span(ref: ArrayRef, dim: int) -> SourceSpan | None:
    """Span of one subscript of an AST reference (None if unlocated)."""
    sub = ref.subscripts[dim]
    if sub.line > 0:
        return SourceSpan(sub.line, max(1, sub.column))
    if ref.line > 0:
        return SourceSpan(ref.line, max(1, ref.column))
    return None


def _check_subscript_terms(
    report: AnalysisReport,
    array: str,
    dim: int,
    terms: list[tuple[str, int]],
    constant: int,
    span: SourceSpan | None,
    *,
    allow_strided: bool,
) -> None:
    """Section 3.3 pattern check for one subscript of one access.

    Legal forms are ``i`` and ``i + j`` (plus a nonnegative constant,
    which folding and padding introduce).  Strided forms like ``2*i``
    are produced by the stride-folding transformation and accepted only
    when ``allow_strided`` is set; user-facing checks reject them so the
    DSE's reuse analysis assumptions hold.
    """
    rendered_terms = [
        (f"{coeff}*{name}" if coeff != 1 else name) for name, coeff in terms
    ]
    rendered = " + ".join(rendered_terms + ([str(constant)] if constant else [])) or "0"
    if len(terms) > 2:
        report.add(
            NEST_SUBSCRIPT_TOO_MANY_ITERATORS,
            Severity.ERROR,
            f"subscript {dim} of {array!r} ({rendered}) sums "
            f"{len(terms)} iterators; the systolic mapping analysis "
            f"covers a single iterator or a sum of two",
            span,
        )
    for name, coeff in terms:
        if coeff < 0:
            report.add(
                NEST_SUBSCRIPT_NEGATIVE,
                Severity.ERROR,
                f"subscript {dim} of {array!r} ({rendered}) has a negative "
                f"coefficient on {name!r}, so the index can go negative",
                span,
            )
        elif coeff != 1 and not allow_strided:
            report.add(
                NEST_NON_SYSTOLIZABLE_SUBSCRIPT,
                Severity.ERROR,
                f"subscript {dim} of {array!r} ({rendered}) is not in the "
                f"systolizable form: {name!r} carries coefficient {coeff}, "
                f"but only single-iterator ('i') or two-iterator sums "
                f"('i + j') are supported",
                span,
                hint="express the stride through loop restructuring (the "
                "flow's folding pass introduces strides itself where legal)",
            )
    if constant < 0:
        report.add(
            NEST_SUBSCRIPT_NEGATIVE,
            Severity.ERROR,
            f"subscript {dim} of {array!r} ({rendered}) has negative "
            f"constant {constant}, so the first iterations index out of bounds",
            span,
        )


def _check_structure_and_reuse(
    report: AnalysisReport,
    nest: LoopNest,
    *,
    span_of: Callable[[str], SourceSpan | None] | None = None,
) -> None:
    """IR-level checks shared by the AST and LoopNest entry points.

    Args:
        report: accumulates findings.
        nest: the extracted nest.
        span_of: optional ``(array_name) -> SourceSpan | None`` hook so
            AST callers can locate array-level findings.
    """
    locate = span_of or (lambda _array: None)

    structure_ok = True
    if nest.depth < 3:
        structure_ok = False
        report.add(
            NEST_TOO_SHALLOW,
            Severity.ERROR,
            f"nest {nest.name!r} has {nest.depth} loop(s); mapping to PE "
            f"rows, PE columns and the SIMD vector needs at least three",
        )
    writes = nest.writes
    if len(writes) != 1:
        structure_ok = False
        report.add(
            NEST_NOT_SINGLE_ACCUMULATION,
            Severity.ERROR,
            f"nest {nest.name!r} must accumulate into exactly one array, "
            f"found {len(writes)}: {[w.array for w in writes]}",
        )
    reads = nest.reads
    if len(reads) != 2:
        structure_ok = False
        report.add(
            NEST_NOT_TWO_READS,
            Severity.ERROR,
            f"the accumulation must read exactly two arrays (a*b), "
            f"nest {nest.name!r} reads {len(reads)}: {[r.array for r in reads]}",
        )

    # Eq. 3 reuse analysis: every array needs at least one reuse-carrying
    # loop, otherwise no selection of three inner loops can satisfy Eq. 2.
    table = analyze_reuse(nest)
    reuse_ok = True
    for array in nest.array_names:
        if not table.reuse_loops(array):
            reuse_ok = False
            report.add(
                NEST_NO_REUSE_LOOP,
                Severity.ERROR,
                f"array {array!r} has no loop carrying fine-grained reuse "
                f"(every loop of {list(nest.iterators)} appears in its "
                f"subscripts), so the Eq. 2 feasibility condition can never "
                f"hold for it",
                locate(array),
                hint="a systolizable nest keeps at least one loop out of "
                "each array's subscripts (e.g. the output-channel loop for IN)",
            )

    # Eq. 2: a feasible ordered mapping must exist.  Only meaningful when
    # the structural preconditions hold.
    if structure_ok and reuse_ok:
        from repro.model.mapping import feasible_mappings

        if not feasible_mappings(nest):
            report.add(
                NEST_NO_FEASIBLE_MAPPING,
                Severity.ERROR,
                f"no ordered (row, column, vector) loop triple satisfies the "
                f"Eq. 2 feasibility condition for nest {nest.name!r}: reuse "
                f"table\n{table}",
            )


def check_program(
    program: Program,
    *,
    name: str = "user_nest",
    require_pragma: bool = True,
    allow_strided: bool = False,
) -> tuple[LoopNest | None, AnalysisReport]:
    """Check a parsed program; returns (nest or None, report).

    The nest is None when extraction itself failed; the report then
    carries the located extraction error.
    """
    report = AnalysisReport()

    if program.pragma is None or "systolic" not in program.pragma:
        severity = Severity.ERROR if require_pragma else Severity.WARNING
        described = (
            "no pragma" if program.pragma is None else f"pragma {program.pragma!r}"
        )
        report.add(
            NEST_MISSING_PRAGMA,
            severity,
            f"{described} on the nest; the flow synthesizes nests marked "
            f"'#pragma systolic'",
            SourceSpan(program.nest.line),
            hint="add '#pragma systolic' above the outer loop",
        )

    # AST-level subscript pattern checks (these have precise spans).
    node: ForLoop | MacStatement = program.nest
    while isinstance(node, ForLoop):
        node = node.body
    for ref in (node.target, node.lhs, node.rhs):
        for dim, sub in enumerate(ref.subscripts):
            _check_subscript_terms(
                report,
                ref.name,
                dim,
                [(t.iterator, t.coefficient) for t in sub.terms],
                sub.constant,
                _sub_span(ref, dim),
                allow_strided=allow_strided,
            )

    try:
        nest = extract_loop_nest(program, name=name)
    except ParseError as exc:
        report.extend([exc.diagnostic])
        return None, report

    ref_of = {r.name: r for r in (node.target, node.lhs, node.rhs)}

    def locate(array: str) -> SourceSpan | None:
        ref = ref_of.get(array)
        if ref is not None and ref.line > 0:
            return SourceSpan(ref.line, max(1, ref.column))
        return None

    _check_structure_and_reuse(report, nest, span_of=locate)
    return nest, report


def check_source(
    source: str,
    *,
    name: str = "user_nest",
    filename: str | None = None,
    require_pragma: bool = True,
    allow_strided: bool = False,
) -> tuple[LoopNest | None, AnalysisReport]:
    """Check C text end to end; never raises on bad input.

    Returns (nest or None, report); lexer and parser rejections arrive
    as located diagnostics in the report.
    """
    try:
        program = parse_program(source)
    except (LexError, ParseError) as exc:
        diag = exc.diagnostic
        if filename is not None and diag.span is not None:
            diag = type(diag)(
                diag.code,
                diag.severity,
                diag.message,
                diag.span.with_filename(filename),
                diag.hint,
            )
        return None, AnalysisReport([diag])
    nest, report = check_program(
        program, name=name, require_pragma=require_pragma, allow_strided=allow_strided
    )
    if filename is not None:
        report = AnalysisReport(
            [
                type(d)(
                    d.code,
                    d.severity,
                    d.message,
                    d.span.with_filename(filename) if d.span else None,
                    d.hint,
                )
                for d in report
            ]
        )
    return nest, report


def check_nest(nest: LoopNest, *, allow_strided: bool = False) -> AnalysisReport:
    """Check an IR-level nest (no source spans available).

    Used for nests built programmatically — e.g. from CNN layer
    descriptors — where the same legality rules apply but there is no
    text to point into.
    """
    report = AnalysisReport()
    for access in nest.accesses:
        for dim, expr in enumerate(access.indices):
            _check_subscript_terms(
                report,
                access.array,
                dim,
                list(expr.terms),
                expr.const,
                None,
                allow_strided=allow_strided,
            )
    _check_structure_and_reuse(report, nest)
    return report


__all__ = ["check_nest", "check_program", "check_source"]
