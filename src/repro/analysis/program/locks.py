"""Lock-discipline passes: SA601, SA603 and SA604.

All three work off the lock facts of the shared model:

* **SA601** builds the *acquires-while-holding* graph — a directed edge
  ``L -> M`` whenever some function acquires lock ``M`` (directly, or
  transitively through a resolved call) while holding lock ``L`` — and
  flags every edge that participates in a cycle.  Two threads running
  the two sides of a cycle in opposite orders deadlock.
* **SA603** flags *blocking operations* performed while a lock is held:
  ``time.sleep``, ``subprocess`` invocations, thread/process ``join``,
  event waits on objects other than the held condition, and calls into
  known-blocking helpers (``repro.resilience.retry.call_with_retry``
  sleeps between attempts), directly or transitively.
* **SA604** flags manual ``lock.acquire()`` calls whose release is not
  exception-safe (no matching ``release()`` in a ``finally`` block) —
  an exception between acquire and release leaks the lock forever.

Only *resolved* lock identities (``Class.attr``) feed the SA601 graph;
heuristic ``?.name`` locks would make cycle reports unfalsifiable.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import (
    CONCURRENCY_BLOCKING_UNDER_LOCK,
    CONCURRENCY_LOCK_ORDER,
    CONCURRENCY_UNSAFE_ACQUIRE,
)
from repro.analysis.program.framework import Finding, ProgramPass, make_finding
from repro.analysis.program.model import (
    REENTRANT_KINDS,
    CallSite,
    FunctionInfo,
    ProgramModel,
    Region,
    dotted_name,
)

#: Callable qualnames that block the calling thread.
BLOCKING_QUALNAMES = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen.wait",
        "subprocess.Popen.communicate",
        "socket.create_connection",
        "urllib.request.urlopen",
        "repro.resilience.retry.call_with_retry",
    }
)

#: ``<recv>.<method>()`` method names that block when the receiver is a
#: thread, process or queue.  ``join`` needs receiver filtering (string
#: join is everywhere); ``wait`` is excluded for the held condition.
_BLOCKING_METHODS = frozenset({"join", "wait", "get", "result"})

#: Receiver name fragments that make a ``.join()``/``.get()`` plausible
#: as a thread/process/queue operation rather than a str/dict one.
_CONCURRENT_RECEIVER_HINTS = (
    "thread", "worker", "proc", "process", "pool", "queue", "future", "task",
)


def _held_regions(fn: FunctionInfo, site: CallSite) -> list[Region]:
    """Regions of ``fn`` whose body lexically contains ``site``."""
    return [region for region in fn.regions if site in region.calls]


class LockOrderPass(ProgramPass):
    """SA601: lock-order inversion via cycles in the holds-graph."""

    code = CONCURRENCY_LOCK_ORDER
    name = "lock-order-inversion"

    def run(self, model: ProgramModel) -> list[Finding]:
        findings: list[Finding] = []
        summaries = _LockSummaries(model)
        # edge -> list of (fn, node, holder, acquired, via-call-or-direct)
        edges: dict[tuple[str, str], list[tuple[FunctionInfo, ast.AST, str]]] = {}
        for fn in model.iter_functions():
            for region in fn.regions:
                holder = region.lock
                if not holder.resolved:
                    continue
                for acq in region.acquires:
                    if not acq.resolved or acq.lock == holder.lock:
                        continue
                    edges.setdefault((holder.lock, acq.lock), []).append(
                        (fn, acq.node, "directly")
                    )
                for call in region.calls:
                    if call.callee is None:
                        continue
                    for inner in summaries.locks_of(call.callee):
                        if inner == holder.lock:
                            continue
                        edges.setdefault((holder.lock, inner), []).append(
                            (fn, call.node, f"via {call.raw}()")
                        )
        graph: dict[str, set[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, set()).add(dst)
        reported: set[str] = set()
        for (src, dst), sites in sorted(edges.items()):
            if not _reaches(graph, dst, src):
                continue  # edge not on any cycle
            for fn, node, how in sites:
                finding = make_finding(
                    model,
                    code=self.code,
                    message=(
                        f"lock-order inversion: `{dst}` is acquired {how} while "
                        f"holding `{src}`, but elsewhere the locks are taken in "
                        f"the opposite order — two threads can deadlock"
                    ),
                    fn=fn,
                    node=node,
                    detail=f"{src}->{dst}",
                    hint="pick one global acquisition order for these locks",
                )
                if finding.key not in reported:
                    reported.add(finding.key)
                    findings.append(finding)
        findings.extend(self._self_deadlocks(model))
        return findings

    def _self_deadlocks(self, model: ProgramModel) -> list[Finding]:
        """Re-acquiring a held non-reentrant lock in the same function."""
        findings: list[Finding] = []
        for fn in model.iter_functions():
            for region in fn.regions:
                holder = region.lock
                kind = holder.kind or model.lock_kind(holder.lock)
                if not holder.resolved or kind in REENTRANT_KINDS or kind is None:
                    continue
                for acq in region.acquires:
                    if acq.resolved and acq.lock == holder.lock and acq.raw == holder.raw:
                        findings.append(
                            make_finding(
                                model,
                                code=self.code,
                                message=(
                                    f"`{acq.raw}` is a non-reentrant {kind} and is "
                                    f"re-acquired while already held — this thread "
                                    f"deadlocks against itself"
                                ),
                                fn=fn,
                                node=acq.node,
                                detail=f"{holder.lock}->{holder.lock}",
                                hint="use threading.RLock, or restructure to "
                                "acquire once",
                            )
                        )
        return findings


class _LockSummaries:
    """Memoized per-function transitive lock-acquisition summaries."""

    def __init__(self, model: ProgramModel) -> None:
        self.model = model
        self._cache: dict[str, frozenset[str]] = {}
        self._visiting: set[str] = set()

    def locks_of(self, qualname: str) -> frozenset[str]:
        """Resolved lock ids acquired by ``qualname`` or its callees."""
        cached = self._cache.get(qualname)
        if cached is not None:
            return cached
        if qualname in self._visiting:
            return frozenset()  # break call-graph cycles conservatively
        fn = self.model.functions.get(qualname)
        if fn is None:
            return frozenset()
        self._visiting.add(qualname)
        try:
            locks = {site.lock for site in fn.acquires if site.resolved}
            for call in fn.calls:
                if call.callee is not None:
                    locks.update(self.locks_of(call.callee))
            result = frozenset(locks)
        finally:
            self._visiting.discard(qualname)
        self._cache[qualname] = result
        return result


def _reaches(graph: dict[str, set[str]], src: str, dst: str) -> bool:
    """DFS reachability of ``dst`` from ``src`` in the holds-graph."""
    seen: set[str] = set()
    stack = [src]
    while stack:
        node = stack.pop()
        if node == dst:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.get(node, ()))
    return False


class BlockingUnderLockPass(ProgramPass):
    """SA603: blocking operations inside a held-lock region."""

    code = CONCURRENCY_BLOCKING_UNDER_LOCK
    name = "blocking-under-lock"

    def __init__(self, blocking: Iterable[str] = BLOCKING_QUALNAMES) -> None:
        self.blocking = frozenset(blocking)
        self._cache: dict[str, str | None] = {}
        self._visiting: set[str] = set()

    def run(self, model: ProgramModel) -> list[Finding]:
        findings: list[Finding] = []
        for fn in model.iter_functions():
            for region in fn.regions:
                for call in region.calls:
                    why = self._why_blocking(model, region, call)
                    if why is None:
                        continue
                    findings.append(
                        make_finding(
                            model,
                            code=self.code,
                            message=(
                                f"{why} while holding `{region.lock.raw}` — every "
                                f"other thread contending for the lock stalls "
                                f"behind it"
                            ),
                            fn=fn,
                            node=call.node,
                            detail=f"{region.lock.lock}:{call.raw}",
                            hint="move the blocking operation outside the locked "
                            "region (snapshot state under the lock, then block)",
                        )
                    )
        return findings

    # ------------------------------------------------------------ matching

    def _why_blocking(
        self, model: ProgramModel, region: Region, call: CallSite
    ) -> str | None:
        """A human-readable reason when ``call`` blocks, else None."""
        if call.callee in self.blocking or call.raw in self.blocking:
            return f"`{call.raw}()` blocks"
        method = call.raw.rsplit(".", 1)[-1]
        if "." in call.raw and method in _BLOCKING_METHODS:
            recv = call.raw.rsplit(".", 1)[0]
            if method == "wait":
                if recv == region.lock.raw:
                    return None  # waiting on the held condition releases it
                kind = self._receiver_lock_kind(model, call)
                if kind == "Condition":
                    return None
                return f"`{call.raw}()` blocks waiting"
            if any(hint in recv.lower() for hint in _CONCURRENT_RECEIVER_HINTS):
                return f"`{call.raw}()` blocks"
            return None
        if call.callee is not None:
            inner = self._transitive_reason(model, call.callee)
            if inner is not None:
                return f"`{call.raw}()` blocks ({inner})"
        return None

    def _receiver_lock_kind(self, model: ProgramModel, call: CallSite) -> str | None:
        """Lock kind of a ``<recv>.wait()`` receiver, when resolvable."""
        func = call.node.func
        if not isinstance(func, ast.Attribute):
            return None
        recv = dotted_name(func.value)
        if recv is None or not recv.startswith("self."):
            return None
        attr = recv.split(".", 1)[1]
        for owner in model.lock_attr_owners.get(attr, []):
            return model.classes[owner].lock_attrs.get(attr)
        return None

    def _transitive_reason(self, model: ProgramModel, qualname: str) -> str | None:
        """Reason string when ``qualname`` transitively hits a known
        blocking qualname (resolved calls only; heuristics stay local)."""
        cached = self._cache.get(qualname, "" )
        if cached != "":
            return cached
        if qualname in self._visiting:
            return None
        fn = model.functions.get(qualname)
        if fn is None:
            return None
        self._visiting.add(qualname)
        reason: str | None = None
        try:
            for call in fn.calls:
                target = call.callee or call.raw
                if target in self.blocking:
                    reason = f"it calls `{target}`"
                    break
                if call.callee is not None:
                    inner = self._transitive_reason(model, call.callee)
                    if inner is not None:
                        reason = f"it calls `{call.callee}`, which blocks"
                        break
        finally:
            self._visiting.discard(qualname)
        self._cache[qualname] = reason
        return reason


class UnsafeAcquirePass(ProgramPass):
    """SA604: manual ``acquire()`` without an exception-safe release."""

    code = CONCURRENCY_UNSAFE_ACQUIRE
    name = "unsafe-manual-acquire"

    def run(self, model: ProgramModel) -> list[Finding]:
        findings: list[Finding] = []
        for fn in model.iter_functions():
            for manual in fn.manual_acquires:
                if manual.exception_safe:
                    continue
                findings.append(
                    make_finding(
                        model,
                        code=self.code,
                        message=(
                            f"`{manual.site.raw}.acquire()` has no matching "
                            f"`release()` in a `finally` block — an exception "
                            f"in between leaks the lock permanently"
                        ),
                        fn=fn,
                        node=manual.site.node,
                        detail=manual.site.raw,
                        hint=f"use `with {manual.site.raw}:` or wrap the "
                        "critical section in try/finally",
                    )
                )
        return findings


__all__ = [
    "BLOCKING_QUALNAMES",
    "BlockingUnderLockPass",
    "LockOrderPass",
    "UnsafeAcquirePass",
]
