"""The ``analyze_program`` entry point tying model, passes and report.

Typical library use::

    from repro.analysis.program import analyze_program

    analysis = analyze_program("src/repro")
    for finding in analysis.findings:
        print(finding.diagnostic.render())

``analysis.report`` is a plain :class:`~repro.analysis.diagnostics.
AnalysisReport`, so JSON serialization and caret rendering come for
free; :meth:`ProgramAnalysis.render` adds per-file source lookup so
carets work across the whole analyzed tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.diagnostics import AnalysisReport
from repro.analysis.program.determinism import DeterminismPass
from repro.analysis.program.framework import Finding, ProgramPass, relative_file
from repro.analysis.program.locks import (
    BlockingUnderLockPass,
    LockOrderPass,
    UnsafeAcquirePass,
)
from repro.analysis.program.model import ProgramModel, build_model
from repro.analysis.program.shared_state import SharedStatePass

#: Factories for the default pass lineup, in emission order.
DEFAULT_PASSES: tuple[Callable[[], ProgramPass], ...] = (
    LockOrderPass,
    SharedStatePass,
    BlockingUnderLockPass,
    UnsafeAcquirePass,
    DeterminismPass,
)


@dataclass
class AnalyzeOptions:
    """Knobs for :func:`analyze_program`.

    Attributes:
        select: code prefixes to keep (``("SA6",)`` keeps the family,
            ``("SA602", "SA603")`` narrows to two passes).
        package: dotted package name of the root (auto-detected when
            None).
        passes: pass factories to run (defaults to the full lineup).
    """

    select: tuple[str, ...] = ("SA6",)
    package: str | None = None
    passes: Sequence[Callable[[], ProgramPass]] = DEFAULT_PASSES


@dataclass
class ProgramAnalysis:
    """The result of one whole-program analysis run."""

    model: ProgramModel
    findings: list[Finding] = field(default_factory=list)

    @property
    def report(self) -> AnalysisReport:
        """The findings as a standard diagnostics report."""
        return AnalysisReport(f.diagnostic for f in self.findings)

    def render(self) -> str:
        """Terminal rendering with per-file caret excerpts."""
        sources: dict[str, str] = {}
        for module in self.model.modules.values():
            sources[relative_file(self.model, str(module.path))] = module.source
        lines = []
        for finding in self.findings:
            span = finding.diagnostic.span
            source = sources.get(span.filename) if span and span.filename else None
            lines.append(finding.diagnostic.render(source))
        lines.append(
            f"{len(self.findings)} finding(s)"
            if self.findings
            else "no issues found"
        )
        return "\n".join(lines)


def _sort_key(finding: Finding) -> tuple[str, int, str]:
    span = finding.diagnostic.span
    return (
        span.filename or "" if span else "",
        span.line if span else 0,
        finding.key,
    )


def analyze_program(
    root: Path | str, options: AnalyzeOptions | None = None
) -> ProgramAnalysis:
    """Build the program model for ``root`` and run the selected passes.

    Args:
        root: directory of Python sources (e.g. ``src/repro``).
        options: selection and pass configuration.

    Raises:
        FileNotFoundError: when ``root`` does not exist.
    """
    options = options or AnalyzeOptions()
    model = build_model(root, package=options.package)
    findings: list[Finding] = []
    for factory in options.passes:
        instance = factory()
        if options.select and not any(
            instance.code.startswith(prefix) for prefix in options.select
        ):
            continue
        for finding in instance.run(model):
            if options.select and not any(
                finding.code.startswith(prefix) for prefix in options.select
            ):
                continue
            findings.append(finding)
    findings.sort(key=_sort_key)
    return ProgramAnalysis(model=model, findings=findings)


__all__ = [
    "DEFAULT_PASSES",
    "AnalyzeOptions",
    "ProgramAnalysis",
    "analyze_program",
]
