"""SA602: lock-guarded attributes accessed without the owning lock.

The ownership inference mirrors RacerD-style "majority lock" reasoning,
scoped to classes that *declare* a synchronization primitive (owning a
lock is the statement of concurrent intent):

1. For every ``self.<attr>`` access the model records the set of lock
   regions lexically open at the access site.  The **owning lock** of an
   attribute is the class's own lock under which most of its guarded
   accesses happen.
2. An attribute is **guarded** when at least one write *and* the
   majority of all non-``__init__`` accesses happen under the owning
   lock — attributes that are freely accessed everywhere carry no
   locking convention to violate.
3. Every remaining access without the owning lock held is a finding,
   unless it is excused: construction (``__init__`` and friends) is
   single-threaded, and private helpers that are *only ever called with
   the lock held* (a fixpoint over the in-class call graph) inherit the
   caller's lock.

Reads are reported as well as writes: a guarded flag read outside the
lock is the classic check-then-act race (see ``JobManager.submit``'s
``_draining`` test, the motivating real finding for this pass).
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass

from repro.analysis.diagnostics import CONCURRENCY_UNGUARDED_STATE
from repro.analysis.program.framework import Finding, ProgramPass, make_finding
from repro.analysis.program.model import ClassInfo, FunctionInfo, ProgramModel


@dataclass
class _Access:
    fn: FunctionInfo
    node: ast.AST
    mode: str  # "read" | "write"
    held: frozenset[str]  # canonical lock ids open at the site


def _held_set(held: str | None) -> frozenset[str]:
    return frozenset(held.split(",")) if held else frozenset()


class SharedStatePass(ProgramPass):
    """SA602: unguarded access to a lock-guarded attribute."""

    code = CONCURRENCY_UNGUARDED_STATE
    name = "unguarded-shared-state"

    #: Minimum fraction of non-init accesses that must be lock-guarded
    #: before the attribute is considered to have a locking convention.
    majority = 0.5

    def run(self, model: ProgramModel) -> list[Finding]:
        findings: list[Finding] = []
        for cls in sorted(model.classes.values(), key=lambda c: c.qualname):
            if not cls.lock_attrs:
                continue
            findings.extend(self._check_class(model, cls))
        return findings

    # ----------------------------------------------------------- per class

    def _check_class(self, model: ProgramModel, cls: ClassInfo) -> list[Finding]:
        own_locks = {f"{cls.qualname}.{attr}" for attr in cls.lock_attrs}
        accesses: dict[str, list[_Access]] = {}
        for method in cls.methods.values():
            for attr, node, mode, held in method.self_accesses:
                if attr in cls.lock_attrs:
                    continue  # the locks themselves are not shared state
                accesses.setdefault(attr, []).append(
                    _Access(fn=method, node=node, mode=mode, held=_held_set(held))
                )
        locked_only = self._locked_only_methods(model, cls, own_locks)
        # Functions that *manually* acquire a lock create no region in
        # the model (the held extent is dynamic), so their accesses are
        # excused wholesale rather than misreported as unguarded — SA604
        # polices the manual-acquire discipline itself.
        manual: dict[str, set[str]] = {}
        for method in cls.methods.values():
            for acq in method.acquires:
                if acq.via == "acquire":
                    manual.setdefault(method.name, set()).add(acq.lock)
        findings: list[Finding] = []
        for attr, sites in sorted(accesses.items()):
            owner = self._owning_lock(sites, own_locks)
            if owner is None:
                continue
            for site in sites:
                if site.fn.is_init:
                    continue
                if owner in site.held:
                    continue
                if site.fn.name in locked_only.get(owner, set()):
                    continue
                if owner in manual.get(site.fn.name, set()):
                    continue
                verb = "written" if site.mode == "write" else "read"
                findings.append(
                    make_finding(
                        model,
                        code=self.code,
                        message=(
                            f"`self.{attr}` is guarded by `{owner}` elsewhere "
                            f"in {cls.name} but is {verb} here without it — "
                            f"concurrent threads can observe or corrupt "
                            f"intermediate state"
                        ),
                        fn=site.fn,
                        node=site.node,
                        detail=f"{attr}:{site.mode}",
                        hint=f"hold `{owner.rsplit('.', 1)[-1]}` around this "
                        f"{site.mode}, or document why the access is safe",
                    )
                )
        return findings

    def _owning_lock(
        self, sites: list[_Access], own_locks: set[str]
    ) -> str | None:
        """The class lock that guards this attribute, if any.

        Requires at least one guarded *write* and a guarded majority of
        all non-init accesses; otherwise the attribute has no locking
        convention and nothing is reported.
        """
        relevant = [s for s in sites if not s.fn.is_init]
        if not relevant:
            return None
        counts: Counter[str] = Counter()
        guarded_writes = 0
        for site in relevant:
            held_own = site.held & own_locks
            for lock in held_own:
                counts[lock] += 1
            if site.mode == "write" and held_own:
                guarded_writes += 1
        if not counts or guarded_writes == 0:
            return None
        owner, guarded = counts.most_common(1)[0]
        if guarded / len(relevant) < self.majority:
            return None
        return owner

    def _locked_only_methods(
        self, model: ProgramModel, cls: ClassInfo, own_locks: set[str]
    ) -> dict[str, set[str]]:
        """lock id -> private method names only ever called with it held.

        Fixpoint over the in-class call graph: a private method is
        "locked-only" for lock L when every in-class call to it happens
        either inside an L region or from another locked-only method.
        Public methods never qualify (external callers are unknown).
        """
        result: dict[str, set[str]] = {}
        for lock in own_locks:
            # call sites: callee method name -> list of (caller, held?)
            callers: dict[str, list[tuple[str, bool]]] = {}
            for method in cls.methods.values():
                held_calls = set()
                for region in method.regions:
                    if region.lock.lock == lock:
                        held_calls.update(id(c.node) for c in region.calls)
                for call in method.calls:
                    if call.callee is None or not call.callee.startswith(
                        cls.qualname + "."
                    ):
                        continue
                    name = call.callee.rsplit(".", 1)[-1]
                    callers.setdefault(name, []).append(
                        (method.name, id(call.node) in held_calls)
                    )
            candidates = {
                name
                for name, method in cls.methods.items()
                if name.startswith("_")
                and not name.startswith("__")
                and name in callers
            }
            changed = True
            while changed:
                changed = False
                for name in sorted(candidates):
                    ok = all(
                        held or caller in candidates
                        for caller, held in callers.get(name, [])
                    )
                    if not ok:
                        candidates.discard(name)
                        changed = True
            result[lock] = candidates
        return result


__all__ = ["SharedStatePass"]
