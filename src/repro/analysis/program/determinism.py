"""SA605: nondeterminism inside replay-critical code paths.

The reproduction's contract is bit-identical ``SynthesisResult``\\ s:
stage outputs are content-fingerprinted and replayed from cache, so any
value that differs between two runs of the same input silently breaks
replay equivalence.  This pass computes the set of **replay-critical
functions** — everything reachable (through the resolved call graph)
from the synthesis stages' ``run`` methods and from fingerprint/cache
code — and flags, inside them:

* calls to wall-clock/RNG/entropy sources (``time.time``,
  ``datetime.now``, ``random.*``, ``os.urandom``, ``uuid.uuid4``, …);
* iteration over *unordered* collections: ``set()``/``frozenset()``
  results and unsorted directory listings (``os.listdir``, ``glob``,
  ``Path.iterdir``/``glob``/``scandir``) — hash randomization and
  filesystem order make both differ across runs.

Monotonic timing (``time.perf_counter``/``monotonic``/``process_time``)
is exempt: it feeds metrics, not artifacts.  ``dict`` iteration is
insertion-ordered in modern Python and therefore deterministic.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.diagnostics import CONCURRENCY_NONDETERMINISM
from repro.analysis.program.framework import Finding, ProgramPass, make_finding
from repro.analysis.program.model import FunctionInfo, ProgramModel, dotted_name

#: Call targets (resolved qualname or raw dotted text) whose results
#: differ between runs on identical inputs.
NONDETERMINISTIC_CALLS: dict[str, str] = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.now": "wall-clock time",
    "datetime.utcnow": "wall-clock time",
    "random.random": "unseeded randomness",
    "random.randint": "unseeded randomness",
    "random.randrange": "unseeded randomness",
    "random.choice": "unseeded randomness",
    "random.choices": "unseeded randomness",
    "random.shuffle": "unseeded randomness",
    "random.sample": "unseeded randomness",
    "random.uniform": "unseeded randomness",
    "random.Random": "randomness (seed it explicitly)",
    "os.urandom": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "uuid.uuid1": "host/time-derived UUIDs",
    "uuid.uuid4": "random UUIDs",
    "numpy.random.rand": "unseeded randomness",
    "numpy.random.randn": "unseeded randomness",
    "numpy.random.random": "unseeded randomness",
    "np.random.rand": "unseeded randomness",
    "np.random.randn": "unseeded randomness",
    "np.random.random": "unseeded randomness",
    "id": "interpreter object identity",
}

#: Unordered-producing calls: iterating their result is order-unstable.
_UNORDERED_PRODUCERS = frozenset({"set", "frozenset"})
_FS_LISTING_METHODS = frozenset({"listdir", "scandir", "iterdir", "glob", "rglob"})

#: Method names whose defining classes mark replay-critical roots.
_ROOT_METHOD_NAMES = frozenset({"run", "dump", "load"})


def _is_stage_class(model: ProgramModel, qualname: str) -> bool:
    """True when the class derives (transitively) from a ``*Stage*``."""
    seen: set[str] = set()
    queue = [qualname]
    while queue:
        current = queue.pop()
        if current in seen:
            continue
        seen.add(current)
        if current.rsplit(".", 1)[-1] in ("StageBase", "Stage"):
            return True
        info = model.classes.get(current)
        if info is not None:
            queue.extend(info.bases)
    return False


def default_roots(model: ProgramModel) -> set[str]:
    """Replay-critical entry points: stage ``run``/``dump``/``load``
    methods plus every function with ``fingerprint`` in its name."""
    roots: set[str] = set()
    for fn in model.iter_functions():
        if "fingerprint" in fn.name:
            roots.add(fn.qualname)
        if (
            fn.cls is not None
            and fn.name in _ROOT_METHOD_NAMES
            and _is_stage_class(model, fn.cls)
        ):
            roots.add(fn.qualname)
    return roots


def reachable_from(model: ProgramModel, roots: Iterable[str]) -> set[str]:
    """Function qualnames reachable from ``roots`` via resolved calls."""
    seen: set[str] = set()
    stack = [r for r in roots if r in model.functions]
    while stack:
        qualname = stack.pop()
        if qualname in seen:
            continue
        seen.add(qualname)
        fn = model.functions[qualname]
        for call in fn.calls:
            if call.callee in model.functions and call.callee not in seen:
                stack.append(call.callee)
    return seen


class DeterminismPass(ProgramPass):
    """SA605: nondeterministic operations in replay-critical paths."""

    code = CONCURRENCY_NONDETERMINISM
    name = "determinism-lint"

    def __init__(self, extra_roots: Iterable[str] = ()) -> None:
        self.extra_roots = tuple(extra_roots)

    def run(self, model: ProgramModel) -> list[Finding]:
        roots = default_roots(model)
        roots.update(self.extra_roots)
        critical = reachable_from(model, roots)
        findings: list[Finding] = []
        for qualname in sorted(critical):
            fn = model.functions[qualname]
            findings.extend(self._check_calls(model, fn))
            findings.extend(self._check_iteration(model, fn))
        return findings

    def _check_calls(self, model: ProgramModel, fn: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []
        for call in fn.calls:
            source = NONDETERMINISTIC_CALLS.get(
                call.callee or ""
            ) or NONDETERMINISTIC_CALLS.get(call.raw)
            if source is None:
                continue
            findings.append(
                make_finding(
                    model,
                    code=self.code,
                    message=(
                        f"`{call.raw}()` injects {source} into a replay-critical "
                        f"path — reruns of the same input will not be "
                        f"bit-identical"
                    ),
                    fn=fn,
                    node=call.node,
                    detail=call.raw,
                    hint="derive the value from the stage inputs (or thread a "
                    "seeded RNG / fixed timestamp through the context)",
                )
            )
        return findings

    def _check_iteration(self, model: ProgramModel, fn: FunctionInfo) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(fn.node):
            iter_expr: ast.expr | None = None
            if isinstance(node, ast.For):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                iter_expr = node.generators[0].iter
            if iter_expr is None:
                continue
            reason = self._unordered_reason(iter_expr)
            if reason is None:
                continue
            findings.append(
                make_finding(
                    model,
                    code=self.code,
                    message=(
                        f"iteration over {reason} in a replay-critical path — "
                        f"the visit order differs between runs"
                    ),
                    fn=fn,
                    node=iter_expr,
                    detail=f"iter:{reason}",
                    hint="wrap the iterable in sorted(...)",
                )
            )
        return findings

    def _unordered_reason(self, expr: ast.expr) -> str | None:
        """Why iterating ``expr`` is order-unstable, or None."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set literal"
        if not isinstance(expr, ast.Call):
            return None
        raw = dotted_name(expr.func)
        if raw is None:
            return None
        if raw in _UNORDERED_PRODUCERS:
            return f"an unsorted `{raw}(...)`"
        method = raw.rsplit(".", 1)[-1]
        if method in _FS_LISTING_METHODS:
            return f"an unsorted `{raw}(...)` directory listing"
        return None


__all__ = [
    "NONDETERMINISTIC_CALLS",
    "DeterminismPass",
    "default_roots",
    "reachable_from",
]
