"""Whole-program concurrency & determinism analysis (the SA6xx family).

Where the rest of :mod:`repro.analysis` checks the *inputs and outputs*
of the synthesis flow (user C, design points, generated code), this
package checks the flow's **own Python source**: the concurrent layer —
the service worker pool, the HTTP threads, the process-pool DSE, the
lock-guarded stage cache — whose correctness the bit-identical-replay
contract silently depends on.

Three layers:

* :mod:`repro.analysis.program.model` — the shared program model: every
  module under a package root parsed to ASTs, with a class/function
  index, best-effort type inference, a call graph, lock-acquisition
  facts (``with lock:`` regions and manual ``acquire()`` calls) and
  thread/process-spawn facts;
* the passes — :mod:`~repro.analysis.program.locks` (SA601 lock-order
  inversion, SA603 blocking-under-lock, SA604 exception-unsafe manual
  acquire), :mod:`~repro.analysis.program.shared_state` (SA602
  unguarded shared state) and :mod:`~repro.analysis.program.determinism`
  (SA605 nondeterminism inside replay-critical paths), each a small
  object over the shared model;
* :mod:`repro.analysis.program.baseline` — the suppression baseline and
  ratchet: known findings are checked in, CI fails only on *new* ones.

Entry points: :func:`analyze_program` (library) and
``systolic-synth lint`` (CLI).  See ``docs/static_analysis.md``.
"""

from repro.analysis.program.analyze import (
    DEFAULT_PASSES,
    AnalyzeOptions,
    ProgramAnalysis,
    analyze_program,
)
from repro.analysis.program.baseline import (
    Baseline,
    BaselineDelta,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.program.framework import Finding, ProgramPass
from repro.analysis.program.model import ProgramModel, build_model

__all__ = [
    "AnalyzeOptions",
    "Baseline",
    "BaselineDelta",
    "DEFAULT_PASSES",
    "Finding",
    "ProgramAnalysis",
    "ProgramModel",
    "ProgramPass",
    "analyze_program",
    "apply_baseline",
    "build_model",
    "load_baseline",
    "write_baseline",
]
