"""The SA6xx pass framework: findings, keys, and the pass protocol.

A pass is a small object with a ``code`` and a ``run(model)`` method
returning :class:`Finding`\\ s.  A finding wraps an ordinary
:class:`~repro.analysis.diagnostics.Diagnostic` (so all rendering/JSON
machinery applies unchanged) plus a **stable suppression key** that
survives unrelated edits to the file: the key is built from the code,
the file path relative to the analysis root, the enclosing scope's
qualname and a pass-chosen detail string — *never* from line numbers.
The baseline ratchet (:mod:`repro.analysis.program.baseline`) matches
on these keys.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, Severity, SourceSpan

if TYPE_CHECKING:
    from repro.analysis.program.model import FunctionInfo, ProgramModel


@dataclass(frozen=True)
class Finding:
    """One pass finding: a diagnostic plus its stable suppression key.

    Attributes:
        diagnostic: the rendered-facing diagnostic (code, span, message).
        key: ``{code}:{relfile}:{scope}:{detail}`` — line-independent,
            used by the baseline ratchet.
        scope: qualname of the enclosing function/method (or module).
        detail: pass-chosen discriminator (lock pair, attribute name, …)
            keeping distinct findings in one scope distinct.
    """

    diagnostic: Diagnostic
    key: str
    scope: str
    detail: str

    @property
    def code(self) -> str:
        return self.diagnostic.code


def span_of(node: ast.AST, filename: str | None = None) -> SourceSpan | None:
    """A :class:`SourceSpan` for an AST node (None if unlocated)."""
    line = getattr(node, "lineno", None)
    if line is None:
        return None
    column = getattr(node, "col_offset", 0) + 1
    end_line = getattr(node, "end_lineno", None)
    end_column = getattr(node, "end_col_offset", None)
    return SourceSpan(
        line=line,
        column=column,
        end_line=end_line,
        end_column=end_column if end_column is None else max(column, end_column),
        filename=filename,
    )


def relative_file(model: "ProgramModel", filename: str) -> str:
    """``filename`` relative to the analysis root (POSIX separators)."""
    try:
        return Path(filename).relative_to(model.root).as_posix()
    except ValueError:
        return Path(filename).name


def make_finding(
    model: "ProgramModel",
    *,
    code: str,
    message: str,
    fn: "FunctionInfo",
    node: ast.AST,
    detail: str,
    severity: Severity = Severity.WARNING,
    hint: str | None = None,
) -> Finding:
    """Build a finding anchored at ``node`` inside function ``fn``."""
    relfile = relative_file(model, fn.filename)
    span = span_of(node, filename=relfile)
    diagnostic = Diagnostic(
        code=code, severity=severity, message=message, span=span, hint=hint
    )
    return Finding(
        diagnostic=diagnostic,
        key=f"{code}:{relfile}:{fn.qualname}:{detail}",
        scope=fn.qualname,
        detail=detail,
    )


class ProgramPass:
    """Base class for SA6xx passes.

    Subclasses set :attr:`code` (the primary diagnostic code emitted,
    used by ``--select`` prefix filtering) and implement :meth:`run`.
    """

    #: Primary diagnostic code this pass emits (e.g. ``"SA601"``).
    code: str = ""
    #: Human-readable pass name for ``--list-passes`` style output.
    name: str = ""

    def run(self, model: "ProgramModel") -> list[Finding]:
        """Analyze the model; return findings (possibly empty)."""
        raise NotImplementedError


__all__ = [
    "Finding",
    "ProgramPass",
    "make_finding",
    "relative_file",
    "span_of",
]
