"""The shared program model behind every SA6xx pass.

One :class:`ProgramModel` is built per analysis run: every ``*.py`` file
under a package root is parsed with :mod:`ast` and indexed into

* modules (dotted name, source text, import table),
* classes (attribute types inferred from ``__init__``-style assignments,
  the subset of attributes that are synchronization primitives),
* functions/methods (one :class:`FunctionInfo` each) carrying
  **lock facts** — every ``with lock:`` region with the calls and nested
  acquisitions lexically inside it, plus manual ``acquire()`` sites —
  a best-effort **call graph** (``self.method``, ``self.attr.method``
  through inferred attribute types, module-level and imported callables),
  and **spawn facts** (``threading.Thread(target=...)`` and friends).

Inference is deliberately shallow and syntactic: parameter annotations,
constructor assignments (``x = ClassName(...)``), attribute reads of
known-typed attributes, and container element types from annotated
assignments (``self._threads: list[threading.Thread]``).  Anything the
model cannot resolve stays unresolved — passes treat unresolved facts
conservatively (no finding) rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

#: Constructors (by qualified name) that create synchronization
#: primitives, mapped to the primitive's kind.  Conditions are backed by
#: an RLock by default, so re-acquiring one on the same thread is legal.
LOCK_CONSTRUCTORS: dict[str, str] = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
    "threading.Semaphore": "Semaphore",
    "threading.BoundedSemaphore": "Semaphore",
    "multiprocessing.Lock": "Lock",
    "multiprocessing.RLock": "RLock",
    "multiprocessing.Condition": "Condition",
}

#: Lock kinds that a single thread may legally re-acquire.
REENTRANT_KINDS = frozenset({"RLock", "Condition"})

#: Constructors that spawn concurrent execution.
SPAWN_CONSTRUCTORS = frozenset(
    {
        "threading.Thread",
        "threading.Timer",
        "multiprocessing.Process",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


@dataclass
class LockSite:
    """One lock acquisition (a ``with`` entry or a manual ``acquire()``).

    Attributes:
        lock: canonical lock identity — ``<class qualname>.<attr>`` when
            the owner resolved, else ``?.<attr>`` / ``?.<name>``.
        kind: ``Lock`` / ``RLock`` / ``Condition`` / ``Semaphore`` or
            None when unresolved.
        raw: the source text of the lock expression (``self._lock``).
        node: the acquiring AST node (for spans).
        via: ``"with"`` or ``"acquire"``.
    """

    lock: str
    kind: str | None
    raw: str
    node: ast.AST
    via: str = "with"

    @property
    def resolved(self) -> bool:
        return not self.lock.startswith("?.")


@dataclass
class CallSite:
    """One call expression inside a function.

    Attributes:
        callee: resolved callee qualname (``repro.x.Cls.meth``) or None.
        raw: dotted source text of the callee expression.
        node: the Call node (for spans).
    """

    callee: str | None
    raw: str
    node: ast.Call


@dataclass
class Region:
    """One ``with lock:`` region and everything lexically inside it."""

    lock: LockSite
    calls: list[CallSite] = field(default_factory=list)
    acquires: list[LockSite] = field(default_factory=list)
    #: raw receiver texts of ``<recv>.wait(...)`` calls inside the
    #: region — waiting on the held condition releases it, so such calls
    #: are not "blocking under the lock".
    waited: set[str] = field(default_factory=set)


@dataclass
class ManualAcquire:
    """A bare ``lock.acquire()`` statement plus its release discipline."""

    site: LockSite
    exception_safe: bool


@dataclass
class SpawnSite:
    """A thread/process creation, with its target when resolvable."""

    constructor: str
    target: str | None
    node: ast.Call


@dataclass
class FunctionInfo:
    """One function or method of the analyzed program."""

    qualname: str
    name: str
    module: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    filename: str
    calls: list[CallSite] = field(default_factory=list)
    regions: list[Region] = field(default_factory=list)
    acquires: list[LockSite] = field(default_factory=list)
    manual_acquires: list[ManualAcquire] = field(default_factory=list)
    spawns: list[SpawnSite] = field(default_factory=list)
    #: (attr, node, "read"|"write", held-locks or None) accesses of
    #: ``self.<attr>`` — the raw material of the SA602 pass.  The held
    #: field is a comma-joined string of every lock id held at the
    #: access site (innermost last), or None outside any region.
    self_accesses: list[tuple[str, ast.AST, str, str | None]] = field(
        default_factory=list
    )

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_init(self) -> bool:
        return self.name in ("__init__", "__new__", "__post_init__")


@dataclass
class ClassInfo:
    """One class: attribute types, lock attributes, methods."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)
    lock_attrs: dict[str, str] = field(default_factory=dict)  # attr -> kind
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: Path
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)


class ProgramModel:
    """Whole-program index shared by every pass."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: lock attr name -> class qualnames declaring it (for the
        #: unique-attribute fallback resolution).
        self.lock_attr_owners: dict[str, list[str]] = {}

    # ------------------------------------------------------------- queries

    def source_of(self, filename: str) -> str | None:
        """Source text of an analyzed file (for caret excerpts)."""
        for module in self.modules.values():
            if str(module.path) == filename:
                return module.source
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()

    def lock_kind(self, lock: str) -> str | None:
        """Kind of a canonical lock id, when its owner class is known."""
        owner, _, attr = lock.rpartition(".")
        info = self.classes.get(owner)
        if info is None:
            return None
        return info.lock_attrs.get(attr)

    def resolve_method(self, cls: str, name: str) -> FunctionInfo | None:
        """A method by class qualname, following single-level bases."""
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            queue.extend(info.bases)
        return None


def module_name_for(path: Path, root: Path, package: str | None) -> str:
    """Dotted module name of ``path`` relative to the package root."""
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    prefix = [package] if package else []
    return ".".join(prefix + parts) if (prefix or parts) else (package or "")


def detect_package(root: Path) -> str | None:
    """The dotted package name of ``root`` (walks up ``__init__.py``)."""
    if not (root / "__init__.py").is_file():
        return None
    parts = [root.name]
    current = root.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        current = current.parent
    return ".".join(reversed(parts))


def build_model(root: Path | str, package: str | None = None) -> ProgramModel:
    """Parse and index every ``*.py`` under ``root``.

    Args:
        root: package directory (e.g. ``src/repro``) or any directory of
            Python files.
        package: dotted package name of ``root``; auto-detected from
            ``__init__.py`` files when omitted.

    Raises:
        FileNotFoundError: when ``root`` does not exist.
    """
    root = Path(root).resolve()
    if not root.exists():
        raise FileNotFoundError(f"no such analysis root: {root}")
    if package is None:
        package = detect_package(root)
    model = ProgramModel(root)
    paths = sorted(root.rglob("*.py")) if root.is_dir() else [root]
    for path in paths:
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError):
            continue  # unreadable/unparsable files are out of scope
        name = module_name_for(path, root if root.is_dir() else root.parent, package)
        module = ModuleInfo(name=name, path=path, source=source, tree=tree)
        module.imports = _collect_imports(tree)
        model.modules[name] = module
    for module in model.modules.values():
        _index_module(model, module)
    for module in model.modules.values():
        _analyze_module(model, module)
    return model


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    """Local name -> qualified target for top-level imports."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


# --------------------------------------------------------------- indexing


def _index_module(model: ProgramModel, module: ModuleInfo) -> None:
    """First pass: register classes, methods and module functions."""
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{module.name}.{node.name}" if module.name else node.name,
                name=node.name,
                module=module.name,
                node=node,
            )
            for base in node.bases:
                raw = dotted_name(base)
                if raw is not None:
                    cls.bases.append(_resolve_name(model, module, raw) or raw)
            model.classes[cls.qualname] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = FunctionInfo(
                        qualname=f"{cls.qualname}.{item.name}",
                        name=item.name,
                        module=module.name,
                        cls=cls.qualname,
                        node=item,
                        filename=str(module.path),
                    )
                    cls.methods[item.name] = fn
                    model.functions[fn.qualname] = fn
            _infer_class_attrs(model, module, cls)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module.name}.{node.name}" if module.name else node.name
            model.functions[qual] = FunctionInfo(
                qualname=qual,
                name=node.name,
                module=module.name,
                cls=None,
                node=node,
                filename=str(module.path),
            )
    for cls in model.classes.values():
        for attr, kind in cls.lock_attrs.items():
            model.lock_attr_owners.setdefault(attr, []).append(cls.qualname)


def _infer_class_attrs(model: ProgramModel, module: ModuleInfo, cls: ClassInfo) -> None:
    """Infer ``self.attr`` types from assignments in every method."""
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if annotation is not None and attr not in cls.attr_types:
                resolved = _resolve_annotation(model, module, annotation)
                if resolved is not None:
                    cls.attr_types[attr] = resolved
            if isinstance(value, ast.Call):
                raw = dotted_name(value.func)
                if raw is None:
                    continue
                qual = _resolve_name(model, module, raw) or raw
                if qual in LOCK_CONSTRUCTORS:
                    cls.lock_attrs[attr] = LOCK_CONSTRUCTORS[qual]
                    cls.attr_types.setdefault(attr, qual)
                elif qual in model.classes and attr not in cls.attr_types:
                    cls.attr_types[attr] = qual


def _resolve_name(model: ProgramModel, module: ModuleInfo, raw: str) -> str | None:
    """Resolve a dotted source name through the module's import table."""
    head, _, rest = raw.partition(".")
    target = module.imports.get(head)
    if target is not None:
        return f"{target}.{rest}" if rest else target
    local = f"{module.name}.{head}" if module.name else head
    if local in model.classes or local in model.functions:
        return f"{local}.{rest}" if rest else local
    return None


def _resolve_annotation(
    model: ProgramModel, module: ModuleInfo, annotation: ast.expr
) -> str | None:
    """Best-effort type from an annotation: plain names, ``list[T]``,
    ``dict[K, V]`` (the value type), ``T | None`` optionals."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _resolve_annotation(model, module, side)
        return None
    if isinstance(annotation, ast.Subscript):
        base = dotted_name(annotation.value)
        inner = annotation.slice
        if base in ("list", "List", "set", "Set", "frozenset", "tuple", "Tuple"):
            elem = inner.elts[0] if isinstance(inner, ast.Tuple) and inner.elts else inner
            resolved = _resolve_annotation(model, module, elem)
            return f"{base}[{resolved}]" if resolved else None
        if base in ("dict", "Dict") and isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
            resolved = _resolve_annotation(model, module, inner.elts[1])
            return f"dict[{resolved}]" if resolved else None
        if base in ("Optional",):
            return _resolve_annotation(model, module, inner)
        return None
    raw = dotted_name(annotation)
    if raw is None:
        return None
    return _resolve_name(model, module, raw) or raw


# --------------------------------------------------------- function facts


def element_type(container: str | None) -> str | None:
    """``list[T]`` / ``set[T]`` / ``dict[V]`` -> ``T``/``V``."""
    if container is None or "[" not in container:
        return None
    return container[container.index("[") + 1 : -1] or None


class _FunctionAnalyzer(ast.NodeVisitor):
    """Single traversal of one function body collecting all lock/call
    facts, with a running local-variable type environment."""

    def __init__(
        self, model: ProgramModel, module: ModuleInfo, fn: FunctionInfo
    ) -> None:
        self.model = model
        self.module = module
        self.fn = fn
        self.cls = model.classes.get(fn.cls) if fn.cls else None
        self.env: dict[str, str] = {}
        self.region_stack: list[Region] = []
        self._seed_params()

    # ------------------------------------------------------------- typing

    def _seed_params(self) -> None:
        args = self.fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                resolved = _resolve_annotation(self.model, self.module, arg.annotation)
                if resolved is not None:
                    self.env[arg.arg] = resolved
        if self.cls is not None and (args.posonlyargs or args.args):
            first = (args.posonlyargs or args.args)[0].arg
            self.env.setdefault(first, self.cls.qualname)

    def _type_of(self, node: ast.expr) -> str | None:
        """Best-effort static type of an expression."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._type_of(node.value)
            info = self.model.classes.get(base) if base else None
            if info is not None:
                return info.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func)
            if raw is None:
                return None
            qual = _resolve_name(self.model, self.module, raw) or raw
            if qual in self.model.classes or qual in LOCK_CONSTRUCTORS:
                return qual
            # dict.get(...) on a typed dict attribute yields the value type
            if raw.endswith(".get") and isinstance(node.func, ast.Attribute):
                return element_type(self._type_of(node.func.value))
            return None
        if isinstance(node, ast.Subscript):
            return element_type(self._type_of(node.value))
        return None

    # ------------------------------------------------------ lock identity

    def _lock_site(self, node: ast.expr, via: str) -> LockSite | None:
        """Canonical lock identity of an expression, or None when the
        expression cannot be a synchronization primitive."""
        raw = dotted_name(node) or "<expr>"
        if isinstance(node, ast.Attribute):
            owner_type = self._type_of(node.value)
            info = self.model.classes.get(owner_type) if owner_type else None
            if info is not None and node.attr in info.lock_attrs:
                return LockSite(
                    lock=f"{info.qualname}.{node.attr}",
                    kind=info.lock_attrs[node.attr],
                    raw=raw,
                    node=node,
                    via=via,
                )
            owners = self.model.lock_attr_owners.get(node.attr, [])
            if info is None and len(owners) == 1:
                owner = owners[0]
                return LockSite(
                    lock=f"{owner}.{node.attr}",
                    kind=self.model.classes[owner].lock_attrs[node.attr],
                    raw=raw,
                    node=node,
                    via=via,
                )
            if node.attr.lower().endswith(("lock", "cond", "condition", "mutex")):
                return LockSite(
                    lock=f"?.{node.attr}", kind=None, raw=raw, node=node, via=via
                )
            return None
        if isinstance(node, ast.Name):
            inferred = self.env.get(node.id)
            if inferred in LOCK_CONSTRUCTORS:
                return LockSite(
                    lock=f"?.{node.id}",
                    kind=LOCK_CONSTRUCTORS[inferred],
                    raw=raw,
                    node=node,
                    via=via,
                )
            if node.id.lower().endswith(("lock", "cond", "condition", "mutex")):
                return LockSite(
                    lock=f"?.{node.id}", kind=None, raw=raw, node=node, via=via
                )
        return None

    # ------------------------------------------------------------ visitors

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.fn.node:
            return  # nested defs are separate scopes; skip conservatively
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_write_targets(node.targets)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            inferred = self._type_of(node.value)
            if inferred is not None:
                self.env[node.targets[0].id] = inferred
            elif isinstance(node.value, (ast.Set, ast.SetComp)):
                self.env[node.targets[0].id] = "set"
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_write_targets([node.target])
        if isinstance(node.target, ast.Name):
            resolved = _resolve_annotation(self.model, self.module, node.annotation)
            if resolved is not None:
                self.env[node.target.id] = resolved
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write_targets([node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record_write_targets(node.targets)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            elem = element_type(self._type_of(node.iter))
            if elem is not None:
                self.env[node.target.id] = elem
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        sites = []
        for item in node.items:
            site = self._lock_site(item.context_expr, via="with")
            if site is not None:
                sites.append(site)
        for site in sites:
            self._record_acquire(site)
            region = Region(lock=site)
            self.region_stack.append(region)
            self.fn.regions.append(region)
        for stmt in node.body:
            self.visit(stmt)
        for _ in sites:
            self.region_stack.pop()
        # context expressions themselves may contain calls
        for item in node.items:
            self.visit(item.context_expr)

    def visit_Call(self, node: ast.Call) -> None:
        raw = dotted_name(node.func) or "<call>"
        callee = self._resolve_callee(node)
        site = CallSite(callee=callee, raw=raw, node=node)
        self.fn.calls.append(site)
        for region in self.region_stack:
            region.calls.append(site)
        if raw.endswith(".wait") and isinstance(node.func, ast.Attribute):
            recv = dotted_name(node.func.value)
            if recv is not None:
                for region in self.region_stack:
                    region.waited.add(recv)
        if raw.endswith(".acquire") and isinstance(node.func, ast.Attribute):
            lock = self._lock_site(node.func.value, via="acquire")
            if lock is not None:
                self._record_acquire(lock)
        qual = _resolve_name(self.model, self.module, raw) or raw
        if qual in SPAWN_CONSTRUCTORS:
            target = None
            for kw in node.keywords:
                if kw.arg == "target":
                    target_raw = dotted_name(kw.value)
                    if target_raw is not None:
                        target = self._resolve_callee_raw(target_raw)
            self.fn.spawns.append(
                SpawnSite(constructor=qual, target=target, node=node)
            )
        # record mutating method calls on self attributes as writes
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
            recv = node.func.value
            if (
                isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self"
            ):
                self._record_self_access(recv.attr, node, "write")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and isinstance(node.ctx, ast.Load)
        ):
            self._record_self_access(node.attr, node, "read")
        self.generic_visit(node)

    # ------------------------------------------------------------ recording

    def _record_acquire(self, site: LockSite) -> None:
        self.fn.acquires.append(site)
        for region in self.region_stack:
            region.acquires.append(site)
        if site.via == "acquire":
            self.fn.manual_acquires.append(
                ManualAcquire(site=site, exception_safe=self._released_safely(site))
            )

    def _released_safely(self, site: LockSite) -> bool:
        """True when a matching ``release()`` on the same raw expression
        appears in a ``finally`` block of this function."""
        for node in ast.walk(self.fn.node):
            if not isinstance(node, (ast.Try,)):
                continue
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "release"
                        and dotted_name(call.func.value) == site.raw.rsplit(".acquire", 1)[0]
                    ):
                        return True
        return False

    def _record_write_targets(self, targets: list[ast.expr]) -> None:
        for target in targets:
            for node in self._unpack_targets(target):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    self._record_self_access(node.attr, node, "write")
                elif isinstance(node, ast.Subscript):
                    base = node.value
                    if (
                        isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id == "self"
                    ):
                        self._record_self_access(base.attr, node, "write")

    def _unpack_targets(self, target: ast.expr) -> list[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            result: list[ast.expr] = []
            for elt in target.elts:
                result.extend(self._unpack_targets(elt))
            return result
        return [target]

    def _record_self_access(self, attr: str, node: ast.AST, mode: str) -> None:
        held = (
            ",".join(region.lock.lock for region in self.region_stack)
            if self.region_stack
            else None
        )
        self.fn.self_accesses.append((attr, node, mode, held))

    # ------------------------------------------------------------ resolution

    def _resolve_callee(self, node: ast.Call) -> str | None:
        raw = dotted_name(node.func)
        if raw is None:
            return None
        return self._resolve_callee_raw(raw)

    def _resolve_callee_raw(self, raw: str) -> str | None:
        head, _, rest = raw.partition(".")
        # self.method() / self.attr.method()
        if head == "self" and self.cls is not None:
            if "." not in rest:
                method = self.model.resolve_method(self.cls.qualname, rest)
                return method.qualname if method else None
            attr, _, meth = rest.partition(".")
            attr_type = self.cls.attr_types.get(attr)
            if attr_type is not None and "." not in meth:
                base = element_type(attr_type) or attr_type
                method = self.model.resolve_method(base, meth)
                return method.qualname if method else None
            return None
        # typed local variable: var.method()
        if head in self.env and rest and "." not in rest:
            base = element_type(self.env[head]) or self.env[head]
            method = self.model.resolve_method(base, rest)
            if method is not None:
                return method.qualname
        qual = _resolve_name(self.model, self.module, raw)
        if qual is None:
            return None
        if qual in self.model.functions:
            return qual
        # ClassName(...) constructor -> __init__ facts are indexed per class
        if qual in self.model.classes:
            method = self.model.resolve_method(qual, "__init__")
            return method.qualname if method else qual
        # module.Class.method reference
        owner, _, meth = qual.rpartition(".")
        if owner in self.model.classes:
            method = self.model.resolve_method(owner, meth)
            return method.qualname if method else None
        return None


#: Method names whose invocation mutates the receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "add", "discard", "setdefault", "appendleft", "popleft",
    }
)


def _analyze_module(model: ProgramModel, module: ModuleInfo) -> None:
    """Second pass: collect per-function facts (types are all indexed)."""
    for fn in model.functions.values():
        if fn.module != module.name:
            continue
        analyzer = _FunctionAnalyzer(model, module, fn)
        for stmt in fn.node.body:
            analyzer.visit(stmt)


__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LOCK_CONSTRUCTORS",
    "LockSite",
    "ManualAcquire",
    "ModuleInfo",
    "ProgramModel",
    "REENTRANT_KINDS",
    "Region",
    "SPAWN_CONSTRUCTORS",
    "SpawnSite",
    "build_model",
    "detect_package",
    "dotted_name",
    "element_type",
    "module_name_for",
]
