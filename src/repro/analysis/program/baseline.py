"""The suppression baseline and CI ratchet for SA6xx findings.

A baseline is a checked-in JSON file of finding *keys*
(``{code}:{relfile}:{scope}:{detail}`` — no line numbers, so unrelated
edits do not invalidate it).  Applying a baseline to a fresh analysis
splits the findings three ways:

* **new** — findings whose key is not in the baseline: these fail CI;
* **suppressed** — known findings matched by the baseline: reported in
  summaries but never fatal;
* **stale** — baseline keys that no longer match anything: the debt was
  paid down, and ``systolic-synth lint --write-baseline`` (or hand
  editing) should remove them so the ratchet only ever tightens.

The on-disk format is deliberately diff-friendly: a sorted list of key
strings under a ``"suppressions"`` field, one per line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.program.framework import Finding

#: Schema version of the baseline file.
BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of suppressed finding keys."""

    keys: frozenset[str] = frozenset()
    path: Path | None = None

    def __contains__(self, key: str) -> bool:
        return key in self.keys

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class BaselineDelta:
    """The result of matching an analysis against a baseline."""

    new: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *new* findings appeared (the ratchet holds)."""
        return not self.new

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def load_baseline(path: Path | str) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline.

    Raises:
        ValueError: when the file exists but is not a valid baseline.
    """
    path = Path(path)
    if not path.exists():
        return Baseline(path=path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("suppressions"), list):
        raise ValueError(f"{path}: expected {{'suppressions': [...]}}")
    keys = data["suppressions"]
    bad = [k for k in keys if not isinstance(k, str)]
    if bad:
        raise ValueError(f"{path}: non-string suppression keys: {bad[:3]}")
    return Baseline(keys=frozenset(keys), path=path)


def write_baseline(path: Path | str, findings: Iterable[Finding]) -> Baseline:
    """Write a baseline suppressing exactly ``findings``; returns it."""
    keys = sorted({f.key for f in findings})
    path = Path(path)
    payload = {"version": BASELINE_VERSION, "suppressions": keys}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return Baseline(keys=frozenset(keys), path=path)


def apply_baseline(findings: Sequence[Finding], baseline: Baseline) -> BaselineDelta:
    """Split ``findings`` into new/suppressed against ``baseline``."""
    delta = BaselineDelta()
    seen: set[str] = set()
    for finding in findings:
        seen.add(finding.key)
        if finding.key in baseline:
            delta.suppressed.append(finding)
        else:
            delta.new.append(finding)
    delta.stale = sorted(k for k in baseline.keys if k not in seen)
    return delta


__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "BaselineDelta",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
