"""The paper's evaluation networks: AlexNet and VGG-16.

Only convolutional layers matter for the systolic synthesis (the paper:
"convolutional and fully connected layers contribute over 90% of the
computational complexity ... we focus on ... convolutional layers"); FC
layers are included as descriptors so the FC-to-conv path is exercised,
and pooling layers so end-to-end shapes chain correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers import AddLayer, ConvLayer, FCLayer, PoolLayer


@dataclass(frozen=True)
class Network:
    """An ordered CNN description.

    Attributes:
        name: model name.
        conv_layers: the convolutional layers, in execution order.
        fc_layers: trailing fully connected layers.
        pool_layers: pooling layers (shape bookkeeping).
        add_layers: elementwise residual additions (shape bookkeeping).
    """

    name: str
    conv_layers: tuple[ConvLayer, ...]
    fc_layers: tuple[FCLayer, ...] = ()
    pool_layers: tuple[PoolLayer, ...] = ()
    add_layers: tuple[AddLayer, ...] = ()

    @property
    def conv_flops(self) -> int:
        """Total conv-layer operations for one image."""
        return sum(layer.flops for layer in self.conv_layers)

    @property
    def total_flops(self) -> int:
        """Conv + FC operations for one image."""
        return self.conv_flops + sum(layer.flops for layer in self.fc_layers)

    def layer(self, name: str) -> ConvLayer:
        """Look up a conv layer by name."""
        for layer in self.conv_layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no conv layer {name!r} in {self.name}")


def alexnet() -> Network:
    """AlexNet (Krizhevsky et al., NIPS 2012), 227x227 single-column view.

    conv2/4/5 are grouped (2 groups), which is why the paper quotes conv5
    as (I, O, R, C, P, Q) = (192, 128, 13, 13, 3, 3): that is the
    per-group shape of the (384 -> 256) layer.
    """
    convs = (
        ConvLayer("conv1", 3, 96, 227, 227, kernel=11, stride=4),
        ConvLayer("conv2", 96, 256, 27, 27, kernel=5, pad=2, groups=2),
        ConvLayer("conv3", 256, 384, 13, 13, kernel=3, pad=1),
        ConvLayer("conv4", 384, 384, 13, 13, kernel=3, pad=1, groups=2),
        ConvLayer("conv5", 384, 256, 13, 13, kernel=3, pad=1, groups=2),
    )
    fcs = (
        FCLayer("fc6", 256 * 6 * 6, 4096),
        FCLayer("fc7", 4096, 4096),
        FCLayer("fc8", 4096, 1000),
    )
    pools = (
        PoolLayer("pool1", 96, 55, 55, kernel=3, stride=2),
        PoolLayer("pool2", 256, 27, 27, kernel=3, stride=2),
        PoolLayer("pool5", 256, 13, 13, kernel=3, stride=2),
    )
    return Network("alexnet", convs, fcs, pools)


def vgg16() -> Network:
    """VGG-16 configuration D (Simonyan & Zisserman, 2014): 13 conv layers,
    all 3x3 stride-1 pad-1, feature maps halving in size and doubling in
    depth through 5 pooling stages."""
    spec = [
        # (in_ch, out_ch, size)
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ]
    convs = tuple(
        ConvLayer(f"conv{idx}", cin, cout, size, size, kernel=3, pad=1)
        for idx, (cin, cout, size) in enumerate(spec, start=1)
    )
    fcs = (
        FCLayer("fc14", 512 * 7 * 7, 4096),
        FCLayer("fc15", 4096, 4096),
        FCLayer("fc16", 4096, 1000),
    )
    pools = tuple(
        PoolLayer(f"pool{i}", ch, size, size, kernel=2, stride=2)
        for i, (ch, size) in enumerate([(64, 224), (128, 112), (256, 56), (512, 28), (512, 14)], 1)
    )
    return Network("vgg16", convs, fcs, pools)


def googlenet() -> Network:
    """GoogLeNet / Inception-v1 (Szegedy et al., 2014) convolutional layers.

    The paper's intro names GoogLeNet among the models its flow targets.
    Each inception module contributes its parallel conv branches as
    separate layers (1x1, 3x3-reduce + 3x3, 5x5-reduce + 5x5, pool-proj);
    the 1x1 kernels make the p/q loops trivial (trip count 1), which
    exercises the mapper's degenerate-reduction-loop handling.
    """
    convs: list[ConvLayer] = [
        ConvLayer("conv1", 3, 64, 224, 224, kernel=7, stride=2, pad=3),
        ConvLayer("conv2_reduce", 64, 64, 56, 56, kernel=1),
        ConvLayer("conv2", 64, 192, 56, 56, kernel=3, pad=1),
    ]

    # (name, in_ch, size, 1x1, 3x3red, 3x3, 5x5red, 5x5, pool_proj)
    inception = [
        ("3a", 192, 28, 64, 96, 128, 16, 32, 32),
        ("3b", 256, 28, 128, 128, 192, 32, 96, 64),
        ("4a", 480, 14, 192, 96, 208, 16, 48, 64),
        ("4b", 512, 14, 160, 112, 224, 24, 64, 64),
        ("4c", 512, 14, 128, 128, 256, 24, 64, 64),
        ("4d", 512, 14, 112, 144, 288, 32, 64, 64),
        ("4e", 528, 14, 256, 160, 320, 32, 128, 128),
        ("5a", 832, 7, 256, 160, 320, 32, 128, 128),
        ("5b", 832, 7, 384, 192, 384, 48, 128, 128),
    ]
    for name, cin, size, c1, c3r, c3, c5r, c5, cp in inception:
        convs.extend(
            [
                ConvLayer(f"inc{name}_1x1", cin, c1, size, size, kernel=1),
                ConvLayer(f"inc{name}_3x3r", cin, c3r, size, size, kernel=1),
                ConvLayer(f"inc{name}_3x3", c3r, c3, size, size, kernel=3, pad=1),
                ConvLayer(f"inc{name}_5x5r", cin, c5r, size, size, kernel=1),
                ConvLayer(f"inc{name}_5x5", c5r, c5, size, size, kernel=5, pad=2),
                ConvLayer(f"inc{name}_pool", cin, cp, size, size, kernel=1),
            ]
        )
    fcs = (FCLayer("fc", 1024, 1000),)
    return Network("googlenet", tuple(convs), fcs)


def mobilenet_v1() -> Network:
    """MobileNet v1 (Howard et al., 2017), width multiplier 1.0, 224x224.

    The depthwise-separable workload: a strided dense stem, then 13
    (depthwise 3x3, pointwise 1x1) pairs.  Depthwise layers use
    ``groups == channels`` — their per-group nests have trivial o/i loops,
    which exercises the mapper's degenerate-loop handling the same way
    GoogLeNet's 1x1 layers do for p/q.  Strided depthwise layers cannot be
    folded (folding is defined for ungrouped layers only), so they reach
    the model/DSE as genuinely strided nests.
    """
    convs: list[ConvLayer] = [
        ConvLayer("conv1", 3, 32, 224, 224, kernel=3, stride=2, pad=1),
    ]
    # (dw stride, pw out_channels); input size halves at each stride-2 pair.
    pairs = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ]
    channels, size = 32, 112
    for idx, (stride, out_ch) in enumerate(pairs, start=2):
        convs.append(
            ConvLayer(
                f"conv{idx}_dw",
                channels,
                channels,
                size,
                size,
                kernel=3,
                stride=stride,
                pad=1,
                groups=channels,
            )
        )
        size = size // stride
        convs.append(ConvLayer(f"conv{idx}_pw", channels, out_ch, size, size, kernel=1))
        channels = out_ch
    pools = (PoolLayer("avgpool", 1024, 7, 7, kernel=7, stride=1, mode="avg"),)
    fcs = (FCLayer("fc", 1024, 1000),)
    return Network("mobilenet_v1", tuple(convs), fcs, pools)


def resnet18() -> Network:
    """ResNet-18 (He et al., 2015): 4 stages of two BasicBlocks each.

    The residual workload: each block is two 3x3 convolutions plus an
    elementwise shortcut addition; the first block of stages 2-4 is
    strided and carries a 1x1 stride-2 projection on the shortcut.
    """
    convs: list[ConvLayer] = [
        ConvLayer("conv1", 3, 64, 224, 224, kernel=7, stride=2, pad=3),
    ]
    adds: list[AddLayer] = []
    # (stage channels, input size to the stage); stage 1 follows the
    # stride-2 maxpool, stages 2-4 halve the map in their first block.
    stages = [(64, 56), (128, 56), (256, 28), (512, 14)]
    in_ch = 64
    for stage_idx, (out_ch, in_size) in enumerate(stages, start=1):
        for block_idx in range(2):
            first = block_idx == 0
            stride = 2 if (first and stage_idx > 1) else 1
            prefix = f"layer{stage_idx}_{block_idx}"
            out_size = in_size // stride
            convs.append(
                ConvLayer(
                    f"{prefix}_conv1",
                    in_ch,
                    out_ch,
                    in_size,
                    in_size,
                    kernel=3,
                    stride=stride,
                    pad=1,
                )
            )
            convs.append(
                ConvLayer(
                    f"{prefix}_conv2", out_ch, out_ch, out_size, out_size, kernel=3, pad=1
                )
            )
            shortcut = f"{prefix}_input"
            if first and stage_idx > 1:
                shortcut = f"{prefix}_downsample"
                convs.append(
                    ConvLayer(
                        shortcut, in_ch, out_ch, in_size, in_size, kernel=1, stride=stride
                    )
                )
            adds.append(
                AddLayer(
                    f"{prefix}_add",
                    out_ch,
                    out_size,
                    out_size,
                    operands=(f"{prefix}_conv2", shortcut),
                )
            )
            in_ch, in_size = out_ch, out_size
    pools = (
        PoolLayer("maxpool", 64, 112, 112, kernel=3, stride=2, pad=1),
        PoolLayer("avgpool", 512, 7, 7, kernel=7, stride=1, mode="avg"),
    )
    fcs = (FCLayer("fc", 512, 1000),)
    return Network("resnet18", tuple(convs), fcs, pools, tuple(adds))


def tiny_cnn() -> Network:
    """A small synthetic network for fast tests and the quickstart example.

    Shapes are chosen to exercise every structural feature: a strided
    first layer (folding path), a grouped layer, and unit-stride padded
    layers — at sizes where even the cycle-accurate engine is quick.
    """
    convs = (
        ConvLayer("conv1", 3, 8, 19, 19, kernel=3, stride=2),
        ConvLayer("conv2", 8, 16, 9, 9, kernel=3, pad=1, groups=2),
        ConvLayer("conv3", 16, 16, 9, 9, kernel=3, pad=1),
    )
    fcs = (FCLayer("fc", 16 * 9 * 9, 10),)
    return Network("tiny_cnn", convs, fcs)


__all__ = [
    "Network",
    "alexnet",
    "googlenet",
    "mobilenet_v1",
    "resnet18",
    "tiny_cnn",
    "vgg16",
]
