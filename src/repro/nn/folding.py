"""Strided-layer folding (the paper's AlexNet conv1 treatment).

AlexNet conv1 has only 3 large input feature maps and an 11x11 stride-4
kernel — a shape that matches no systolic configuration chosen for the
deeper layers.  The paper: "we folded layer 1 to have more small feature
maps to make its configuration more consistent with others."

The transform decomposes the strided convolution by input phase.  Writing
kernel coordinates ``p = s*a + u`` (``u in [0, s)``) turns the input index
``s*r + p`` into ``s*(r + a) + u``: each phase ``(u, v)`` of the input
participates in a *unit-stride* convolution with kernel ``K' = ceil(K/s)``.
Stacking the ``s^2`` phases as extra channels yields an equivalent layer

* in_channels:  ``I * s^2``        (3 -> 48 for conv1)
* kernel:       ``ceil(K / s)``    (11 -> 3)
* stride:       1

at the cost of zero-padded weights wherever ``s*a + u >= K`` — extra
*executed* MACs that count against DSP efficiency, which is one of the two
reasons the paper gives for conv1's low measured efficiency.

Functional equivalence of the transform is proven in the tests against the
golden conv on random tensors.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.nn.golden import pad_input
from repro.nn.layers import ConvLayer


def folded_kernel(layer: ConvLayer) -> int:
    """K' = ceil(K / stride)."""
    return math.ceil(layer.kernel / layer.stride)


def fold_layer(layer: ConvLayer) -> ConvLayer:
    """The equivalent unit-stride layer descriptor.

    Args:
        layer: an ungrouped strided conv layer.

    Returns:
        The folded :class:`ConvLayer`: ``I*s^2`` channels, kernel
        ``ceil(K/s)``, stride 1, pad 0, per-phase input size
        ``R + K' - 1``.

    Raises:
        ValueError: for unit-stride (nothing to fold) or grouped layers.
    """
    if layer.stride == 1:
        raise ValueError(f"{layer.name}: stride is already 1, nothing to fold")
    if layer.groups != 1:
        raise ValueError(f"{layer.name}: folding grouped layers is not supported")
    if layer.dilation != 1:
        raise ValueError(f"{layer.name}: folding dilated layers is not supported")
    stride = layer.stride
    k_folded = folded_kernel(layer)
    phase_h = layer.out_height + k_folded - 1
    phase_w = layer.out_width + k_folded - 1
    return replace(
        layer,
        name=f"{layer.name}_folded",
        in_channels=layer.in_channels * stride * stride,
        in_height=phase_h,
        in_width=phase_w,
        kernel=k_folded,
        stride=1,
        pad=0,
    )


def fold_input_tensor(layer: ConvLayer, inputs: np.ndarray) -> np.ndarray:
    """Phase-decompose an input tensor for the folded layer.

    Applies the original layer's zero padding, pads up to the uniform
    phase extent, then interleaves: output channel ``(i*s + u)*s + v``
    holds ``X[i][s*r + u][s*c + v]``.

    Args:
        layer: the *original* (strided) layer.
        inputs: (I, H, W) tensor matching the original layer.

    Returns:
        (I*s^2, R+K'-1, C+K'-1) tensor for the folded layer.
    """
    if inputs.shape != (layer.in_channels, layer.in_height, layer.in_width):
        raise ValueError(
            f"{layer.name}: input shape {inputs.shape} != "
            f"{(layer.in_channels, layer.in_height, layer.in_width)}"
        )
    stride = layer.stride
    k_folded = folded_kernel(layer)
    phase_h = layer.out_height + k_folded - 1
    phase_w = layer.out_width + k_folded - 1

    padded = pad_input(inputs, layer.pad)
    need_h = stride * phase_h
    need_w = stride * phase_w
    grow_h = max(0, need_h - padded.shape[1])
    grow_w = max(0, need_w - padded.shape[2])
    padded = np.pad(padded, ((0, 0), (0, grow_h), (0, grow_w)))

    in_ch = layer.in_channels
    folded = np.zeros((in_ch * stride * stride, phase_h, phase_w), dtype=inputs.dtype)
    for i in range(in_ch):
        for u in range(stride):
            for v in range(stride):
                folded[(i * stride + u) * stride + v] = padded[
                    i, u : u + stride * phase_h : stride, v : v + stride * phase_w : stride
                ]
    return folded


def fold_weight_tensor(layer: ConvLayer, weights: np.ndarray) -> np.ndarray:
    """Rearrange (and zero-pad) weights for the folded layer.

    New weight ``W'[o][(i*s + u)*s + v][a][b] = W[o][i][s*a + u][s*b + v]``
    where kernel positions past the original extent are zero.
    """
    expected = (layer.out_channels, layer.in_channels, layer.kernel, layer.kernel)
    if weights.shape != expected:
        raise ValueError(f"{layer.name}: weight shape {weights.shape} != {expected}")
    stride = layer.stride
    k_folded = folded_kernel(layer)
    out_ch, in_ch, kernel, _ = weights.shape
    folded = np.zeros(
        (out_ch, in_ch * stride * stride, k_folded, k_folded), dtype=weights.dtype
    )
    for i in range(in_ch):
        for u in range(stride):
            for v in range(stride):
                for a in range(k_folded):
                    for b in range(k_folded):
                        p = stride * a + u
                        q = stride * b + v
                        if p < kernel and q < kernel:
                            folded[:, (i * stride + u) * stride + v, a, b] = weights[
                                :, i, p, q
                            ]
    return folded


def folding_overhead(layer: ConvLayer) -> float:
    """Executed-MAC inflation factor of folding (>= 1).

    Folded MACs / original MACs — e.g. AlexNet conv1:
    ``(48 * 9) / (3 * 121) = 432/363 ~ 1.19``: folding trades ~19% wasted
    MACs (on zero weights) for a mappable shape.
    """
    folded = fold_layer(layer)
    return folded.macs / layer.macs


__all__ = [
    "fold_input_tensor",
    "fold_layer",
    "fold_weight_tensor",
    "folded_kernel",
    "folding_overhead",
]
