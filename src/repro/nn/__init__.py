"""CNN workload descriptors and reference implementations.

The evaluation workloads of the paper: AlexNet and VGG-16 convolutional
layers, a NumPy golden-model convolution used to verify every hardware
artifact (simulator, generated code), 8/16-bit fixed-point quantization
(the paper's fixed precision mode), FC-to-conv conversion, and the layer
folding transform the paper applies to AlexNet conv1.
"""

from repro.nn.folding import (
    fold_input_tensor,
    fold_layer,
    fold_weight_tensor,
    folding_overhead,
)
from repro.nn.inference import (
    NetworkParameters,
    classification_agreement,
    forward_fixed,
    forward_float,
)
from repro.nn.golden import (
    conv2d,
    conv2d_layer,
    conv2d_reference_loops,
    random_layer_tensors,
)
from repro.nn.layers import (
    AddLayer,
    ConvLayer,
    FCLayer,
    LayerShape,
    LayerShapeError,
    PoolLayer,
)
from repro.nn.models import (
    Network,
    alexnet,
    googlenet,
    mobilenet_v1,
    resnet18,
    tiny_cnn,
    vgg16,
)
from repro.nn.quantize import (
    QuantizationSpec,
    dequantize,
    quantization_error,
    quantize_tensor,
    quantized_conv2d,
)

__all__ = [
    "AddLayer",
    "ConvLayer",
    "FCLayer",
    "LayerShape",
    "LayerShapeError",
    "Network",
    "NetworkParameters",
    "classification_agreement",
    "forward_fixed",
    "forward_float",
    "PoolLayer",
    "QuantizationSpec",
    "alexnet",
    "googlenet",
    "conv2d_layer",
    "folding_overhead",
    "quantization_error",
    "conv2d",
    "conv2d_reference_loops",
    "dequantize",
    "fold_input_tensor",
    "fold_layer",
    "fold_weight_tensor",
    "mobilenet_v1",
    "quantize_tensor",
    "quantized_conv2d",
    "random_layer_tensors",
    "resnet18",
    "tiny_cnn",
    "vgg16",
]
