"""NumPy golden-model convolution.

Every hardware artifact in this repository (cycle-accurate PE array
engine, generated C testbenches, folded layers, quantized kernels) is
verified against :func:`conv2d`.  A deliberately naive sextuple-loop
implementation (:func:`conv2d_reference_loops`) — a direct transcription
of the paper's Code 1 — is kept as a second, independent oracle and the
two are cross-checked in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import ConvLayer


def pad_input(inputs: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad a (C, H, W) feature map symmetrically in H and W."""
    if pad == 0:
        return inputs
    return np.pad(inputs, ((0, 0), (pad, pad), (pad, pad)))


def conv2d(
    inputs: np.ndarray,
    weights: np.ndarray,
    *,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
    dilation: int = 1,
) -> np.ndarray:
    """Direct 2-D convolution (no flipping — cross-correlation, CNN style).

    Args:
        inputs: (I, H, W) input feature maps.
        weights: (O, I/groups, K, K) kernels.
        stride: stride in both dimensions.
        pad: symmetric zero padding.
        groups: group count.
        dilation: kernel dilation in both dimensions.

    Returns:
        (O, R, C) output feature maps, dtype following NumPy promotion.
    """
    in_ch, _, _ = inputs.shape
    out_ch, in_ch_per_group, kernel_h, kernel_w = weights.shape
    if in_ch % groups or out_ch % groups:
        raise ValueError(f"channels ({in_ch}->{out_ch}) not divisible by groups={groups}")
    if in_ch_per_group != in_ch // groups:
        raise ValueError(
            f"weight shape {weights.shape} inconsistent with {in_ch} inputs / {groups} groups"
        )
    if stride < 1 or dilation < 1:
        raise ValueError("stride and dilation must be >= 1")
    padded = pad_input(inputs, pad)
    _, height, width = padded.shape
    span_h = dilation * (kernel_h - 1) + 1
    span_w = dilation * (kernel_w - 1) + 1
    out_h = (height - span_h) // stride + 1
    out_w = (width - span_w) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("kernel does not fit in padded input")

    windows = np.lib.stride_tricks.sliding_window_view(padded, (span_h, span_w), axis=(1, 2))
    # stride subsamples the window origins; dilation subsamples the taps
    # inside each window: windows becomes (I, R, C, K, K).
    windows = windows[:, ::stride, ::stride, ::dilation, ::dilation]

    out_per_group = out_ch // groups
    in_per_group = in_ch // groups
    result = np.empty((out_ch, out_h, out_w), dtype=np.result_type(inputs, weights))
    for g in range(groups):
        w_g = weights[g * out_per_group : (g + 1) * out_per_group]
        x_g = windows[g * in_per_group : (g + 1) * in_per_group]
        result[g * out_per_group : (g + 1) * out_per_group] = np.einsum(
            "ircpq,oipq->orc", x_g, w_g, optimize=True
        )
    return result


def conv2d_layer(layer: ConvLayer, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Run :func:`conv2d` with a layer descriptor's parameters, checking shapes."""
    if inputs.shape != (layer.in_channels, layer.in_height, layer.in_width):
        raise ValueError(
            f"{layer.name}: input shape {inputs.shape} != "
            f"{(layer.in_channels, layer.in_height, layer.in_width)}"
        )
    expected_w = (
        layer.out_channels,
        layer.in_channels // layer.groups,
        layer.kernel,
        layer.kernel,
    )
    if weights.shape != expected_w:
        raise ValueError(f"{layer.name}: weight shape {weights.shape} != {expected_w}")
    return conv2d(
        inputs,
        weights,
        stride=layer.stride,
        pad=layer.pad,
        groups=layer.groups,
        dilation=layer.dilation,
    )


def conv2d_reference_loops(
    inputs: np.ndarray,
    weights: np.ndarray,
    *,
    stride: int = 1,
    pad: int = 0,
    dilation: int = 1,
) -> np.ndarray:
    """Code 1 transcribed literally (ungrouped).  Slow; tests only.

    Kept independent of :func:`conv2d` so that the two implementations
    cross-validate each other.
    """
    padded = pad_input(inputs, pad)
    out_ch, in_ch, kernel_h, kernel_w = weights.shape
    span_h = dilation * (kernel_h - 1) + 1
    span_w = dilation * (kernel_w - 1) + 1
    out_h = (padded.shape[1] - span_h) // stride + 1
    out_w = (padded.shape[2] - span_w) // stride + 1
    out = np.zeros((out_ch, out_h, out_w), dtype=np.result_type(inputs, weights))
    for o in range(out_ch):  # L1
        for i in range(in_ch):  # L2
            for c in range(out_w):  # L3
                for r in range(out_h):  # L4
                    for p in range(kernel_h):  # L5
                        for q in range(kernel_w):  # L6
                            out[o][r][c] += (
                                weights[o][i][p][q]
                                * padded[i][stride * r + dilation * p][
                                    stride * c + dilation * q
                                ]
                            )
    return out


def random_layer_tensors(
    layer: ConvLayer, *, seed: int = 0, dtype: np.dtype | type = np.float32
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic synthetic (inputs, weights) for a layer.

    The paper's throughput results are value-independent; synthetic data
    drawn from the seeded generator stands in for ImageNet activations.
    """
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal(
        (layer.in_channels, layer.in_height, layer.in_width)
    ).astype(dtype)
    weights = rng.standard_normal(
        (layer.out_channels, layer.in_channels // layer.groups, layer.kernel, layer.kernel)
    ).astype(dtype)
    return inputs, weights


__all__ = [
    "conv2d",
    "conv2d_layer",
    "conv2d_reference_loops",
    "pad_input",
    "random_layer_tensors",
]
