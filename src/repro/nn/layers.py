"""CNN layer descriptors.

These are *shape* descriptors — enough information to derive loop nests,
operation counts, and data volumes.  Actual numerics live in
:mod:`repro.nn.golden` (floating point) and :mod:`repro.nn.quantize`
(fixed point).

Convention: feature maps are ``(channels, height, width)``; weights are
``(out_channels, in_channels_per_group, kH, kW)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.diagnostics import (
    LAYER_KERNEL_TOO_LARGE,
    AnalysisReport,
    DiagnosticError,
    Severity,
)
from repro.ir.loop import LoopNest, conv_loop_nest


class LayerShapeError(DiagnosticError):
    """A layer's geometry admits no output (kernel overruns the input).

    Raised by the layer descriptors with a structured ``SA145``
    diagnostic instead of silently flooring the output extent to a
    nonpositive size.  A :class:`ValueError` subclass (via
    :class:`DiagnosticError`), so callers guarding construction with
    ``except ValueError`` keep working.
    """


def _kernel_fit_error(
    name: str, span: int, padded_h: int, padded_w: int
) -> LayerShapeError:
    report = AnalysisReport()
    report.add(
        LAYER_KERNEL_TOO_LARGE,
        Severity.ERROR,
        f"{name}: kernel does not fit in padded input — effective kernel "
        f"span {span} exceeds the padded input extent {padded_h}x{padded_w}",
        hint="shrink the kernel or dilation, or increase padding/input size",
    )
    return LayerShapeError(report)


@dataclass(frozen=True)
class LayerShape:
    """Spatial shape of a feature map tensor: (channels, height, width)."""

    channels: int
    height: int
    width: int

    @property
    def volume(self) -> int:
        """Number of elements."""
        return self.channels * self.height * self.width

    def __str__(self) -> str:
        return f"{self.channels}x{self.height}x{self.width}"


@dataclass(frozen=True)
class ConvLayer:
    """A 2-D convolutional layer.

    Attributes:
        name: layer label, e.g. ``"conv5"``.
        in_channels: I (total, across groups).
        out_channels: O (total, across groups).
        in_height, in_width: input feature map size *before* padding.
        kernel: K (square kernels, as in all paper workloads).
        stride: convolution stride.
        pad: symmetric zero padding.
        groups: group count (AlexNet conv2/4/5 use 2; depthwise layers
            use ``groups == in_channels``).
        dilation: kernel dilation (spacing between taps; 1 = dense).
    """

    name: str
    in_channels: int
    out_channels: int
    in_height: int
    in_width: int
    kernel: int
    stride: int = 1
    pad: int = 0
    groups: int = 1
    dilation: int = 1

    def __post_init__(self) -> None:
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"{self.name}: channels ({self.in_channels}->{self.out_channels}) "
                f"not divisible by groups={self.groups}"
            )
        if (
            min(
                self.in_channels,
                self.out_channels,
                self.kernel,
                self.stride,
                self.dilation,
            )
            < 1
        ):
            raise ValueError(f"{self.name}: nonpositive layer parameter")
        if self.pad < 0:
            raise ValueError(f"{self.name}: negative padding")
        if self.out_height < 1 or self.out_width < 1:
            raise _kernel_fit_error(
                self.name,
                self.kernel_span,
                self.in_height + 2 * self.pad,
                self.in_width + 2 * self.pad,
            )

    # -------------------------------------------------------------- geometry

    @property
    def kernel_span(self) -> int:
        """Effective kernel extent: ``dilation * (K - 1) + 1``."""
        return self.dilation * (self.kernel - 1) + 1

    @property
    def is_depthwise(self) -> bool:
        """True for depthwise layers (one group per input channel)."""
        return self.groups == self.in_channels and self.groups > 1

    @property
    def out_height(self) -> int:
        """Output rows R."""
        return (self.in_height + 2 * self.pad - self.kernel_span) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Output columns C."""
        return (self.in_width + 2 * self.pad - self.kernel_span) // self.stride + 1

    @property
    def input_shape(self) -> LayerShape:
        """Unpadded input tensor shape."""
        return LayerShape(self.in_channels, self.in_height, self.in_width)

    @property
    def padded_input_shape(self) -> LayerShape:
        """Input tensor shape after zero padding."""
        return LayerShape(
            self.in_channels, self.in_height + 2 * self.pad, self.in_width + 2 * self.pad
        )

    @property
    def output_shape(self) -> LayerShape:
        """Output tensor shape."""
        return LayerShape(self.out_channels, self.out_height, self.out_width)

    @property
    def weight_count(self) -> int:
        """Number of weight values."""
        return (
            self.out_channels * (self.in_channels // self.groups) * self.kernel * self.kernel
        )

    # ------------------------------------------------------------- workload

    @property
    def macs(self) -> int:
        """Multiply-accumulate count."""
        return (
            self.out_channels
            * (self.in_channels // self.groups)
            * self.out_height
            * self.out_width
            * self.kernel
            * self.kernel
        )

    @property
    def flops(self) -> int:
        """Arithmetic operations (2 per MAC), the paper's op-count basis."""
        return 2 * self.macs

    # ------------------------------------------------------------- lowering

    def group_view(self) -> "ConvLayer":
        """The per-group layer (what one accelerator invocation computes).

        Grouped layers run ``groups`` independent convolutions with
        ``I/groups`` inputs and ``O/groups`` outputs; the paper quotes
        AlexNet conv5 as (I, O) = (192, 128) — i.e. the per-group view of
        the (384, 256, groups=2) layer.
        """
        if self.groups == 1:
            return self
        return replace(
            self,
            in_channels=self.in_channels // self.groups,
            out_channels=self.out_channels // self.groups,
            groups=1,
            name=f"{self.name}/g",
        )

    def to_loop_nest(self) -> LoopNest:
        """Lower (the per-group view of) the layer to the Code 1 nest.

        Padding is resolved before the nest (the host pads the input), so
        the nest itself is the paper's pure six-loop form; a unit-stride
        layer yields exactly Code 1 and a strided layer yields the
        ``stride*r + p`` subscripts the folding transform removes.
        """
        per_group = self.group_view()
        return conv_loop_nest(
            per_group.out_channels,
            per_group.in_channels,
            per_group.out_height,
            per_group.out_width,
            per_group.kernel,
            per_group.kernel,
            stride=per_group.stride,
            dilation=per_group.dilation,
            name=self.name,
        )

    def __str__(self) -> str:
        extra = []
        if self.stride != 1:
            extra.append(f"s{self.stride}")
        if self.pad:
            extra.append(f"p{self.pad}")
        if self.groups != 1:
            extra.append(f"g{self.groups}")
        if self.dilation != 1:
            extra.append(f"d{self.dilation}")
        suffix = ",".join(extra)
        return (
            f"{self.name}: {self.input_shape} -> {self.output_shape} "
            f"k{self.kernel}{(' ' + suffix) if suffix else ''}"
        )


@dataclass(frozen=True)
class PoolLayer:
    """A max/avg pooling layer (shape bookkeeping only — pooling is not
    offloaded to the systolic array in the paper)."""

    name: str
    channels: int
    in_height: int
    in_width: int
    kernel: int
    stride: int
    pad: int = 0
    mode: str = "max"

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise ValueError(f"{self.name}: unknown pooling mode {self.mode!r}")
        if min(self.channels, self.kernel, self.stride) < 1:
            raise ValueError(f"{self.name}: nonpositive layer parameter")
        if self.pad < 0:
            raise ValueError(f"{self.name}: negative padding")
        if self.out_height < 1 or self.out_width < 1:
            raise _kernel_fit_error(
                self.name,
                self.kernel,
                self.in_height + 2 * self.pad,
                self.in_width + 2 * self.pad,
            )

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.pad - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.pad - self.kernel) // self.stride + 1

    @property
    def output_shape(self) -> LayerShape:
        return LayerShape(self.channels, self.out_height, self.out_width)


@dataclass(frozen=True)
class AddLayer:
    """An elementwise residual addition (shape bookkeeping only).

    ResNet-style shortcut joins: both operands must share one
    :class:`LayerShape`; like pooling, the addition itself is not
    offloaded to the systolic array.

    Attributes:
        name: layer label, e.g. ``"layer1_0_add"``.
        channels, height, width: the (shared) operand/output shape.
        operands: labels of the two tensors being joined (documentation
            of the graph topology; empty when irrelevant).
    """

    name: str
    channels: int
    height: int
    width: int
    operands: tuple[str, str] = ("", "")

    def __post_init__(self) -> None:
        if min(self.channels, self.height, self.width) < 1:
            raise ValueError(f"{self.name}: nonpositive layer parameter")

    @property
    def output_shape(self) -> LayerShape:
        return LayerShape(self.channels, self.height, self.width)

    @property
    def flops(self) -> int:
        """One add per element."""
        return self.output_shape.volume


@dataclass(frozen=True)
class FCLayer:
    """A fully connected layer.

    The paper converts FC layers to convolutions (citing Caffeine) and
    focuses the systolic synthesis on conv layers; :meth:`to_conv`
    implements that conversion so FC layers can flow through the same
    pipeline.
    """

    name: str
    in_features: int
    out_features: int

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features

    @property
    def flops(self) -> int:
        return 2 * self.macs

    def to_conv(self, spatial: tuple[int, int, int] | None = None) -> ConvLayer:
        """Convert to an equivalent 1x1-output convolution.

        Args:
            spatial: optional ``(channels, height, width)`` interpretation
                of the input features (e.g. AlexNet fc6 sees 256x6x6); the
                kernel then covers the full spatial extent.  Without it the
                input is treated as ``in_features`` channels of 1x1 maps.

        Returns:
            A :class:`ConvLayer` computing the same matrix-vector product.
        """
        if spatial is None:
            channels, height, width = self.in_features, 1, 1
        else:
            channels, height, width = spatial
            if channels * height * width != self.in_features:
                raise ValueError(
                    f"{self.name}: spatial view {spatial} does not match "
                    f"in_features={self.in_features}"
                )
        if height != width:
            raise ValueError(f"{self.name}: only square spatial views supported")
        return ConvLayer(
            name=f"{self.name}_as_conv",
            in_channels=channels,
            out_channels=self.out_features,
            in_height=height,
            in_width=width,
            kernel=height,
        )


__all__ = [
    "AddLayer",
    "ConvLayer",
    "FCLayer",
    "LayerShape",
    "LayerShapeError",
    "PoolLayer",
]
