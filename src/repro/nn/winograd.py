"""Winograd fast convolution F(2x2, 3x3) — the paper's future work.

"existing work [17, 28, 29] has demonstrated that applying Winograd [27]
and fast Fourier transformations to convolutional computation can
significantly improve resource efficiency ... the throughput of our
designs can be potentially improved by 2x if applied Winograd
transformation."

This module implements the minimal-filtering algorithm F(2x2, 3x3) that
[17] (Aydonat et al.) uses: each 2x2 output tile of a 3x3/stride-1
convolution is computed with 16 multiplications in the transform domain
instead of 36 — a 2.25x reduction in multiplier work, which on a
DSP-bound systolic design translates (before transform overhead) into the
paper's "potentially 2x" throughput.

The numerics are validated against the direct convolution in the tests;
:func:`winograd_speedup_estimate` quantifies the projected gain per layer
and network (the extension bench reports it for VGG-16).
"""

from __future__ import annotations

import numpy as np

from repro.nn.golden import pad_input
from repro.nn.layers import ConvLayer
from repro.nn.models import Network

# F(2x2, 3x3) transform matrices (Lavin & Gray / Winograd).
B_T = np.array(
    [
        [1, 0, -1, 0],
        [0, 1, 1, 0],
        [0, -1, 1, 0],
        [0, 1, 0, -1],
    ],
    dtype=np.float64,
)
G = np.array(
    [
        [1, 0, 0],
        [0.5, 0.5, 0.5],
        [0.5, -0.5, 0.5],
        [0, 0, 1],
    ],
    dtype=np.float64,
)
A_T = np.array(
    [
        [1, 1, 1, 0],
        [0, 1, -1, -1],
    ],
    dtype=np.float64,
)

TILE_IN = 4  # input tile edge
TILE_OUT = 2  # output tile edge

MULTS_DIRECT_PER_TILE = TILE_OUT * TILE_OUT * 9  # 36
MULTS_WINOGRAD_PER_TILE = TILE_IN * TILE_IN  # 16


def transform_weights(weights: np.ndarray) -> np.ndarray:
    """U = G g G^T for every (o, i) filter: (O, I, 3, 3) -> (O, I, 4, 4)."""
    if weights.shape[-2:] != (3, 3):
        raise ValueError(f"F(2x2,3x3) needs 3x3 kernels, got {weights.shape}")
    return np.einsum("ab,oibc,dc->oiad", G, weights, G, optimize=True)


def transform_input_tiles(padded: np.ndarray, tiles_h: int, tiles_w: int) -> np.ndarray:
    """V = B^T d B for every 4x4 input tile: -> (I, tiles_h, tiles_w, 4, 4)."""
    in_ch = padded.shape[0]
    tiles = np.empty((in_ch, tiles_h, tiles_w, TILE_IN, TILE_IN), dtype=padded.dtype)
    for th in range(tiles_h):
        for tw in range(tiles_w):
            patch = padded[:, 2 * th : 2 * th + 4, 2 * tw : 2 * tw + 4]
            tiles[:, th, tw] = patch
    return np.einsum("ab,ihwbc,dc->ihwad", B_T, tiles, B_T, optimize=True)


def winograd_conv2d(
    inputs: np.ndarray, weights: np.ndarray, *, pad: int = 0
) -> np.ndarray:
    """3x3 stride-1 convolution via F(2x2, 3x3).

    Args:
        inputs: (I, H, W) feature maps.
        weights: (O, I, 3, 3) kernels.
        pad: symmetric zero padding.

    Returns:
        (O, R, C) output, identical (to float rounding) to the direct
        convolution.
    """
    padded = pad_input(inputs, pad)
    _, height, width = padded.shape
    out_h = height - 2
    out_w = width - 2
    if out_h < 1 or out_w < 1:
        raise ValueError("input too small for a 3x3 kernel")
    tiles_h = (out_h + TILE_OUT - 1) // TILE_OUT
    tiles_w = (out_w + TILE_OUT - 1) // TILE_OUT
    # Pad so tiles cover the output exactly.
    need_h = 2 * tiles_h + 2
    need_w = 2 * tiles_w + 2
    padded = np.pad(padded, ((0, 0), (0, need_h - height), (0, need_w - width)))

    transformed_w = transform_weights(weights)  # (O, I, 4, 4)
    transformed_x = transform_input_tiles(padded, tiles_h, tiles_w)  # (I,th,tw,4,4)
    # Elementwise products accumulated over input channels — the 16 mults.
    m = np.einsum("oiab,ihwab->ohwab", transformed_w, transformed_x, optimize=True)
    # Inverse transform: (O, th, tw, 2, 2).
    y = np.einsum("ab,ohwbc,dc->ohwad", A_T, m, A_T, optimize=True)
    # Stitch tiles and crop to the true output size.
    out_ch = weights.shape[0]
    full = y.transpose(0, 1, 3, 2, 4).reshape(out_ch, 2 * tiles_h, 2 * tiles_w)
    return full[:, :out_h, :out_w]


def layer_supports_winograd(layer: ConvLayer) -> bool:
    """F(2x2, 3x3) applies to 3x3, stride-1 layers."""
    return layer.kernel == 3 and layer.stride == 1


def winograd_speedup_estimate(layer: ConvLayer) -> float:
    """Multiplier-work reduction for one layer (1.0 if not applicable).

    36 direct multiplications per 2x2 output tile become 16 — a 2.25x
    reduction; ragged output edges dilute it slightly.
    """
    if not layer_supports_winograd(layer):
        return 1.0
    tiles_h = (layer.out_height + 1) // 2
    tiles_w = (layer.out_width + 1) // 2
    direct = layer.out_height * layer.out_width * 9
    winograd = tiles_h * tiles_w * MULTS_WINOGRAD_PER_TILE
    return direct / winograd


def winograd_transform_nest(layer: ConvLayer, *, name: str | None = None):
    """The transform-domain loop nest of a Winograd layer.

    After the input/weight transforms, F(2x2,3x3) reduces the layer to 16
    independent matrix multiplies — one per transform-domain position
    ``e`` in [0, 16): ``M[e][o][t] += U[e][o][i] * V[e][i][t]`` with ``t``
    ranging over the output tiles.  This nest is what a Winograd systolic
    accelerator (like [17]) actually maps to the PE array, so it can flow
    through this repository's feasibility analysis, DSE and simulator
    unchanged — which is how the extension bench evaluates the projected
    gain architecturally instead of just arithmetically.

    The position loop ``e`` appears in every access (it carries no reuse)
    and therefore can never be an inner loop — the generic feasibility
    condition discovers that on its own.

    Args:
        layer: a 3x3 stride-1 conv layer.
        name: nest label.

    Returns:
        The 4-deep :class:`~repro.ir.loop.LoopNest`.
    """
    from repro.ir.access import AffineExpr, ArrayAccess
    from repro.ir.loop import Loop, LoopNest

    if not layer_supports_winograd(layer):
        raise ValueError(f"{layer.name}: F(2x2,3x3) needs a 3x3 stride-1 layer")
    per_group = layer.group_view()
    tiles = ((per_group.out_height + 1) // 2) * ((per_group.out_width + 1) // 2)
    loops = (
        Loop("e", TILE_IN * TILE_IN),
        Loop("o", per_group.out_channels),
        Loop("t", tiles),
        Loop("i", per_group.in_channels),
    )
    accesses = (
        ArrayAccess("M", (AffineExpr.var("e"), AffineExpr.var("o"), AffineExpr.var("t")), is_write=True),
        ArrayAccess("U", (AffineExpr.var("e"), AffineExpr.var("o"), AffineExpr.var("i"))),
        ArrayAccess("V", (AffineExpr.var("e"), AffineExpr.var("i"), AffineExpr.var("t"))),
    )
    return LoopNest(loops, accesses, name=name or f"{layer.name}_winograd")


def network_winograd_speedup(network: Network) -> float:
    """Projected network-level throughput gain with Winograd PEs.

    Work-weighted harmonic combination: each layer's MAC work shrinks by
    its own factor; non-3x3 layers run unchanged.  This is the
    "potentially improved by 2x" projection of the paper's future-work
    section, computed instead of asserted.
    """
    total = 0.0
    reduced = 0.0
    for layer in network.conv_layers:
        total += layer.macs
        reduced += layer.macs / winograd_speedup_estimate(layer)
    return total / reduced


__all__ = [
    "MULTS_DIRECT_PER_TILE",
    "MULTS_WINOGRAD_PER_TILE",
    "layer_supports_winograd",
    "network_winograd_speedup",
    "transform_input_tiles",
    "transform_weights",
    "winograd_conv2d",
    "winograd_speedup_estimate",
    "winograd_transform_nest",
]
