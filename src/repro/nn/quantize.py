"""Fixed-point quantization (the paper's 8/16-bit mode).

The paper evaluates "8-bit data type for weights and 16-bit for pixels, by
which the top-1 and top-5 ImageNet classification accuracy degradation
could be less than 2%".  This module implements symmetric linear
quantization to those widths, an integer-arithmetic convolution (what the
fixed-point accelerator computes), and error metrics so the accuracy-
degradation story can be sanity-checked on synthetic data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.golden import conv2d


@dataclass(frozen=True)
class QuantizationSpec:
    """Symmetric linear quantization to a signed integer width.

    value ~= scale * q,  q in [-(2^(bits-1) - 1), 2^(bits-1) - 1]
    """

    bits: int
    scale: float

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError(f"unsupported bit width {self.bits}")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def qmax(self) -> int:
        """Largest representable magnitude."""
        return (1 << (self.bits - 1)) - 1

    @property
    def qmin(self) -> int:
        return -self.qmax

    @staticmethod
    def calibrate(tensor: np.ndarray, bits: int) -> "QuantizationSpec":
        """Pick the scale covering the tensor's max magnitude."""
        peak = float(np.max(np.abs(tensor)))
        if peak == 0.0:
            peak = 1.0
        qmax = (1 << (bits - 1)) - 1
        return QuantizationSpec(bits, peak / qmax)

    def storage_dtype(self) -> np.dtype:
        """Smallest NumPy integer dtype that holds the quantized values."""
        if self.bits <= 8:
            return np.dtype(np.int8)
        if self.bits <= 16:
            return np.dtype(np.int16)
        return np.dtype(np.int32)


def quantize_tensor(tensor: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantize to integers, round-to-nearest, saturating."""
    q = np.round(tensor / spec.scale)
    q = np.clip(q, spec.qmin, spec.qmax)
    return q.astype(spec.storage_dtype())

def dequantize(q: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Map quantized integers back to real values."""
    return q.astype(np.float64) * spec.scale


def quantized_conv2d(
    inputs: np.ndarray,
    weights: np.ndarray,
    *,
    input_spec: QuantizationSpec,
    weight_spec: QuantizationSpec,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> tuple[np.ndarray, float]:
    """Integer convolution as the fixed-point accelerator computes it.

    The MAC datapath accumulates int products in a wide register
    (int64 here, 32+ bits in hardware); the combined output scale is
    ``input_scale * weight_scale``.

    Returns:
        (integer accumulator tensor, output scale).
    """
    q_in = quantize_tensor(inputs, input_spec).astype(np.int64)
    q_w = quantize_tensor(weights, weight_spec).astype(np.int64)
    acc = conv2d(q_in, q_w, stride=stride, pad=pad, groups=groups)
    return acc, input_spec.scale * weight_spec.scale


def quantization_error(
    inputs: np.ndarray,
    weights: np.ndarray,
    *,
    weight_bits: int = 8,
    input_bits: int = 16,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> float:
    """Relative L2 error of the fixed-point conv vs the float conv.

    Used by tests and the fixed-point example to confirm the 8/16-bit
    configuration stays within small single-digit-percent error — the
    shape of the paper's "<2% accuracy loss" claim at tensor level.
    """
    reference = conv2d(
        inputs.astype(np.float64), weights.astype(np.float64),
        stride=stride, pad=pad, groups=groups,
    )
    acc, scale = quantized_conv2d(
        inputs,
        weights,
        input_spec=QuantizationSpec.calibrate(inputs, input_bits),
        weight_spec=QuantizationSpec.calibrate(weights, weight_bits),
        stride=stride,
        pad=pad,
        groups=groups,
    )
    approx = acc.astype(np.float64) * scale
    denom = float(np.linalg.norm(reference))
    if denom == 0.0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(approx - reference) / denom)


__all__ = [
    "QuantizationSpec",
    "dequantize",
    "quantization_error",
    "quantize_tensor",
    "quantized_conv2d",
]
