"""End-to-end network inference, float and fixed point.

The paper's fixed mode rests on the claim that 8-bit weights / 16-bit
pixels cost "less than 2%" classification accuracy.  With no ImageNet
here, this module makes the claim testable at the network level on
synthetic models: a full forward pass (conv + ReLU + pool + FC) in
float64, and the same pass through the quantized integer datapath with
per-layer activation requantization — the arithmetic the fixed-point
accelerator performs.  The tests measure top-1 agreement between the two
paths over batches of random inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.golden import conv2d_layer
from repro.nn.layers import PoolLayer
from repro.nn.models import Network
from repro.nn.quantize import QuantizationSpec, quantize_tensor


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def max_pool(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Max pooling on a (C, H, W) tensor."""
    channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = np.empty((channels, out_h, out_w), dtype=x.dtype)
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, i * stride : i * stride + kernel, j * stride : j * stride + kernel]
            out[:, i, j] = window.max(axis=(1, 2))
    return out


@dataclass
class NetworkParameters:
    """Random (synthetic) parameters for a network's conv + FC layers."""

    conv_weights: dict[str, np.ndarray]
    fc_weights: dict[str, np.ndarray]

    @staticmethod
    def random(network: Network, *, seed: int = 0) -> "NetworkParameters":
        rng = np.random.default_rng(seed)
        conv = {}
        for layer in network.conv_layers:
            fan_in = (layer.in_channels // layer.groups) * layer.kernel ** 2
            conv[layer.name] = rng.standard_normal(
                (layer.out_channels, layer.in_channels // layer.groups,
                 layer.kernel, layer.kernel)
            ) / np.sqrt(fan_in)
        fc = {}
        for layer in network.fc_layers:
            fc[layer.name] = rng.standard_normal(
                (layer.out_features, layer.in_features)
            ) / np.sqrt(layer.in_features)
        return NetworkParameters(conv, fc)


def _maybe_pool(
    x: np.ndarray,
    network: Network,
    conv_index: int,
    remaining_pools: list[PoolLayer],
) -> np.ndarray:
    """Insert the next pool layer where the shapes demand it.

    A pool runs after conv layer ``i`` when the next conv layer's expected
    input (or, after the last conv, the first FC layer's feature count)
    does not match the current activation — the shape-driven placement
    that works for every network in the zoo.
    """
    if not remaining_pools:
        return x
    pool = remaining_pools[0]
    if (x.shape[0], x.shape[1]) != (pool.channels, pool.in_height):
        return x
    convs = network.conv_layers
    if conv_index + 1 < len(convs):
        nxt = convs[conv_index + 1]
        fits_without = (x.shape[0], x.shape[1]) == (nxt.in_channels, nxt.in_height)
        if fits_without:
            return x
    elif network.fc_layers:
        if x.size == network.fc_layers[0].in_features:
            return x
    remaining_pools.pop(0)
    return max_pool(x, pool.kernel, pool.stride)


def forward_float(
    network: Network, params: NetworkParameters, image: np.ndarray
) -> np.ndarray:
    """Float forward pass; returns the logits vector."""
    remaining_pools = list(network.pool_layers)
    x = image.astype(np.float64)
    for index, layer in enumerate(network.conv_layers):
        x = relu(conv2d_layer(layer, x, params.conv_weights[layer.name]))
        x = _maybe_pool(x, network, index, remaining_pools)
    features = x.reshape(-1)
    for index, fc in enumerate(network.fc_layers):
        weights = params.fc_weights[fc.name]
        if features.shape[0] != weights.shape[1]:
            raise ValueError(
                f"{fc.name}: feature vector {features.shape[0]} != {weights.shape[1]}"
            )
        features = weights @ features
        if index < len(network.fc_layers) - 1:
            features = relu(features)
    return features


def forward_fixed(
    network: Network,
    params: NetworkParameters,
    image: np.ndarray,
    *,
    weight_bits: int = 8,
    activation_bits: int = 16,
) -> np.ndarray:
    """Fixed-point forward pass (the accelerator's arithmetic).

    Weights are quantized once per layer; activations are requantized at
    every layer boundary (the accelerator writes 16-bit pixels back to
    DRAM).  All MACs are integer; only the scale bookkeeping is float.

    Returns:
        Dequantized logits, comparable to :func:`forward_float`.
    """
    remaining_pools = list(network.pool_layers)
    x = image.astype(np.float64)
    for index, layer in enumerate(network.conv_layers):
        w = params.conv_weights[layer.name]
        w_spec = QuantizationSpec.calibrate(w, weight_bits)
        x_spec = QuantizationSpec.calibrate(x, activation_bits)
        q_x = quantize_tensor(x, x_spec).astype(np.int64)
        q_w = quantize_tensor(w, w_spec).astype(np.int64)
        acc = conv2d_layer(layer, q_x, q_w)  # integer accumulation
        x = relu(acc.astype(np.float64) * (w_spec.scale * x_spec.scale))
        x = _maybe_pool(x, network, index, remaining_pools)
    features = x.reshape(-1)
    for index, fc in enumerate(network.fc_layers):
        w = params.fc_weights[fc.name]
        w_spec = QuantizationSpec.calibrate(w, weight_bits)
        f_spec = QuantizationSpec.calibrate(features, activation_bits)
        q_f = quantize_tensor(features, f_spec).astype(np.int64)
        q_w = quantize_tensor(w, w_spec).astype(np.int64)
        features = (q_w @ q_f).astype(np.float64) * (w_spec.scale * f_spec.scale)
        if index < len(network.fc_layers) - 1:
            features = relu(features)
    return features


def classification_agreement(
    network: Network,
    *,
    samples: int = 20,
    seed: int = 0,
    weight_bits: int = 8,
    activation_bits: int = 16,
) -> float:
    """Top-1 agreement between the float and fixed paths on random inputs.

    The network-level analogue of the paper's "<2% accuracy degradation"
    claim: agreement close to 1.0 means quantization rarely flips the
    argmax.
    """
    params = NetworkParameters.random(network, seed=seed)
    rng = np.random.default_rng(seed + 1)
    first = network.conv_layers[0]
    agree = 0
    for _ in range(samples):
        image = rng.standard_normal((first.in_channels, first.in_height, first.in_width))
        a = forward_float(network, params, image)
        b = forward_fixed(
            network, params, image,
            weight_bits=weight_bits, activation_bits=activation_bits,
        )
        agree += int(np.argmax(a) == np.argmax(b))
    return agree / samples


__all__ = [
    "NetworkParameters",
    "classification_agreement",
    "forward_fixed",
    "forward_float",
    "max_pool",
    "relu",
]
