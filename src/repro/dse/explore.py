"""The two-phase design-space exploration driver (paper Fig. 5).

Phase 1 (architectural, analytical): enumerate Problem-1 configurations
under the Eq. 12 DSP-utilization bound; for each, solve Problem 2 with the
pruned tiling search; keep the top-N designs by estimated throughput at
the assumed clock.

A correctness-preserving speedup on top of the paper's pruning: every
configuration's throughput is bounded above by its shape-only computation
throughput (PT with ideal tiling), which costs microseconds.  Walking
configurations in descending upper-bound order lets the search stop
tuning configurations that provably cannot enter the current top-N —
an admissible branch-and-bound, so the returned top-N is identical to
tuning everything (asserted in tests).

Phase 2 (implementation): realize each finalist's clock through the
frequency surrogate (the P&R stand-in), re-estimate throughput at the
realized clock, and pick the winner — reproducing Fig. 7(b)'s structure
where same-estimate designs separate by realized frequency.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.ir.loop import LoopNest
from repro.model.design_point import DesignEvaluation, DesignPoint
from repro.model.platform import Platform
from repro.dse.space import DEFAULT_VECTOR_CHOICES, SystolicConfig, enumerate_configs

if TYPE_CHECKING:
    from repro.dse.multi_layer import MultiLayerResult

ProgressFn = Callable[[int, int], None]
"""Optional progress hook: called with (configurations consumed, total)."""

ENGINES = ("vector", "object")
"""Evaluation engines: columnar NumPy batches vs the scalar object walk."""


@dataclass(frozen=True)
class DseConfig:
    """Knobs of the exploration.

    Attributes:
        min_dsp_utilization: Eq. 12's c_s (paper example: 0.8).
        vector_choices: SIMD widths for Problem 1.
        top_n: finalists carried into phase 2 (paper uses 14 in Fig. 7b).
        include_cover: extend the power-of-two tiling candidates with the
            cover bound (see tuner docs); False = paper-faithful pruning.
        upper_bound_pruning: enable the admissible branch-and-bound.
        engine: evaluation engine for the hot loops — ``"vector"``
            (default) scores candidate batches as NumPy arrays through
            :mod:`repro.dse.vector`; ``"object"`` walks one Python object
            at a time.  The two are bit-identical in winners, tie-breaks
            and visit/prune counts (asserted by tests), so the object
            path is kept as the differential oracle.
        strict: re-verify every finalist with the independent
            design-point validator (:mod:`repro.analysis.design_check`)
            and raise :class:`repro.analysis.DiagnosticError` if any
            violates the paper's constraints.  Off by default: the
            validator recomputes what the search already enforced, so
            this is a self-audit, not a correctness requirement.
    """

    min_dsp_utilization: float = 0.8
    vector_choices: tuple[int, ...] = DEFAULT_VECTOR_CHOICES
    top_n: int = 14
    include_cover: bool = True
    upper_bound_pruning: bool = True
    engine: str = "vector"
    strict: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_dsp_utilization <= 1.0:
            raise ValueError("c_s must be in [0, 1]")
        if self.top_n < 1:
            raise ValueError("top_n must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown DSE engine {self.engine!r}; choices: {list(ENGINES)}"
            )


@dataclass(frozen=True)
class Phase1Result:
    """Output of the analytical phase.

    Attributes:
        finalists: top designs, throughput-descending, fully evaluated at
            the assumed clock.
        configs_enumerated: Problem-1 points seen.
        configs_tuned: configurations whose tiling space was searched
            (smaller when upper-bound pruning fires).
        tilings_evaluated: total Problem-2 candidates walked.
        elapsed_seconds: wall-clock time of the phase (bookkeeping;
            excluded from equality so runs at different ``jobs`` counts
            or cache replays compare equal when the search agrees).
    """

    finalists: tuple[DesignEvaluation, ...]
    configs_enumerated: int
    configs_tuned: int
    tilings_evaluated: int
    elapsed_seconds: float = field(compare=False)


@dataclass(frozen=True)
class Phase2Result:
    """Output of the implementation phase.

    Attributes:
        best: the winning design evaluated at its realized clock.
        finalists: all finalists re-evaluated at realized clocks,
            descending by realized throughput.
        estimated_gops: finalist throughputs at the assumed clock (same
            order as ``finalists``), for the Fig. 7(b) comparison.
    """

    best: DesignEvaluation
    finalists: tuple[DesignEvaluation, ...]
    estimated_gops: tuple[float, ...]


def _shape_only_efficiency(nest: LoopNest, config: SystolicConfig) -> float:
    """Eff upper bound: quantization from the inner bounds only."""
    inner = {
        config.mapping.row: config.shape.rows,
        config.mapping.col: config.shape.cols,
        config.mapping.vector: config.shape.vector,
    }
    eff = 1.0
    for it, t in inner.items():
        n = nest.bounds[it]
        eff *= n / (math.ceil(n / t) * t)
    return eff


def throughput_upper_bound_gops(
    nest: LoopNest, config: SystolicConfig, platform: Platform
) -> float:
    """Cheap admissible bound: PT at ideal tiling (Eq. 8 with shape-only
    efficiency).  True throughput is min(PT, MT) <= PT, and Eff(s, t) <=
    shape-only Eff for any s."""
    eff = _shape_only_efficiency(nest, config)
    return eff * 2.0 * config.shape.lanes * platform.assumed_clock_mhz * 1e6 / 1e9


def phase1(
    nest: LoopNest,
    platform: Platform,
    config: DseConfig = DseConfig(),
    *,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    on_retry: Callable[[int, str], None] | None = None,
    on_degrade: Callable[[str], None] | None = None,
) -> Phase1Result:
    """Run the analytical filtering phase on one layer.

    Args:
        nest: the layer's loop nest.
        platform: evaluation platform.
        config: DSE knobs.
        jobs: worker processes for the tuning fan-out; 1 (default) runs
            serially in-process, <= 0 means all cores.  Any value yields
            bit-identical finalists and statistics: the parallel path
            evaluates ranked batches concurrently and then *replays* the
            serial branch-and-bound over the batch results in rank order
            (see :mod:`repro.dse.parallel`).  Crashed workers are
            resubmitted; past a threshold the affected candidates are
            tuned serially in the parent — still bit-identical, because
            each task is a pure function of its candidate.
        progress: optional hook called with (configs consumed, total).
        on_retry: optional hook per crashed-worker resubmission.
        on_degrade: optional hook when work falls back to serial.
    """
    start = time.perf_counter()
    candidates = list(
        enumerate_configs(
            nest,
            platform,
            min_dsp_utilization=config.min_dsp_utilization,
            vector_choices=config.vector_choices,
        )
    )
    if config.engine == "vector" and candidates:
        from repro.dse.vector import CandidateTable, legality_mask, upper_bounds

        # Columnar scoring: bounds for the whole subspace in one shot,
        # plus the batched Eq. 12 mask standing in for per-candidate
        # validation.  The sort itself stays the same stable Python sort,
        # so the branch-and-bound consumes candidates in the identical
        # order as the object path (the bound values are bit-identical).
        table = CandidateTable.from_configs(nest, candidates)
        mask = legality_mask(
            table, platform, min_dsp_utilization=config.min_dsp_utilization
        )
        if not bool(mask.all()):
            bad = candidates[int(mask.argmin())]
            raise ValueError(f"candidate {bad} violates the Eq. 12 DSP window")
        bounds_by_config = upper_bounds(table, platform).tolist()
    else:
        bounds_by_config = [
            throughput_upper_bound_gops(nest, c, platform) for c in candidates
        ]
    ranked = sorted(
        zip(bounds_by_config, candidates),
        key=lambda pair: pair[0],
        reverse=True,
    )

    finalists: list[tuple[float, DesignEvaluation]] = []
    tuned = 0
    tilings = 0

    def should_stop(upper_bound: float) -> bool:
        return (
            config.upper_bound_pruning
            and len(finalists) >= config.top_n
            and upper_bound <= finalists[-1][0]
        )  # nothing below this bound can enter the top-N

    def merge(outcome: tuple[DesignEvaluation, int] | None) -> None:
        nonlocal tuned, tilings
        if outcome is None:
            return  # no feasible tiling (BRAM) for this config
        evaluation, candidates_evaluated = outcome
        tuned += 1
        tilings += candidates_evaluated
        finalists.append((evaluation.throughput_gops, evaluation))
        finalists.sort(key=lambda pair: pair[0], reverse=True)
        del finalists[config.top_n :]

    if jobs != 1 and len(ranked) > 1:
        from repro.dse.parallel import (
            BATCH_FACTOR,
            batched,
            phase1_map,
            phase1_pool,
            resolve_jobs,
            tune_candidate,
        )

        def serial_task(
            candidate: SystolicConfig,
        ) -> tuple[DesignEvaluation, int] | None:
            return tune_candidate(
                nest, platform, config.include_cover, candidate, engine=config.engine
            )

        workers = resolve_jobs(jobs)
        consumed = 0
        with phase1_pool(
            nest, platform, config.include_cover, workers, engine=config.engine
        ) as pool:
            stopped = False
            for batch in batched(ranked, workers * BATCH_FACTOR):
                if stopped:
                    break
                outcomes = phase1_map(
                    pool,
                    (c for _, c in batch),
                    workers,
                    serial_fn=serial_task,
                    on_retry=on_retry,
                    on_degrade=on_degrade,
                )
                for (upper_bound, _candidate), outcome in zip(batch, outcomes):
                    if should_stop(upper_bound):
                        stopped = True
                        break
                    consumed += 1
                    merge(outcome)
                if progress:
                    progress(consumed, len(ranked))
    else:
        from repro.dse.vector import tuner_for

        tuner_cls = tuner_for(config.engine)
        for index, (upper_bound, candidate) in enumerate(ranked):
            if should_stop(upper_bound):
                break
            tuner = tuner_cls(
                nest,
                candidate.mapping,
                candidate.shape,
                platform,
                include_cover=config.include_cover,
            )
            try:
                tuned_design = tuner.tune()
            except RuntimeError:
                outcome = None
            else:
                outcome = (
                    tuned_design.design.evaluate(platform),
                    tuned_design.candidates_evaluated,
                )
            merge(outcome)
            if progress and (index + 1) % 32 == 0:
                progress(index + 1, len(ranked))

    result = Phase1Result(
        finalists=tuple(ev for _, ev in finalists),
        configs_enumerated=len(candidates),
        configs_tuned=tuned,
        tilings_evaluated=tilings,
        elapsed_seconds=time.perf_counter() - start,
    )
    if config.strict:
        _audit_designs(
            (ev.design for ev in result.finalists), platform, "phase-1 finalist"
        )
    return result


def _audit_designs(
    designs: Iterable[DesignPoint], platform: Platform, context: str
) -> None:
    """Strict-mode self-audit: raise if any design violates a constraint."""
    from repro.analysis.design_check import verify_design_points

    verify_design_points(designs, platform, context=context).raise_if_errors()


def phase2(
    phase1_result: Phase1Result, platform: Platform, *, strict: bool = False
) -> Phase2Result:
    """Realize clocks for the finalists and pick the on-board winner.

    With ``strict`` the winner is re-verified by the independent
    design-point validator before being returned.
    """
    if not phase1_result.finalists:
        raise ValueError("phase 1 produced no feasible designs")
    realized: list[tuple[DesignEvaluation, float]] = []
    for evaluation in phase1_result.finalists:
        design: DesignPoint = evaluation.design
        freq = platform.frequency_model.realize(
            rows=design.shape.rows,
            cols=design.shape.cols,
            vector=design.shape.vector,
            dsp_utilization=evaluation.dsp_utilization,
            bram_utilization=evaluation.bram_utilization,
            signature=design.signature,
        )
        realized.append((design.evaluate(platform, frequency_mhz=freq), evaluation.throughput_gops))
    realized.sort(key=lambda pair: pair[0].throughput_gops, reverse=True)
    if strict:
        _audit_designs([realized[0][0].design], platform, "phase-2 winner")
    return Phase2Result(
        best=realized[0][0],
        finalists=tuple(ev for ev, _ in realized),
        estimated_gops=tuple(est for _, est in realized),
    )


def explore(
    nest: LoopNest,
    platform: Platform,
    config: DseConfig = DseConfig(),
    *,
    jobs: int = 1,
) -> Phase2Result:
    """Full two-phase DSE for a single layer."""
    return phase2(
        phase1(nest, platform, config, jobs=jobs), platform, strict=config.strict
    )


def explore_network(
    nests: tuple[LoopNest, ...],
    platform: Platform,
    config: DseConfig = DseConfig(),
    *,
    jobs: int = 1,
) -> MultiLayerResult:
    """Full two-phase DSE for a whole network (unified design).

    Thin wrapper re-exported here for discoverability; the heavy lifting
    lives in :mod:`repro.dse.multi_layer`.
    """
    from repro.dse.multi_layer import select_unified_design

    return select_unified_design(nests, platform, config, jobs=jobs)


__all__ = [
    "ENGINES",
    "DseConfig",
    "Phase1Result",
    "Phase2Result",
    "explore",
    "explore_network",
    "phase1",
    "phase2",
    "throughput_upper_bound_gops",
]
