"""Columnar (vectorized) DSE engine: score design subspaces as arrays.

The object engine walks the design space one Python object at a time;
profiling shows >90% of unified-DSE wall-clock is the middle-bound tuner's
inner loop (~1.5M ``_evaluate`` calls on AlexNet).  This module keeps the
*search structure* — enumeration order, ranking, admissible
branch-and-bound replay — exactly as the object path defines it, and
replaces only the arithmetic with NumPy batches:

* :class:`CandidateTable` — a struct-of-arrays view of the Problem-1
  subspace (mapping index + shape columns + per-loop inner bounds) built
  from the same :mod:`repro.dse.space` enumeration;
* :func:`upper_bounds` / :func:`aggregate_upper_bounds` — the phase-1 and
  unified branch-and-bound bounds for the whole table in one shot;
* :func:`legality_mask` — the Eq. 12 DSP window as a batched mask;
* :class:`VectorTuner` — a drop-in :class:`~repro.dse.tuner.MiddleTuner`
  whose :meth:`~VectorTuner.tune` evaluates the pruned tiling product in
  chunked array arithmetic.

Bit-identity is a hard contract, not an aspiration: every formula is
applied in the same operation order as its scalar counterpart, integer
quantities stay integers until the same conversion points, and any
configuration whose intermediates could exceed float64's exact integer
range (2^53 — where NumPy's convert-then-divide diverges from Python's
correctly-rounded big-int division) falls back to the scalar tuner.
Equality of winners, tie-breaks and visit counts is asserted by
``tests/dse/test_vector.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ir.loop import LoopNest
from repro.model.design_point import DesignPoint
from repro.model.mapping import Mapping
from repro.model.platform import Platform
from repro.dse.space import SystolicConfig
from repro.dse.tuner import MiddleTuner, TunedDesign

#: Largest integer whose float64 conversion is exact; beyond it the
#: vector math can no longer promise bit-identity with Python's
#: correctly-rounded int/int division, so the scalar path takes over.
INT_EXACT_LIMIT = 2**53


@dataclass(frozen=True)
class CandidateTable:
    """Struct-of-arrays view of a Problem-1 subspace.

    Columns are aligned: entry ``i`` of every array describes
    ``configs[i]``.  Mappings are interned — ``mapping_index[i]`` points
    into ``mappings`` — because a subspace rarely has more than a dozen
    distinct mappings while it has thousands of shapes.
    """

    nest: LoopNest
    configs: tuple[SystolicConfig, ...]
    mappings: tuple[Mapping, ...]
    mapping_index: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    vector: np.ndarray

    @staticmethod
    def from_configs(
        nest: LoopNest, configs: list[SystolicConfig] | tuple[SystolicConfig, ...]
    ) -> "CandidateTable":
        """Columnarize an enumerated candidate list, preserving order."""
        configs = tuple(configs)
        mappings: list[Mapping] = []
        index_of: dict[Mapping, int] = {}
        mapping_index = np.empty(len(configs), dtype=np.int64)
        rows = np.empty(len(configs), dtype=np.int64)
        cols = np.empty(len(configs), dtype=np.int64)
        vector = np.empty(len(configs), dtype=np.int64)
        for i, config in enumerate(configs):
            mi = index_of.get(config.mapping)
            if mi is None:
                mi = index_of[config.mapping] = len(mappings)
                mappings.append(config.mapping)
            mapping_index[i] = mi
            rows[i] = config.shape.rows
            cols[i] = config.shape.cols
            vector[i] = config.shape.vector
        return CandidateTable(
            nest=nest,
            configs=configs,
            mappings=tuple(mappings),
            mapping_index=mapping_index,
            rows=rows,
            cols=cols,
            vector=vector,
        )

    def __len__(self) -> int:
        return len(self.configs)

    @property
    def lanes(self) -> np.ndarray:
        """Parallel MAC lanes per candidate (rows * cols * vector)."""
        return self.rows * self.cols * self.vector

    def role_trip_counts(
        self, bounds: dict[str, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Trip counts of each candidate's (row, col, vector) loops under
        ``bounds``, gathered through the interned mappings."""
        by_row = np.array([bounds[m.row] for m in self.mappings], dtype=np.int64)
        by_col = np.array([bounds[m.col] for m in self.mappings], dtype=np.int64)
        by_vec = np.array([bounds[m.vector] for m in self.mappings], dtype=np.int64)
        return (
            by_row[self.mapping_index],
            by_col[self.mapping_index],
            by_vec[self.mapping_index],
        )

    def inner_matrix(self) -> np.ndarray:
        """Per-loop inner bounds, shape (N, n_loops) in nest iterator
        order; 1 for unmapped loops.  The columnar form of each config's
        ``{row: rows, col: cols, vector: vector}`` dict."""
        iterators = self.nest.iterators
        position = {it: k for k, it in enumerate(iterators)}
        inner = np.ones((len(self.configs), len(iterators)), dtype=np.int64)
        for mi, mapping in enumerate(self.mappings):
            select = self.mapping_index == mi
            inner[select, position[mapping.row]] = self.rows[select]
            inner[select, position[mapping.col]] = self.cols[select]
            inner[select, position[mapping.vector]] = self.vector[select]
        return inner


def _role_efficiency(trips: np.ndarray, bound: np.ndarray) -> np.ndarray:
    """One factor of the shape-only efficiency: n / (ceil(n / t) * t).

    Matches the scalar op order: the ceil is taken of the float quotient
    (exactly as ``math.ceil(n / t)`` does), and the products/divisions
    stay in float64 where every intermediate integer is exact.
    """
    return trips / (np.ceil(trips / bound) * bound)


def upper_bounds(table: CandidateTable, platform: Platform) -> np.ndarray:
    """Batched :func:`repro.dse.explore.throughput_upper_bound_gops`.

    Bit-identical per entry (asserted in tests): the three efficiency
    factors multiply in the same (row, col, vector) order and the final
    scaling applies left to right exactly like the scalar expression.
    """
    bounds = table.nest.bounds
    trip_row, trip_col, trip_vec = table.role_trip_counts(bounds)
    eff = np.ones(len(table))
    for trips, bound in (
        (trip_row, table.rows),
        (trip_col, table.cols),
        (trip_vec, table.vector),
    ):
        eff = eff * _role_efficiency(trips, bound)
    return eff * 2.0 * table.lanes * platform.assumed_clock_mhz * 1e6 / 1e9


def aggregate_upper_bounds(
    workloads: tuple,
    table: CandidateTable,
    platform: Platform,
) -> np.ndarray:
    """Batched :func:`repro.dse.multi_layer._aggregate_upper_bound`.

    Replays the scalar accumulation order — per-workload terms added in
    workload order — so every entry is bit-identical to the scalar bound
    of the same candidate.
    """
    total_ops = 0.0
    total_time = np.zeros(len(table))
    freq = platform.assumed_clock_mhz * 1e6
    lanes = table.lanes
    for w in workloads:
        trip_row, trip_col, trip_vec = table.role_trip_counts(w.nest.bounds)
        eff = np.ones(len(table))
        for trips, bound in (
            (trip_row, table.rows),
            (trip_col, table.cols),
            (trip_vec, table.vector),
        ):
            eff = eff * _role_efficiency(trips, bound)
        pt = eff * 2.0 * lanes * freq
        total_ops += w.effective_ops
        total_time = total_time + w.multiplicity * w.nest.total_operations / pt
    return total_ops / total_time / 1e9


def legality_mask(
    table: CandidateTable,
    platform: Platform,
    *,
    min_dsp_utilization: float = 0.0,
) -> np.ndarray:
    """The Eq. 12 DSP window as one boolean mask over the table.

    Replicates exactly the comparisons :func:`repro.dse.space.
    enumerate_shapes` applies per candidate (budget floor-divisions and
    the ``ceil`` on the float lane floor included), so a table built from
    that enumeration always passes — the mask is the batched replacement
    for re-validating candidates one at a time, and the guard the vector
    engine runs over externally supplied tables.
    """
    lane_budget = platform.dsp_total
    lane_floor = min_dsp_utilization * lane_budget
    bounds = table.nest.bounds
    trip_row, trip_col, _ = table.role_trip_counts(bounds)
    spatial_budget = lane_budget // table.vector
    ok = spatial_budget >= 1
    ok &= (table.rows >= 1) & (table.rows <= np.minimum(trip_row, spatial_budget))
    col_budget = np.where(table.rows > 0, spatial_budget // np.maximum(table.rows, 1), 0)
    ok &= col_budget >= 1
    col_min = np.maximum(
        1, np.ceil(lane_floor / (table.rows * table.vector)).astype(np.int64)
    )
    ok &= (table.cols >= col_min) & (
        table.cols <= np.minimum(trip_col, col_budget)
    )
    return ok


class VectorTuner(MiddleTuner):
    """Problem-2 search over NumPy batches; bit-identical to the scalar.

    Shares every precomputed constant with :class:`MiddleTuner` (same
    ``__init__``) and walks the same candidate product — as C-order row
    indices of the candidate grid, which is exactly the order
    ``itertools.product`` yields — in chunks of :attr:`CHUNK` rows.  The
    winner is selected by replaying the scalar tie-break on arrays:
    feasible rows, maximal throughput, minimal BRAM, first index.

    Configurations whose intermediates could exceed 2^53 (and with them
    float64 exactness) delegate to the scalar ``tune`` wholesale.
    """

    #: Rows per evaluation chunk; bounds peak memory at a few MB while
    #: keeping per-chunk NumPy dispatch overhead negligible.
    CHUNK = 1 << 16

    def _within_exact_range(self) -> bool:
        """Can every intermediate stay exact in int64/float64?"""
        b_max: list[int] = []
        for cand, t, cap_index in zip(
            self._candidates, self._inner, range(len(self._inner))
        ):
            b = max(cand) * t
            if not self._padded_semantics:
                b = min(b, self._extent_cap[cap_index])
            b_max.append(b)
        executed_bound = 1
        block_bound = 1
        for n, b in zip(self._trip, b_max):
            executed_bound *= n + b  # >= ceil(n/b')*b' for any b' <= b
            block_bound *= b
        if max(executed_bound, block_bound, self._total_iterations) > INT_EXACT_LIMIT:
            return False
        for _name, dims, word_bytes, _wpb in self._arrays:
            words_bound = 1
            for terms in dims:
                span = 1
                for coeff, pos in terms:
                    span += abs(coeff) * (b_max[pos] - 1)
                words_bound *= span
            if words_bound * word_bytes > INT_EXACT_LIMIT:
                return False
        return True

    def tune(self, *, frequency_mhz: float | None = None) -> TunedDesign:
        if not self._within_exact_range():
            return super().tune(frequency_mhz=frequency_mhz)

        freq_hz = (frequency_mhz or self.platform.assumed_clock_mhz) * 1e6
        dims = tuple(len(cand) for cand in self._candidates)
        total = 1
        for d in dims:
            total *= d
        cand_arrays = [np.array(cand, dtype=np.int64) for cand in self._candidates]
        inner = np.array(self._inner, dtype=np.int64)
        trips = np.array(self._trip, dtype=np.int64)
        caps = (
            None
            if self._padded_semantics
            else np.array(self._extent_cap, dtype=np.int64)
        )

        best: tuple[float, int, int, float] | None = None  # (tp, bram, flat, eff)
        for start in range(0, total, self.CHUNK):
            stop = min(start + self.CHUNK, total)
            grid = np.unravel_index(np.arange(start, stop), dims)
            blocks = np.empty((stop - start, len(dims)), dtype=np.int64)
            for loop, positions in enumerate(grid):
                blocks[:, loop] = cand_arrays[loop][positions] * inner[loop]

            # Eq. 1 efficiency — padded or the s-independent clipped form.
            if caps is None:
                executed = np.multiply.reduce(-(-trips // blocks) * blocks, axis=1)
                eff = self._total_iterations / executed
            else:
                eff = self._clipped_eff
                blocks = np.minimum(blocks, caps)
            block_iterations = np.multiply.reduce(blocks, axis=1)

            # Eq. 8 computation throughput.
            pt = eff * 2.0 * self._lanes * freq_hz

            # Eq. 5 footprints, Eq. 6 BRAM, Eq. 9/10 memory throughput —
            # same accumulation order as MiddleTuner._evaluate (floats
            # for total_bytes, running min seeded with pt).
            block_ops = eff * 2.0 * block_iterations
            bram = np.full(stop - start, self._pe_blocks, dtype=np.int64)
            total_bytes = np.zeros(stop - start)
            mt = pt * np.ones(stop - start)
            for _name, array_dims, word_bytes, words_per_block in self._arrays:
                words = np.ones(stop - start, dtype=np.int64)
                for terms in array_dims:
                    span = np.ones(stop - start, dtype=np.int64)
                    for coeff, pos in terms:
                        span += coeff * (blocks[:, pos] - 1)
                    words *= span
                raw = -(-words // words_per_block)
                smeared = raw - 1
                for shift in (1, 2, 4, 8, 16, 32):
                    smeared |= smeared >> shift
                bram += self._cb + 2 * (smeared + 1)
                nbytes = words * word_bytes
                total_bytes += nbytes
                mt = np.minimum(mt, block_ops * self._bw_port / nbytes)
            mt = np.minimum(mt, block_ops * self._bw_total / total_bytes)
            throughput = np.minimum(pt, mt)

            feasible = np.flatnonzero(bram <= self._bram_total)
            if feasible.size == 0:
                continue
            tp_feasible = throughput[feasible]
            top = feasible[tp_feasible == tp_feasible.max()]
            winner = top[bram[top] == bram[top].min()][0]
            key = (float(throughput[winner]), -int(bram[winner]))
            if best is None or key > (best[0], -best[1]):
                eff_winner = float(eff) if caps is not None else float(eff[winner])
                best = (key[0], int(bram[winner]), start + int(winner), eff_winner)

        if best is None:
            raise RuntimeError(
                f"no feasible tiling for {self.mapping} {self.shape} within "
                f"{self._bram_total} RAM blocks"
            )
        throughput_best, bram_best, flat, eff_best = best
        positions = np.unravel_index(flat, dims)
        middles = tuple(
            self._candidates[loop][int(pos)] for loop, pos in enumerate(positions)
        )
        design = DesignPoint.create(
            self.nest,
            self.mapping,
            self.shape,
            dict(zip(self._iterators, middles)),
        )
        return TunedDesign(
            design=design,
            throughput_gops=throughput_best / 1e9,
            bram_blocks=bram_best,
            efficiency=eff_best,
            candidates_evaluated=total,
        )


def tuner_for(engine: str) -> type[MiddleTuner]:
    """The tuner class implementing a ``DseConfig.engine`` value."""
    return VectorTuner if engine == "vector" else MiddleTuner


__all__ = [
    "INT_EXACT_LIMIT",
    "CandidateTable",
    "VectorTuner",
    "aggregate_upper_bounds",
    "legality_mask",
    "tuner_for",
    "upper_bounds",
]
