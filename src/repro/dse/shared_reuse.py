"""Shared data-reuse strategy across layers (the paper's deployment).

The default multi-layer selection in :mod:`repro.dse.multi_layer` lets
every layer run its own best middle bounds at runtime (loop limits are
kernel arguments).  The paper's generated kernel appears to fix one
strategy for the whole network instead — "our framework chose the data
reuse strategy that benefit other layers more", which is one of the two
reasons its AlexNet conv1 throughput collapses (Table 4).

:func:`tune_shared_reuse` implements that literal deployment: a single
middle-bound vector, chosen to maximize the *aggregate* network
throughput, is applied to every layer.  Layers whose loops are shorter
than the shared bounds pay quantization waste exactly as the paper
describes.  The ablation bench compares the two deployments and shows
the shared strategy reproducing the paper's conv1 penalty.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.model.platform import Platform
from repro.dse.multi_layer import LayerWorkload
from repro.dse.space import SystolicConfig
from repro.dse.tuner import MiddleTuner, middle_candidates


@dataclass(frozen=True)
class SharedLayerOutcome:
    """One layer's performance under the shared strategy.

    Attributes:
        name: layer name.
        throughput_gops: effective ops / time under the shared bounds.
        seconds: layer latency (all groups).
        efficiency: the layer's Eff(s, t) under the shared bounds.
    """

    name: str
    throughput_gops: float
    seconds: float
    efficiency: float


@dataclass(frozen=True)
class SharedReuseResult:
    """Outcome of the shared-strategy tuning.

    Attributes:
        middle: the single shared middle-bound vector.
        aggregate_gops: network aggregate under the shared strategy.
        layers: per-layer outcomes, workload order.
        bram_blocks: BRAM of the shared buffers (max over layers).
        combos_evaluated: search-space size walked.
    """

    middle: dict[str, int]
    aggregate_gops: float
    layers: tuple[SharedLayerOutcome, ...]
    bram_blocks: int
    combos_evaluated: int


def tune_shared_reuse(
    workloads: tuple[LayerWorkload, ...],
    config: SystolicConfig,
    platform: Platform,
    *,
    include_cover: bool = True,
    frequency_mhz: float | None = None,
) -> SharedReuseResult:
    """Choose ONE middle-bound vector for all layers of a network.

    Maximizes aggregate throughput (total effective ops / total time)
    subject to the BRAM budget applying to every layer's buffers.

    Args:
        workloads: prepared layer workloads (same iterator names).
        config: the fixed mapping + PE-array shape.
        platform: evaluation platform (BRAM budget, bandwidth, clock).
        include_cover: include per-layer cover bounds in the candidates.
        frequency_mhz: clock override.

    Raises:
        RuntimeError: if no shared vector fits the BRAM budget.
    """
    if not workloads:
        raise ValueError("no workloads")
    iterators = workloads[0].nest.iterators
    for w in workloads:
        if w.nest.iterators != iterators:
            raise ValueError("workloads must share iterator names/order")

    freq_hz = (frequency_mhz or platform.assumed_clock_mhz) * 1e6
    tuners = [
        MiddleTuner(w.nest, config.mapping, config.shape, platform,
                    include_cover=include_cover)
        for w in workloads
    ]
    inner = {
        config.mapping.row: config.shape.rows,
        config.mapping.col: config.shape.cols,
        config.mapping.vector: config.shape.vector,
    }
    # Union of per-layer candidates, per loop.
    candidates = []
    for position, it in enumerate(iterators):
        values: set[int] = set()
        for w in workloads:
            values.update(
                middle_candidates(
                    w.nest.bounds[it], inner.get(it, 1), include_cover=include_cover
                )
            )
        candidates.append(tuple(sorted(values)))

    best = None
    combos = 0
    for combo in itertools.product(*candidates):
        combos += 1
        total_time = 0.0
        total_ops = 0.0
        max_bram = 0
        feasible = True
        for w, tuner in zip(workloads, tuners):
            throughput, bram, _eff = tuner._evaluate(combo, freq_hz)
            if bram > platform.bram_total:
                feasible = False
                break
            max_bram = max(max_bram, bram)
            total_time += w.multiplicity * w.nest.total_operations / throughput
            total_ops += w.effective_ops
        if not feasible:
            continue
        aggregate = total_ops / total_time
        if best is None or aggregate > best[0]:
            best = (aggregate, combo, max_bram)
    if best is None:
        raise RuntimeError("no shared reuse strategy fits the BRAM budget")

    aggregate, combo, max_bram = best
    layers = []
    for w, tuner in zip(workloads, tuners):
        throughput, _bram, eff = tuner._evaluate(combo, freq_hz)
        seconds = w.multiplicity * w.nest.total_operations / throughput
        layers.append(
            SharedLayerOutcome(
                name=w.name,
                throughput_gops=w.effective_ops / seconds / 1e9,
                seconds=seconds,
                efficiency=eff,
            )
        )
    return SharedReuseResult(
        middle=dict(zip(iterators, combo)),
        aggregate_gops=aggregate / 1e9,
        layers=tuple(layers),
        bram_blocks=max_bram,
        combos_evaluated=combos,
    )


__all__ = ["SharedLayerOutcome", "SharedReuseResult", "tune_shared_reuse"]
