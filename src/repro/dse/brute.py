"""Exhaustive baselines.

The paper reports that brute-forcing one AlexNet layer's design space
takes "roughly 311 hours" on a Xeon E5-2667, versus under 30 seconds for
the pruned two-phase search.  These functions implement the unpruned
arms so the pruning claims can be validated (optimality on reduced
spaces) and the speedup ratio measured on identical hardware.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.ir.loop import LoopNest
from repro.model.design_point import ArrayShape, DesignPoint
from repro.model.mapping import Mapping
from repro.model.platform import Platform
from repro.dse.space import DEFAULT_VECTOR_CHOICES, enumerate_configs
from repro.dse.tuner import MiddleTuner


@dataclass(frozen=True)
class BruteForceResult:
    """Winner of an exhaustive middle-bound search.

    Attributes:
        design: best design point.
        throughput_gops: its model throughput.
        bram_blocks: its BRAM usage.
        candidates_evaluated: full (unpruned) space size walked.
    """

    design: DesignPoint
    throughput_gops: float
    bram_blocks: int
    candidates_evaluated: int


def brute_force_best_middle(
    nest: LoopNest,
    mapping: Mapping,
    shape: ArrayShape,
    platform: Platform,
    *,
    frequency_mhz: float | None = None,
) -> BruteForceResult:
    """Problem 2 with NO pruning: every integer s in [1, cover] per loop.

    Exponential; intended for small nests (tests) and reduced spaces
    (benchmarks).  Reuses the tuner's evaluation kernel so both arms price
    candidates identically — the comparison isolates the *search space*
    difference, exactly what the paper's 17.5x claim is about.
    """
    tuner = MiddleTuner(nest, mapping, shape, platform)
    freq_hz = (frequency_mhz or platform.assumed_clock_mhz) * 1e6

    ranges = []
    for it in tuner._iterators:
        t = dict(zip(tuner._iterators, tuner._inner))[it]
        cover = math.ceil(nest.bounds[it] / t)
        ranges.append(range(1, cover + 1))

    best: tuple[float, int, tuple[int, ...]] | None = None
    count = 0
    for middles in itertools.product(*ranges):
        count += 1
        throughput, bram, _eff = tuner._evaluate(middles, freq_hz)
        if bram > platform.bram_total:
            continue
        if best is None or (throughput, -bram) > (best[0], -best[1]):
            best = (throughput, bram, middles)
    if best is None:
        raise RuntimeError("no feasible tiling in the full space")
    throughput, bram, middles = best
    design = DesignPoint.create(nest, mapping, shape, dict(zip(tuner._iterators, middles)))
    return BruteForceResult(design, throughput / 1e9, bram, count)


def brute_force_space_size(
    nest: LoopNest,
    platform: Platform,
    *,
    vector_choices: tuple[int, ...] = DEFAULT_VECTOR_CHOICES,
) -> int:
    """Total unpruned design-space size: sum over all feasible
    configurations of their full tiling-space sizes.

    This is the quantity that made the paper's brute force take hundreds
    of hours; counted analytically (no evaluation) so it can be reported
    even where walking it is impossible.
    """
    total = 0
    for config in enumerate_configs(
        nest, platform, min_dsp_utilization=0.0, vector_choices=vector_choices
    ):
        inner = {
            config.mapping.row: config.shape.rows,
            config.mapping.col: config.shape.cols,
            config.mapping.vector: config.shape.vector,
        }
        size = 1
        for it in nest.iterators:
            t = inner.get(it, 1)
            size *= math.ceil(nest.bounds[it] / t)
        total += size
    return total


__all__ = ["BruteForceResult", "brute_force_best_middle", "brute_force_space_size"]
