"""Problem 2: data-reuse (middle-bound) tuning for one configuration.

Given a systolic configuration (mapping + PE array shape), find the middle
bounds ``s`` maximizing throughput under the BRAM budget.  The paper
prunes the ``s`` space to power-of-two values, justified by (1) throughput
monotonicity in ``s`` and (2) BRAM's power-of-two rounding.  In the
s-inclusive efficiency model (which the paper's own Section 2.3 example
follows exactly — see EXPERIMENTS.md) the monotonicity has divisibility
exceptions, so the candidate set here is *powers of two up to the cover
bound, plus the cover bound itself* (the ``s`` at which one block spans
the whole loop).  The pure power-of-two set is available for the
paper-faithful ablation.

The tuner is the hot loop of the DSE (millions of candidate evaluations),
so it re-implements the Eq. 1/5–10 math over plain tuples, precomputing
everything that does not depend on ``s``.  Its equivalence with the
object-based reference model is asserted by tests on thousands of random
points.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.ir.loop import LoopNest
from repro.model.design_point import ArrayShape, DesignPoint
from repro.model.mapping import Mapping, array_roles
from repro.model.platform import Platform


def _pow2_up_to(limit: int) -> list[int]:
    """Powers of two in [1, limit]."""
    out = [1]
    while out[-1] * 2 <= limit:
        out.append(out[-1] * 2)
    return out


def middle_candidates(
    trip_count: int, inner_bound: int, *, include_cover: bool = True
) -> tuple[int, ...]:
    """Candidate middle bounds for one loop.

    The power-of-two ladder extends to the next power of two at or above
    the cover bound ``ceil(N_l / t_l)``: under clipped-middle semantics
    that value is *equivalent* to the cover (the last — only — block stops
    early), which is what makes the paper's pure power-of-two pruning
    lossless there; under padded semantics it is just another candidate
    the search may reject.

    Args:
        trip_count: the loop's original trip count N_l.
        inner_bound: the loop's inner bound t_l (1 if unmapped).
        include_cover: also include the cover bound itself (needed for
            exact optimality under *padded* semantics); False gives the
            paper's pure power-of-two set.

    Returns:
        Sorted unique candidates.
    """
    cover = math.ceil(trip_count / inner_bound)
    candidates = set(_pow2_up_to(cover))
    next_pow2 = 1 << (cover - 1).bit_length() if cover > 1 else 1
    candidates.add(next_pow2)
    if include_cover:
        candidates.add(cover)
    return tuple(sorted(candidates))


def tuning_space_size(nest: LoopNest, shape_bounds: dict[str, int]) -> int:
    """Size of the *unpruned* Problem-2 space: all integer s in [1, cover].

    This is what the paper's 311-hour brute force walks; used to report
    the pruning ratio (the "17.5x saving" claim is about search time on
    the pruned vs unpruned tiling space).
    """
    total = 1
    for it in nest.iterators:
        t = shape_bounds.get(it, 1)
        total *= math.ceil(nest.bounds[it] / t)
    return total


@dataclass(frozen=True)
class TunedDesign:
    """Best tiling found for one configuration.

    Attributes:
        design: the design point with the winning middle bounds.
        throughput_gops: model throughput at the tuning clock.
        bram_blocks: B(s, t) of the winner.
        efficiency: Eff(s, t) of the winner.
        candidates_evaluated: size of the pruned space walked.
    """

    design: DesignPoint
    throughput_gops: float
    bram_blocks: int
    efficiency: float
    candidates_evaluated: int


class MiddleTuner:
    """Exhaustive search over the pruned middle-bound space for one config.

    The constructor precomputes every s-independent quantity; :meth:`tune`
    then walks the candidate product evaluating a hand-inlined version of
    the analytical model.
    """

    def __init__(
        self,
        nest: LoopNest,
        mapping: Mapping,
        shape: ArrayShape,
        platform: Platform,
        *,
        include_cover: bool = True,
    ) -> None:
        self.nest = nest
        self.mapping = mapping
        self.shape = shape
        self.platform = platform

        self._iterators = nest.iterators
        self._trip = [nest.bounds[it] for it in self._iterators]
        inner = {mapping.row: shape.rows, mapping.col: shape.cols, mapping.vector: shape.vector}
        self._inner = [inner.get(it, 1) for it in self._iterators]
        self._lanes = shape.lanes

        # Candidate middle bounds per loop.
        self._candidates = [
            middle_candidates(n, t, include_cover=include_cover)
            for n, t in zip(self._trip, self._inner)
        ]

        # Per-array structure: for each array, for each dimension, the
        # (coefficient, loop position) terms of the subscript; plus word
        # size and BRAM words-per-block at that width.
        roles = array_roles(nest)
        device = platform.device
        datatype = platform.datatype
        self._arrays = []
        position = {it: k for k, it in enumerate(self._iterators)}
        for access in nest.accesses:
            dims = []
            for expr in access.indices:
                dims.append(tuple((coeff, position[name]) for name, coeff in expr.terms))
            word_bytes = datatype.bytes_for(roles[access.array])
            self._arrays.append(
                (
                    access.array,
                    tuple(dims),
                    word_bytes,
                    device.bram_words_per_block(word_bytes),
                )
            )

        total_iterations = 1
        for n in self._trip:
            total_iterations *= n
        self._total_iterations = total_iterations

        self._padded_semantics = platform.ragged_middle == "padded"
        if not self._padded_semantics:
            # Clipped-middle efficiency depends only on t — precompute —
            # and block extents clip at the padded loop extent (a block
            # larger than the loop behaves exactly like one covering it).
            executed = 1
            for n, t in zip(self._trip, self._inner):
                executed *= -(-n // t) * t
            self._clipped_eff = total_iterations / executed
            self._extent_cap = [-(-n // t) * t for n, t in zip(self._trip, self._inner)]

        self._cb = platform.bram_buffer_constant
        self._pe_blocks = math.ceil(platform.bram_per_pe * self._lanes)
        self._bram_total = platform.bram_total
        self._bw_total = platform.memory.total_bytes_per_second
        self._bw_port = platform.memory.port_bytes_per_second
        self._effective_ops = nest.total_operations

    # ------------------------------------------------------------------ math

    def _evaluate(self, middles: tuple[int, ...], freq_hz: float) -> tuple[float, int, float]:
        """(throughput_ops_per_s, bram_blocks, efficiency) for one s-vector.

        Inlined Eq. 1 + 5 + 6 + 8 + 9 + 10; must match the reference model
        bit-for-bit (asserted in tests).
        """
        blocks = [s * t for s, t in zip(middles, self._inner)]

        # Eq. 1 efficiency (padded semantics) or the s-independent clipped
        # variant, per the platform's ragged_middle setting.
        if self._padded_semantics:
            executed = 1
            for n, b in zip(self._trip, blocks):
                executed *= -(-n // b) * b  # ceil(n / b) * b
            eff = self._total_iterations / executed
        else:
            eff = self._clipped_eff
            blocks = [min(b, cap) for b, cap in zip(blocks, self._extent_cap)]
        block_iterations = 1
        for b in blocks:
            block_iterations *= b

        # Eq. 8 computation throughput.
        pt = eff * 2.0 * self._lanes * freq_hz

        # Eq. 5 footprints, Eq. 6 BRAM, Eq. 9/10 memory throughput.
        block_ops = eff * 2.0 * block_iterations
        bram = self._pe_blocks
        total_bytes = 0.0
        mt = pt  # running min; seeded by pt so min() below is cheap
        for _name, dims, word_bytes, words_per_block in self._arrays:
            words = 1
            for terms in dims:
                span = 1
                for coeff, pos in terms:
                    span += coeff * (blocks[pos] - 1)
                words *= span
            raw = -(-words // words_per_block)
            rounded = 1 << (raw - 1).bit_length() if raw > 1 else 1
            bram += self._cb + 2 * rounded
            nbytes = words * word_bytes
            total_bytes += nbytes
            port_mt = block_ops * self._bw_port / nbytes
            if port_mt < mt:
                mt = port_mt
        total_mt = block_ops * self._bw_total / total_bytes
        if total_mt < mt:
            mt = total_mt

        return min(pt, mt), bram, eff

    def pruned_space_size(self) -> int:
        """Number of candidate s-vectors the tuner walks."""
        total = 1
        for cand in self._candidates:
            total *= len(cand)
        return total

    # ---------------------------------------------------------------- search

    def tune(self, *, frequency_mhz: float | None = None) -> TunedDesign:
        """Exhaustive search over the pruned space.

        Returns the throughput-maximal feasible tiling; ties break toward
        fewer BRAM blocks, then lexicographically smaller s (determinism).

        Raises:
            RuntimeError: if no tiling fits the BRAM budget (the PE array
                itself may already exceed it).
        """
        freq_hz = (frequency_mhz or self.platform.assumed_clock_mhz) * 1e6
        best: tuple[float, int, tuple[int, ...], float] | None = None
        count = 0
        for middles in itertools.product(*self._candidates):
            count += 1
            throughput, bram, eff = self._evaluate(middles, freq_hz)
            if bram > self._bram_total:
                continue
            key = (throughput, -bram)
            if best is None or key > (best[0], -best[1]):
                best = (throughput, bram, middles, eff)
        if best is None:
            raise RuntimeError(
                f"no feasible tiling for {self.mapping} {self.shape} within "
                f"{self._bram_total} RAM blocks"
            )
        throughput, bram, middles, eff = best
        design = DesignPoint.create(
            self.nest,
            self.mapping,
            self.shape,
            dict(zip(self._iterators, middles)),
        )
        return TunedDesign(
            design=design,
            throughput_gops=throughput / 1e9,
            bram_blocks=bram,
            efficiency=eff,
            candidates_evaluated=count,
        )


__all__ = ["MiddleTuner", "TunedDesign", "middle_candidates", "tuning_space_size"]
