"""Process-pool fan-out for the DSE hot loops.

Phase-1 tuning is embarrassingly parallel *per configuration*, but the
admissible branch-and-bound is inherently sequential: whether candidate
``i`` may be skipped depends on the top-N after candidates ``< i``.  The
scheme here keeps the serial semantics bit-for-bat identical while still
using every core:

1. candidates are walked in the same descending upper-bound order as the
   serial search, in batches of ``~8 x jobs``;
2. a worker pool evaluates a whole batch concurrently (each worker holds
   the nest/platform in process-global state set by the pool initializer,
   so per-task pickling is just the candidate);
3. the parent *replays* the serial algorithm over the batch results in
   rank order — applying the same pruning check before consuming each
   result and discarding everything past the stop point.

Because the replay performs exactly the serial sequence of top-N updates
and prune checks, finalists, statistics and the stop point are identical
to ``jobs=1`` (asserted by tests); the only cost is up to one batch of
wasted tuning past the stop point.

Workers are plain module-level functions (picklable under every start
method); pools use the default start method of the host platform.

Workers are also treated as *unreliable*: every task runs through
:func:`resilient_map`, which resubmits a task whose worker crashed
(an exception — including an injected ``dse.worker`` fault — or a died
process) and, past :data:`MAX_RESUBMITS` failures or a broken pool,
evaluates the task in the parent with the exact same pure function.
Since a task's result is a pure function of its candidate, recovery is
bit-identical to an undisturbed run by construction.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.resilience.faults import maybe_inject

T = TypeVar("T")
R = TypeVar("R")

#: Batch size per pool round, as a multiple of the worker count.  Larger
#: batches amortize dispatch overhead; smaller ones waste less work past
#: the branch-and-bound stop point.
BATCH_FACTOR = 8

#: Times one task is resubmitted to the pool before the parent evaluates
#: it serially itself (the bit-identical fallback of last resort).
MAX_RESUBMITS = 2

_PHASE1_STATE: tuple | None = None
_UNIFIED_STATE: tuple | None = None

OnRetry = Callable[[int, str], None]
"""Resubmission hook: (failed attempts for this task, reason)."""

OnDegrade = Callable[[str], None]
"""Serial-fallback hook: called with the reason once per degradation."""


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: None/0/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def batched(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive slices of at most ``size`` items."""
    for start in range(0, len(items), size):
        yield items[start : start + size]


def resilient_map(
    pool: ProcessPoolExecutor,
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    serial_fn: Callable[[T], R],
    on_retry: OnRetry | None = None,
    on_degrade: OnDegrade | None = None,
    max_resubmits: int = MAX_RESUBMITS,
) -> list[R]:
    """Map ``fn`` over ``items`` on the pool, surviving worker crashes.

    Every item is submitted as its own future (order preserved).  A task
    that raises — a genuine worker bug, an injected ``dse.worker``
    fault, or a :class:`BrokenProcessPool` from a died process — is
    resubmitted up to ``max_resubmits`` times; past that threshold (or
    once the pool itself is broken) the parent evaluates the item with
    ``serial_fn``, the same pure computation run in-process.  The
    returned list is therefore always complete and, because task results
    are pure functions of their items, bit-identical to a run with no
    failures at all.

    Args:
        pool: the executor (may break mid-flight; handled).
        fn: the worker task (reads process-global pool state).
        items: work items, order defining the result order.
        serial_fn: in-parent equivalent of ``fn`` (no pool state, no
            fault injection — the fallback must not itself be chaos'd).
        on_retry: hook per resubmission (events/telemetry).
        on_degrade: hook fired when an item falls back to serial.
        max_resubmits: per-item resubmission budget.
    """
    items = list(items)
    try:
        futures = [pool.submit(fn, item) for item in items]
    except (BrokenProcessPool, RuntimeError) as exc:
        if on_degrade is not None:
            on_degrade(f"worker pool unusable at submit time: {exc}")
        return [serial_fn(item) for item in items]
    results: list[R] = []
    pool_broken = False
    for index, item in enumerate(items):
        failures = 0
        future = futures[index]
        while True:
            if pool_broken:
                results.append(serial_fn(item))
                break
            try:
                results.append(future.result())
                break
            except BrokenProcessPool as exc:
                pool_broken = True
                if on_degrade is not None:
                    on_degrade(f"worker pool broke: {exc}; serial fallback")
            except Exception as exc:  # noqa: BLE001 - any worker crash
                failures += 1
                if failures > max_resubmits:
                    if on_degrade is not None:
                        on_degrade(
                            f"task {index} failed {failures} times "
                            f"({type(exc).__name__}: {exc}); serial fallback"
                        )
                    results.append(serial_fn(item))
                    break
                if on_retry is not None:
                    on_retry(failures, f"{type(exc).__name__}: {exc}")
                try:
                    future = pool.submit(fn, item)
                except (BrokenProcessPool, RuntimeError):
                    pool_broken = True
    return results


# ------------------------------------------------------------- phase 1


def _phase1_init(
    nest: Any, platform: Any, include_cover: bool, engine: str = "object"
) -> None:
    global _PHASE1_STATE
    _PHASE1_STATE = (nest, platform, include_cover, engine)


def tune_candidate(
    nest: Any,
    platform: Any,
    include_cover: bool,
    candidate: Any,
    engine: str = "object",
) -> tuple[Any, int] | None:
    """Tune one configuration; (evaluation, tilings walked) or None when
    no tiling fits the BRAM budget.  Pure: both the worker task and the
    serial fallback run exactly this, so recovery is bit-identical —
    and the vector/object engines agree bit-for-bit, so the ``engine``
    knob never changes the result, only how fast it arrives."""
    from repro.dse.vector import tuner_for

    tuner = tuner_for(engine)(
        nest, candidate.mapping, candidate.shape, platform, include_cover=include_cover
    )
    try:
        result = tuner.tune()
    except RuntimeError:
        return None
    return result.design.evaluate(platform), result.candidates_evaluated


def _phase1_tune(candidate: Any) -> tuple[Any, int] | None:
    """The pool task: the ``dse.worker`` fault point + the pure tuner."""
    maybe_inject("dse.worker")
    assert _PHASE1_STATE is not None
    nest, platform, include_cover, engine = _PHASE1_STATE
    return tune_candidate(nest, platform, include_cover, candidate, engine=engine)


def phase1_pool(
    nest: Any,
    platform: Any,
    include_cover: bool,
    jobs: int,
    engine: str = "object",
) -> ProcessPoolExecutor:
    """A pool whose workers hold the phase-1 tuning state."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_phase1_init,
        initargs=(nest, platform, include_cover, engine),
    )


def phase1_map(
    pool: ProcessPoolExecutor,
    candidates: Iterable[Any],
    jobs: int,
    *,
    serial_fn: Callable[[Any], tuple[Any, int] | None],
    on_retry: OnRetry | None = None,
    on_degrade: OnDegrade | None = None,
) -> list[tuple[Any, int] | None]:
    """Evaluate a batch of configurations, preserving order and
    surviving worker crashes (see :func:`resilient_map`)."""
    del jobs  # tasks are submitted individually; no chunking knob left
    return resilient_map(
        pool,
        _phase1_tune,
        candidates,
        serial_fn=serial_fn,
        on_retry=on_retry,
        on_degrade=on_degrade,
    )


# ------------------------------------------------- unified (multi-layer)


def _unified_init(workloads: Any, platform: Any, dse: Any) -> None:
    global _UNIFIED_STATE
    _UNIFIED_STATE = (workloads, platform, dse)


def evaluate_unified_task(
    workloads: Any, platform: Any, dse: Any, task: tuple[Any, float | None]
) -> Any:
    """Evaluate one unified-design candidate over every layer (pure;
    shared by the worker task and the serial fallback)."""
    from repro.dse.multi_layer import _evaluate_config

    candidate, frequency_mhz = task
    return _evaluate_config(workloads, candidate, platform, dse, frequency_mhz)


def _unified_eval(task: tuple[Any, float | None]) -> Any:
    """The pool task: the ``dse.worker`` fault point + the pure eval."""
    maybe_inject("dse.worker")
    assert _UNIFIED_STATE is not None
    workloads, platform, dse = _UNIFIED_STATE
    return evaluate_unified_task(workloads, platform, dse, task)


def unified_pool(workloads: Any, platform: Any, dse: Any, jobs: int) -> ProcessPoolExecutor:
    """A pool whose workers hold the multi-layer evaluation state."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_unified_init,
        initargs=(workloads, platform, dse),
    )


def unified_map(
    pool: ProcessPoolExecutor,
    tasks: Iterable[tuple[Any, float | None]],
    jobs: int,
    *,
    serial_fn: Callable[[tuple[Any, float | None]], Any],
    on_retry: OnRetry | None = None,
    on_degrade: OnDegrade | None = None,
) -> list[Any]:
    """Evaluate (candidate, frequency) tasks, preserving order and
    surviving worker crashes (see :func:`resilient_map`)."""
    del jobs
    return resilient_map(
        pool,
        _unified_eval,
        tasks,
        serial_fn=serial_fn,
        on_retry=on_retry,
        on_degrade=on_degrade,
    )


__all__ = [
    "BATCH_FACTOR",
    "MAX_RESUBMITS",
    "batched",
    "evaluate_unified_task",
    "phase1_map",
    "phase1_pool",
    "resilient_map",
    "resolve_jobs",
    "tune_candidate",
    "unified_map",
    "unified_pool",
]
