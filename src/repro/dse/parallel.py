"""Process-pool fan-out for the DSE hot loops.

Phase-1 tuning is embarrassingly parallel *per configuration*, but the
admissible branch-and-bound is inherently sequential: whether candidate
``i`` may be skipped depends on the top-N after candidates ``< i``.  The
scheme here keeps the serial semantics bit-for-bat identical while still
using every core:

1. candidates are walked in the same descending upper-bound order as the
   serial search, in batches of ``~8 x jobs``;
2. a worker pool evaluates a whole batch concurrently (each worker holds
   the nest/platform in process-global state set by the pool initializer,
   so per-task pickling is just the candidate);
3. the parent *replays* the serial algorithm over the batch results in
   rank order — applying the same pruning check before consuming each
   result and discarding everything past the stop point.

Because the replay performs exactly the serial sequence of top-N updates
and prune checks, finalists, statistics and the stop point are identical
to ``jobs=1`` (asserted by tests); the only cost is up to one batch of
wasted tuning past the stop point.

Workers are plain module-level functions (picklable under every start
method); pools use the default start method of the host platform.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")

#: Batch size per pool round, as a multiple of the worker count.  Larger
#: batches amortize dispatch overhead; smaller ones waste less work past
#: the branch-and-bound stop point.
BATCH_FACTOR = 8

_PHASE1_STATE: tuple | None = None
_UNIFIED_STATE: tuple | None = None


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: None/0/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def batched(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive slices of at most ``size`` items."""
    for start in range(0, len(items), size):
        yield items[start : start + size]


# ------------------------------------------------------------- phase 1


def _phase1_init(nest: Any, platform: Any, include_cover: bool) -> None:
    global _PHASE1_STATE
    _PHASE1_STATE = (nest, platform, include_cover)


def _phase1_tune(candidate: Any) -> tuple[Any, int] | None:
    """Tune one configuration; (evaluation, tilings walked) or None when
    no tiling fits the BRAM budget."""
    from repro.dse.tuner import MiddleTuner

    assert _PHASE1_STATE is not None
    nest, platform, include_cover = _PHASE1_STATE
    tuner = MiddleTuner(
        nest, candidate.mapping, candidate.shape, platform, include_cover=include_cover
    )
    try:
        result = tuner.tune()
    except RuntimeError:
        return None
    return result.design.evaluate(platform), result.candidates_evaluated


def phase1_pool(nest: Any, platform: Any, include_cover: bool, jobs: int) -> ProcessPoolExecutor:
    """A pool whose workers hold the phase-1 tuning state."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_phase1_init,
        initargs=(nest, platform, include_cover),
    )


def phase1_map(
    pool: ProcessPoolExecutor, candidates: Iterable[Any], jobs: int
) -> list[tuple[Any, int] | None]:
    """Evaluate a batch of configurations, preserving order."""
    candidates = list(candidates)
    chunksize = max(1, len(candidates) // (jobs * 2) or 1)
    return list(pool.map(_phase1_tune, candidates, chunksize=chunksize))


# ------------------------------------------------- unified (multi-layer)


def _unified_init(workloads: Any, platform: Any, dse: Any) -> None:
    global _UNIFIED_STATE
    _UNIFIED_STATE = (workloads, platform, dse)


def _unified_eval(task: tuple[Any, float | None]) -> Any:
    """Evaluate one unified-design candidate over every layer."""
    from repro.dse.multi_layer import _evaluate_config

    assert _UNIFIED_STATE is not None
    workloads, platform, dse = _UNIFIED_STATE
    candidate, frequency_mhz = task
    return _evaluate_config(workloads, candidate, platform, dse, frequency_mhz)


def unified_pool(workloads: Any, platform: Any, dse: Any, jobs: int) -> ProcessPoolExecutor:
    """A pool whose workers hold the multi-layer evaluation state."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_unified_init,
        initargs=(workloads, platform, dse),
    )


def unified_map(
    pool: ProcessPoolExecutor,
    tasks: Iterable[tuple[Any, float | None]],
    jobs: int,
) -> list[Any]:
    """Evaluate (candidate, frequency) tasks, preserving order."""
    tasks = list(tasks)
    chunksize = max(1, len(tasks) // (jobs * 2) or 1)
    return list(pool.map(_unified_eval, tasks, chunksize=chunksize))


__all__ = [
    "BATCH_FACTOR",
    "batched",
    "phase1_map",
    "phase1_pool",
    "resolve_jobs",
    "unified_map",
    "unified_pool",
]
