"""Design-space exploration (paper Section 4).

Two problems (Section 3.5):

* **Problem 1** — enumerate feasible systolic configurations (mapping
  vector k + inner bounds t): :mod:`repro.dse.space`, pruned by the
  DSP-utilization lower bound (Eq. 12);
* **Problem 2** — for each configuration find the middle bounds s that
  maximize throughput under the BRAM budget: :mod:`repro.dse.tuner`,
  pruned to power-of-two candidates (the BRAM rounding argument).

:mod:`repro.dse.explore` drives the two-phase flow of Fig. 5 (analytical
filtering, then frequency realization for the top designs);
:mod:`repro.dse.brute` is the exhaustive baseline (the paper's "roughly
311 hours" arm, run on reduced spaces); :mod:`repro.dse.multi_layer`
selects the single unified design per network used in Tables 3–5.
"""

from repro.dse.brute import brute_force_best_middle, brute_force_space_size
from repro.dse.explore import DseConfig, Phase1Result, Phase2Result, explore, explore_network
from repro.dse.parallel import resolve_jobs
from repro.dse.multi_layer import MultiLayerResult, prepare_network_nests, select_unified_design
from repro.dse.pareto import ParetoPoint, knee_point, pareto_frontier
from repro.dse.shared_reuse import SharedReuseResult, tune_shared_reuse
from repro.dse.space import (
    SystolicConfig,
    count_design_space,
    enumerate_configs,
    enumerate_shapes,
)
from repro.dse.tuner import MiddleTuner, middle_candidates, tuning_space_size

__all__ = [
    "DseConfig",
    "MiddleTuner",
    "MultiLayerResult",
    "ParetoPoint",
    "Phase1Result",
    "Phase2Result",
    "SharedReuseResult",
    "SystolicConfig",
    "brute_force_best_middle",
    "brute_force_space_size",
    "count_design_space",
    "enumerate_configs",
    "enumerate_shapes",
    "explore",
    "explore_network",
    "knee_point",
    "middle_candidates",
    "pareto_frontier",
    "prepare_network_nests",
    "resolve_jobs",
    "select_unified_design",
    "tune_shared_reuse",
    "tuning_space_size",
]
