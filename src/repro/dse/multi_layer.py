"""Unified multi-layer design selection (paper Section 5.3).

The paper deploys ONE systolic design per network "instead of making an
optimal design for each layer, because it has big performance overhead to
reprogram the FPGA for different layers".  A unified design fixes the
mapping and PE-array shape (the hardware); the middle-loop bounds are
runtime loop limits, so each layer runs its own best data-reuse strategy
within the fixed buffer budget.  Grouped layers execute once per group;
AlexNet's conv1 is folded to a mappable unit-stride shape, and its
*effective* operation count stays the original layer's (the zero-padded
folded MACs are waste, which is part of why conv1's measured efficiency
is low — exactly as in the paper).

Aggregate optimization target: total effective ops / total latency over
all conv layers of one image.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.ir.loop import LoopNest
from repro.model.mapping import Mapping, feasible_mappings
from repro.model.platform import Platform
from repro.nn.folding import fold_layer
from repro.nn.models import Network
from repro.dse.explore import DseConfig
from repro.dse.space import SystolicConfig, enumerate_shapes


@dataclass(frozen=True)
class LayerWorkload:
    """One conv layer as the DSE sees it.

    Attributes:
        name: original layer name.
        nest: the loop nest actually executed (per-group view; folded for
            strided layers).
        multiplicity: times the nest runs per image (= groups).
        effective_ops: the original layer's operation count — the
            numerator of every throughput/efficiency figure, so folding
            waste shows up as lost efficiency rather than phantom ops.
    """

    name: str
    nest: LoopNest
    multiplicity: int
    effective_ops: int


def prepare_network_nests(
    network: Network, *, fold_strided: bool = True
) -> tuple[LayerWorkload, ...]:
    """Lower a network's conv layers to DSE workloads."""
    workloads = []
    for layer in network.conv_layers:
        target = layer
        # Folding rewrites stride*r+p subscripts away; grouped (e.g.
        # depthwise) and dilated layers stay strided — the downstream
        # model, simulators and codegen handle their subscripts directly.
        if fold_strided and layer.stride > 1 and layer.groups == 1 and layer.dilation == 1:
            target = fold_layer(layer)
        per_group = target.group_view()
        workloads.append(
            LayerWorkload(
                name=layer.name,
                nest=per_group.to_loop_nest(),
                multiplicity=layer.groups,
                effective_ops=layer.flops,
            )
        )
    return tuple(workloads)


@dataclass(frozen=True)
class LayerPerformance:
    """Per-layer outcome of a unified design (a Table 4/5 row).

    Attributes:
        name: layer name.
        throughput_gops: effective ops / layer time.
        dsp_efficiency: effective ops / (lanes * 2 * cycles) — i.e.
            throughput / raw peak, the quantity Tables 4 and 5 print.
        seconds: layer latency per image (all groups).
        bound: 'compute' or 'memory'.
        middle: the layer's chosen data-reuse bounds.
    """

    name: str
    throughput_gops: float
    dsp_efficiency: float
    seconds: float
    bound: str
    middle: dict[str, int]


@dataclass(frozen=True)
class MultiLayerResult:
    """A unified design and its per-layer performance.

    Attributes:
        config: winning mapping + shape.
        frequency_mhz: realized clock (phase 2).
        layers: per-layer records, network order.
        total_seconds: conv latency per image.
        aggregate_gops: total effective ops / total latency.
        dsp_utilization / bram_utilization / logic_utilization: resource
            report of the unified design (BRAM is the max over layers).
        configs_enumerated / configs_tuned: search statistics.
        elapsed_seconds: DSE wall-clock time (bookkeeping; excluded from
            equality so runs at different ``jobs`` counts or cache
            replays compare equal when the search agrees).
    """

    config: SystolicConfig
    frequency_mhz: float
    layers: tuple[LayerPerformance, ...]
    total_seconds: float
    aggregate_gops: float
    dsp_utilization: float
    bram_utilization: float
    logic_utilization: float
    configs_enumerated: int
    configs_tuned: int
    elapsed_seconds: float = field(compare=False)


def _envelope_nest(workloads: tuple[LayerWorkload, ...]) -> LoopNest:
    """A synthetic nest whose bounds are the per-loop maxima — used for
    shape enumeration so a unified array may exceed any single layer's
    extent along a loop (e.g. AlexNet's (11, 14, 8) with conv3-5 at
    C = 13 < 14)."""
    base = workloads[0].nest
    bounds = {it: max(w.nest.bounds[it] for w in workloads) for it in base.iterators}
    return base.with_bounds(bounds, name="envelope")


def _common_mappings(workloads: tuple[LayerWorkload, ...]) -> tuple[Mapping, ...]:
    """Mappings feasible for every layer."""
    common = None
    for workload in workloads:
        mappings = set(feasible_mappings(workload.nest))
        common = mappings if common is None else (common & mappings)
    return tuple(sorted(common, key=str)) if common else ()


def _aggregate_upper_bound(
    workloads: tuple[LayerWorkload, ...],
    config: SystolicConfig,
    platform: Platform,
) -> float:
    """Admissible aggregate-throughput bound from per-layer PT bounds."""
    total_ops = 0.0
    total_time = 0.0
    freq = platform.assumed_clock_mhz * 1e6
    for w in workloads:
        eff = 1.0
        inner = {
            config.mapping.row: config.shape.rows,
            config.mapping.col: config.shape.cols,
            config.mapping.vector: config.shape.vector,
        }
        for it, t in inner.items():
            n = w.nest.bounds[it]
            eff *= n / (math.ceil(n / t) * t)
        pt = eff * 2.0 * config.shape.lanes * freq  # ops/s on the nest basis
        total_ops += w.effective_ops
        total_time += w.multiplicity * w.nest.total_operations / pt
    return total_ops / total_time / 1e9


# What one unified-design probe yields: (aggregate GFlops, total seconds,
# per-layer performances, max BRAM, total ops) — or None when some layer
# has no feasible tiling.
_UnifiedOutcome = tuple[float, float, tuple["LayerPerformance", ...], int, float]


def _evaluate_config(
    workloads: tuple[LayerWorkload, ...],
    config: SystolicConfig,
    platform: Platform,
    dse: DseConfig,
    frequency_mhz: float | None,
) -> tuple[float, float, tuple[LayerPerformance, ...], int, float] | None:
    """Tune every layer under one config; None if any layer has no
    feasible tiling.  Returns (aggregate_gops, total_seconds, layers,
    max_bram_blocks, total_ops)."""
    from repro.dse.vector import tuner_for

    freq = frequency_mhz or platform.assumed_clock_mhz
    layers = []
    total_seconds = 0.0
    total_ops = 0.0
    max_bram = 0
    lanes = config.shape.lanes
    peak_ops_per_s = 2.0 * lanes * freq * 1e6
    tuner_cls = tuner_for(dse.engine)
    for w in workloads:
        tuner = tuner_cls(
            w.nest, config.mapping, config.shape, platform, include_cover=dse.include_cover
        )
        try:
            tuned = tuner.tune(frequency_mhz=freq)
        except RuntimeError:
            return None
        nest_seconds = w.nest.total_operations / (tuned.throughput_gops * 1e9)
        layer_seconds = w.multiplicity * nest_seconds
        layer_gops = w.effective_ops / layer_seconds / 1e9
        evaluation = tuned.design.evaluate(platform, frequency_mhz=freq)
        layers.append(
            LayerPerformance(
                name=w.name,
                throughput_gops=layer_gops,
                dsp_efficiency=(w.effective_ops / layer_seconds) / peak_ops_per_s,
                seconds=layer_seconds,
                bound=evaluation.performance.bound,
                middle=tuned.design.middle_bounds,
            )
        )
        total_seconds += layer_seconds
        total_ops += w.effective_ops
        max_bram = max(max_bram, tuned.bram_blocks)
    aggregate = total_ops / total_seconds / 1e9
    return aggregate, total_seconds, tuple(layers), max_bram, total_ops


def select_unified_design(
    workloads: tuple[LayerWorkload, ...] | Network,
    platform: Platform,
    config: DseConfig = DseConfig(),
    *,
    jobs: int = 1,
    progress: Callable[[int, int], None] | None = None,
    on_retry: Callable[[int, str], None] | None = None,
    on_degrade: Callable[[str], None] | None = None,
) -> MultiLayerResult:
    """Two-phase DSE for one unified design across all conv layers.

    Args:
        workloads: prepared workloads, or a :class:`Network` (prepared
            with folding enabled).
        platform: evaluation platform.
        config: DSE knobs (c_s, vectors, top_n, pruning).
        jobs: worker processes for the per-candidate (all-layer) tuning
            fan-out; 1 runs serially, <= 0 means all cores.  The winning
            design is bit-identical for any value: parallel batches are
            replayed through the serial branch-and-bound in rank order
            (see :mod:`repro.dse.parallel`), and crashed workers are
            resubmitted / replayed serially by :func:`resilient_map`.
        progress: optional hook called with (configs consumed, total).
        on_retry: optional hook per crashed-worker resubmission.
        on_degrade: optional hook when work falls back to serial.
    """
    start = time.perf_counter()
    if isinstance(workloads, Network):
        workloads = prepare_network_nests(workloads)
    if not workloads:
        raise ValueError("no conv layers to explore")

    envelope = _envelope_nest(workloads)
    candidates = [
        SystolicConfig(mapping, shape)
        for mapping in _common_mappings(workloads)
        for shape in enumerate_shapes(
            envelope,
            mapping,
            platform,
            min_dsp_utilization=config.min_dsp_utilization,
            vector_choices=config.vector_choices,
        )
    ]
    if not candidates:
        raise ValueError("design space is empty — lower min_dsp_utilization?")

    if config.engine == "vector":
        from repro.dse.vector import CandidateTable, aggregate_upper_bounds

        table = CandidateTable.from_configs(envelope, candidates)
        bounds_by_config = aggregate_upper_bounds(workloads, table, platform).tolist()
    else:
        bounds_by_config = [
            _aggregate_upper_bound(workloads, c, platform) for c in candidates
        ]
    ranked = sorted(
        zip(bounds_by_config, candidates),
        key=lambda pair: pair[0],
        reverse=True,
    )

    finalists: list[tuple[float, SystolicConfig]] = []
    tuned_count = 0

    def should_stop(upper_bound: float) -> bool:
        return (
            config.upper_bound_pruning
            and len(finalists) >= config.top_n
            and upper_bound <= finalists[-1][0]
        )

    def merge(candidate: SystolicConfig, outcome: _UnifiedOutcome | None) -> None:
        nonlocal tuned_count
        if outcome is None:
            return
        tuned_count += 1
        finalists.append((outcome[0], candidate))
        finalists.sort(key=lambda pair: pair[0], reverse=True)
        del finalists[config.top_n :]

    parallel = jobs != 1 and len(ranked) > 1
    pool = None
    workers = 1
    if parallel:
        from repro.dse.parallel import (
            BATCH_FACTOR,
            batched,
            evaluate_unified_task,
            resolve_jobs,
            unified_map,
            unified_pool,
        )

        workers = resolve_jobs(jobs)
        pool = unified_pool(workloads, platform, config, workers)

        def serial_task(
            task: tuple[SystolicConfig, float | None],
        ) -> _UnifiedOutcome | None:
            return evaluate_unified_task(workloads, platform, config, task)

        def pooled_map(
            tasks: Iterable[tuple[SystolicConfig, float | None]],
        ) -> list[_UnifiedOutcome | None]:
            return unified_map(
                pool,
                tasks,
                workers,
                serial_fn=serial_task,
                on_retry=on_retry,
                on_degrade=on_degrade,
            )
    try:
        if pool is not None:
            consumed = 0
            stopped = False
            for batch in batched(ranked, workers * BATCH_FACTOR):
                if stopped:
                    break
                outcomes = pooled_map(((c, None) for _, c in batch))
                for (upper_bound, candidate), outcome in zip(batch, outcomes):
                    if should_stop(upper_bound):
                        stopped = True
                        break
                    consumed += 1
                    merge(candidate, outcome)
                if progress:
                    progress(consumed, len(ranked))
        else:
            for index, (upper_bound, candidate) in enumerate(ranked):
                if should_stop(upper_bound):
                    break
                merge(
                    candidate,
                    _evaluate_config(workloads, candidate, platform, config, None),
                )
                if progress and (index + 1) % 8 == 0:
                    progress(index + 1, len(ranked))

        if not finalists:
            raise RuntimeError("no feasible unified design found")

        # Phase 2: realize clocks, re-tune at the realized clock, pick the
        # winner.  The parallel path maps the probe and realized-clock
        # evaluations over the pool (order-preserving), then replays the
        # serial argmax, so ties keep breaking toward the earlier finalist.
        if pool is not None:
            probes = pooled_map(((c, None) for _, c in finalists))
        else:
            probes = [
                _evaluate_config(workloads, candidate, platform, config, None)
                for _, candidate in finalists
            ]
        freqs = []
        for (_estimated, candidate), probe in zip(finalists, probes):
            assert probe is not None
            _, _, _, max_bram, _ = probe
            dsp_blocks = candidate.shape.lanes * platform.dsp_per_mac
            dsp_util = dsp_blocks / (platform.dsp_total * platform.dsp_per_mac)
            bram_util = max_bram / platform.bram_total
            freq = platform.frequency_model.realize(
                rows=candidate.shape.rows,
                cols=candidate.shape.cols,
                vector=candidate.shape.vector,
                dsp_utilization=dsp_util,
                bram_utilization=bram_util,
                signature=f"unified|{candidate}",
            )
            freqs.append((freq, dsp_util))
        if pool is not None:
            realized = pooled_map(
                ((c, freq) for (_, c), (freq, _) in zip(finalists, freqs))
            )
        else:
            realized = [
                _evaluate_config(workloads, candidate, platform, config, freq)
                for (_, candidate), (freq, _) in zip(finalists, freqs)
            ]
        best = None
        for (_estimated, candidate), (freq, dsp_util), outcome in zip(
            finalists, freqs, realized
        ):
            if outcome is None:
                continue
            aggregate, total_seconds, layers, max_bram, _total_ops = outcome
            record = (
                aggregate, candidate, freq, total_seconds, layers, max_bram, dsp_util,
            )
            if best is None or aggregate > best[0]:
                best = record
    finally:
        if pool is not None:
            pool.shutdown()

    assert best is not None
    aggregate, candidate, freq, total_seconds, layers, max_bram, dsp_util = best
    from repro.model.resources import logic_usage

    logic = logic_usage(
        candidate.shape.rows, candidate.shape.cols, candidate.shape.vector, platform
    )
    return MultiLayerResult(
        config=candidate,
        frequency_mhz=freq,
        layers=layers,
        total_seconds=total_seconds,
        aggregate_gops=aggregate,
        dsp_utilization=dsp_util,
        bram_utilization=max_bram / platform.bram_total,
        logic_utilization=logic / platform.device.logic_cells,
        configs_enumerated=len(candidates),
        configs_tuned=tuned_count,
        elapsed_seconds=time.perf_counter() - start,
    )


__all__ = [
    "LayerPerformance",
    "LayerWorkload",
    "MultiLayerResult",
    "prepare_network_nests",
    "select_unified_design",
]
