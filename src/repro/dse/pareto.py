"""Pareto analysis of the design space.

Fig. 7(a)'s reading — "high throughput design options may cost moderate
BRAM blocks and DSPs" — is a statement about the Pareto structure of the
space: throughput is not monotone in resources, so the interesting
designs live on the (throughput max / DSP min / BRAM min) frontier.
This module extracts that frontier from any set of evaluated candidates,
for reporting and for users who want resource-throughput trade-offs
rather than the single throughput-optimal point (e.g. leaving BRAM for
other kernels on the same die).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate in (throughput, DSP, BRAM) space.

    Attributes:
        label: any identity string (shape, signature, ...).
        throughput_gops: higher is better.
        dsp_blocks: lower is better.
        bram_blocks: lower is better.
        payload: optional arbitrary object carried along (e.g. the
            DesignPoint itself).
    """

    label: str
    throughput_gops: float
    dsp_blocks: float
    bram_blocks: float
    payload: object = None

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weakly better on every axis, strictly better on at least one."""
        at_least_as_good = (
            self.throughput_gops >= other.throughput_gops
            and self.dsp_blocks <= other.dsp_blocks
            and self.bram_blocks <= other.bram_blocks
        )
        strictly_better = (
            self.throughput_gops > other.throughput_gops
            or self.dsp_blocks < other.dsp_blocks
            or self.bram_blocks < other.bram_blocks
        )
        return at_least_as_good and strictly_better


def pareto_frontier(points: Sequence[ParetoPoint]) -> tuple[ParetoPoint, ...]:
    """The non-dominated subset, sorted by descending throughput.

    O(n^2) pairwise filtering — design spaces at this stage are hundreds
    of points, not millions.
    """
    frontier = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    # Deduplicate identical coordinates (keep the first label).
    seen: set[tuple[float, float, float]] = set()
    unique = []
    for p in sorted(frontier, key=lambda p: (-p.throughput_gops, p.dsp_blocks, p.bram_blocks)):
        key = (p.throughput_gops, p.dsp_blocks, p.bram_blocks)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return tuple(unique)


def knee_point(frontier: Sequence[ParetoPoint]) -> ParetoPoint:
    """The frontier point with the best throughput per resource.

    A simple scalarization — throughput divided by the geometric mean of
    normalized DSP and BRAM cost — that picks the "moderate resources,
    high throughput" design Fig. 7(a) gestures at.

    Raises:
        ValueError: on an empty frontier.
    """
    if not frontier:
        raise ValueError("empty frontier")
    max_dsp = max(p.dsp_blocks for p in frontier) or 1.0
    max_bram = max(p.bram_blocks for p in frontier) or 1.0

    def score(p: ParetoPoint) -> float:
        cost = ((p.dsp_blocks / max_dsp) * (p.bram_blocks / max_bram)) ** 0.5
        return p.throughput_gops / max(cost, 1e-9)

    return max(frontier, key=score)


__all__ = ["ParetoPoint", "knee_point", "pareto_frontier"]
